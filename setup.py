"""Setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
