"""Setuptools shim plus the optional native MQB kernel extension.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by PEP 660 editable builds — and
so installs with a C toolchain ship ``repro.native._mqbkernel``
prebuilt (its symbols are consumed via ctypes; see
``src/repro/native/__init__.py``).

The kernel is strictly an optimization: a build failure (no compiler,
no Python headers) must never fail the install.  The numpy path is
bit-identical, and ``repro.native`` can also lazily compile the kernel
at first use when a plain ``cc`` is available.
"""

import warnings

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Swallow native build failures; the numpy fallback covers them."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - host dependent
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - host dependent
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        warnings.warn(
            f"repro: skipping the native MQB kernel build ({exc}); the "
            "pure-numpy fallback will be used (bit-identical, slower)",
            RuntimeWarning,
        )


setup(
    ext_modules=[
        Extension(
            "repro.native._mqbkernel",
            sources=["src/repro/native/_mqbkernel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
