#!/usr/bin/env python
"""Regenerate ``benchmarks/BENCH_engine.json`` (and a root-level copy).

Times the hot paths the optimization work targets — MQB/KGreedy runs on
a paper-scale IR instance, the offline descendant/span passes, and a
Fig.-4-scale paired sweep serial vs parallel — and writes the numbers
next to the recorded pre-optimization baselines so the speedups are
auditable.  The same payload is written to ``BENCH_engine.json`` at the
repo root, where CI picks it up without knowing the benchmarks layout.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_baseline.py

The baselines under ``"before"`` were measured on commit 354fe77 (the
seed, before the vectorized sweeps / offline cache / engine+MQB hot-path
work) on the same host class; re-measure them from that commit if the
host changes materially.  Parallel-sweep results depend on the host's
core count, which is recorded under ``"host"`` — on a single-core
container the 8-worker sweep cannot beat serial and the numbers say so.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import tempfile
import time
import timeit
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import make_scheduler, simulate  # noqa: E402
from repro.core.cache import clear_offline_cache  # noqa: E402
from repro.core.descendants import (  # noqa: E402
    descendant_values,
    remaining_span,
)
from repro.experiments.runner import run_comparison  # noqa: E402
from repro.schedulers.registry import PAPER_ALGORITHMS  # noqa: E402
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance  # noqa: E402

OUT_PATH = REPO_ROOT / "benchmarks" / "BENCH_engine.json"
ROOT_OUT_PATH = REPO_ROOT / "BENCH_engine.json"

#: Seed-commit (354fe77) timings, seconds — the "before" column.
BASELINE = {
    "engine_mqb_ir": 0.09123798527272697,
    "engine_kgreedy_ir": 0.013182770230263199,
    "descendant_values_pass": 0.011887787094117893,
    "remaining_span_pass": 0.004513976873874008,
    "fig4_ir_sweep_16_serial": 5.457877637000024,
}

SWEEP_INSTANCES = 16
SWEEP_SEED = 2011


def _best_of(fn, repeat: int = 5, number: int = 1) -> float:
    """Min-of-N wall time for one call (min is robust to scheduler noise)."""
    return min(timeit.repeat(fn, repeat=repeat, number=number)) / number


def measure() -> dict[str, float]:
    # The engine/sweep timings below measure real computation; pin the
    # result cache off so a warm user cache can't shortcut them.  The
    # un-suffixed entries pin the native MQB kernel OFF so they stay
    # comparable with the recorded history (which predates the kernel);
    # the paired _native entries measure the same work with it on.
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_NATIVE"] = "0"
    job, system = sample_instance(
        WORKLOAD_CELLS["medium-layered-ir"], np.random.default_rng(42)
    )
    after: dict[str, float] = {}

    clear_offline_cache()
    rng = np.random.default_rng(0)
    after["engine_mqb_ir"] = _best_of(
        lambda: simulate(job, system, make_scheduler("mqb"), rng=rng), repeat=10
    )
    # Native compiled selection kernel (src/repro/native): the same
    # run with MQB's pick loop in C — bit-identical results, guarded
    # by scripts/check_native_identity.py.  Skipped (entry absent)
    # when no kernel can be built on this host.
    from repro import native as _native

    os.environ["REPRO_NATIVE"] = "1"
    if _native.load_kernel() is not None:
        after["engine_mqb_ir_native"] = _best_of(
            lambda: simulate(job, system, make_scheduler("mqb"), rng=rng),
            repeat=10,
        )
    os.environ["REPRO_NATIVE"] = "0"
    after["engine_kgreedy_ir"] = _best_of(
        lambda: simulate(job, system, make_scheduler("kgreedy")), repeat=10
    )
    from repro.obs.telemetry import Telemetry

    after["engine_mqb_ir_telemetry"] = _best_of(
        lambda: simulate(
            job, system, make_scheduler("mqb"), telemetry=Telemetry()
        ),
        repeat=10,
    )
    after["descendant_values_pass"] = _best_of(
        lambda: descendant_values(job), repeat=20
    )
    after["remaining_span_pass"] = _best_of(
        lambda: remaining_span(job), repeat=20
    )

    spec = WORKLOAD_CELLS["medium-layered-ir"]

    def sweep(workers: int, engine: str = "scalar", n: int = SWEEP_INSTANCES) -> float:
        t0 = time.perf_counter()
        run_comparison(
            spec, PAPER_ALGORITHMS, n, SWEEP_SEED,
            n_workers=workers, engine=engine,
        )
        return time.perf_counter() - t0

    after["fig4_ir_sweep_16_serial"] = min(sweep(1) for _ in range(2))
    after["fig4_ir_sweep_16_workers8"] = min(sweep(8) for _ in range(2))

    # Batched lockstep engine (src/repro/sim/batch.py): the same sweep
    # with every supported (instance, scheduler) pair advanced through
    # one vectorized event loop, bit-identical per instance to the
    # scalar engine.  The 256-instance pair shows the scaling regime
    # the engine is built for — per-round costs amortize across rows,
    # so the batch advantage grows with the batch.
    after["fig4_ir_sweep_16_batch"] = min(sweep(1, "batch") for _ in range(2))
    after["fig4_ir_sweep_256_serial"] = sweep(1, "scalar", 256)
    after["fig4_ir_sweep_256_batch"] = sweep(1, "batch", 256)

    # The same batch sweeps with the native MQB kernel carrying the
    # selection picks — the headline fig4 numbers move only as much as
    # MQB selection dominates the sweep, so record both honestly.
    os.environ["REPRO_NATIVE"] = "1"
    if _native.load_kernel() is not None:
        after["fig4_ir_sweep_16_batch_native"] = min(
            sweep(1, "batch") for _ in range(2)
        )
        after["fig4_ir_sweep_256_batch_native"] = sweep(1, "batch", 256)
    os.environ["REPRO_NATIVE"] = "0"

    # Decentralized work-stealing engine (src/repro/decentral): one
    # DKGreedy run under the default steal policy on the overhead
    # sweep's own workload (EP, 2P chains) at growing system sizes —
    # the per-decision cost of the steal protocol as P scales is the
    # number the decentral experiment's wall-time budget rests on.
    from repro.decentral.engine import simulate_decentralized
    from repro.experiments.decentral import decentral_spec
    from repro.system.resources import ResourceConfig

    for p in (64, 256, 1024):
        d_spec = decentral_spec(p)
        d_job = sample_instance(d_spec, np.random.default_rng(42))[0]
        d_system = ResourceConfig((p,) * d_spec.num_types)
        after[f"decentral_p{p}"] = _best_of(
            lambda: simulate_decentralized(
                d_job, d_system, make_scheduler("dkgreedy"),
                rng=np.random.default_rng(0),
            ),
            repeat=3,
        )

    # Result cache (src/repro/resultcache): the same sweep cold (every
    # instance computed and persisted) vs warm (pure lookups, engines
    # never run).  Uses a throwaway cache dir so the numbers are honest
    # regardless of the host's cache state.
    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        os.environ["REPRO_CACHE"] = "1"
        os.environ["REPRO_CACHE_DIR"] = cache_root
        after["fig4_ir_sweep_16_cold_cache"] = sweep(1)
        after["fig4_ir_sweep_16_warm_cache"] = min(sweep(1) for _ in range(3))
    finally:
        os.environ["REPRO_CACHE"] = "0"
        os.environ.pop("REPRO_CACHE_DIR", None)
        shutil.rmtree(cache_root, ignore_errors=True)
    return after


def main() -> int:
    after = measure()
    speedups = {
        key: round(BASELINE[key] / after[key], 3)
        for key in BASELINE
        if key in after
    }
    speedups["fig4_ir_sweep_16_workers8_vs_seed_serial"] = round(
        BASELINE["fig4_ir_sweep_16_serial"] / after["fig4_ir_sweep_16_workers8"], 3
    )
    speedups["fig4_ir_sweep_16_warm_vs_cold_cache"] = round(
        after["fig4_ir_sweep_16_cold_cache"]
        / after["fig4_ir_sweep_16_warm_cache"],
        3,
    )
    speedups["fig4_ir_sweep_16_batch_vs_scalar"] = round(
        after["fig4_ir_sweep_16_serial"] / after["fig4_ir_sweep_16_batch"], 3
    )
    speedups["fig4_ir_sweep_256_batch_vs_scalar"] = round(
        after["fig4_ir_sweep_256_serial"] / after["fig4_ir_sweep_256_batch"], 3
    )
    speedups["fig4_ir_sweep_16_batch_vs_seed_serial"] = round(
        BASELINE["fig4_ir_sweep_16_serial"] / after["fig4_ir_sweep_16_batch"], 3
    )
    if "engine_mqb_ir_native" in after:
        speedups["engine_mqb_ir_native_vs_numpy"] = round(
            after["engine_mqb_ir"] / after["engine_mqb_ir_native"], 3
        )
        speedups["engine_mqb_ir_native_vs_seed"] = round(
            BASELINE["engine_mqb_ir"] / after["engine_mqb_ir_native"], 3
        )
    if "fig4_ir_sweep_16_batch_native" in after:
        speedups["fig4_ir_sweep_16_batch_native_vs_numpy_batch"] = round(
            after["fig4_ir_sweep_16_batch"]
            / after["fig4_ir_sweep_16_batch_native"],
            3,
        )
        speedups["fig4_ir_sweep_16_batch_native_vs_seed_serial"] = round(
            BASELINE["fig4_ir_sweep_16_serial"]
            / after["fig4_ir_sweep_16_batch_native"],
            3,
        )
        speedups["fig4_ir_sweep_256_batch_native_vs_numpy_batch"] = round(
            after["fig4_ir_sweep_256_batch"]
            / after["fig4_ir_sweep_256_batch_native"],
            3,
        )
    payload = {
        "description": (
            "Engine/offline-pass hot-path timings, seconds (min over "
            "repeats). 'before' = seed commit 354fe77; 'after' = current "
            "tree. Sweep = run_comparison(medium-layered-ir, 6 paper "
            "algorithms, 16 instances, seed 2011); the _batch variants "
            "run the same sweep through the batched lockstep engine "
            "(bit-identical per instance), at 16 and 256 instances, "
            "cache off. Un-suffixed entries pin REPRO_NATIVE=0; the "
            "paired _native entries rerun the same work with the "
            "compiled MQB selection kernel (src/repro/native, "
            "bit-identical picks) and are absent on hosts without a "
            "C toolchain. The _telemetry "
            "variant runs the same instance under an enabled Telemetry "
            "(aggregates only, no event stream). The _cold_cache / "
            "_warm_cache pair times the same sweep against a fresh "
            "result cache (first run computes+persists, second run is "
            "pure lookups); their ratio is the warm_vs_cold speedup. "
            "The decentral_p{64,256,1024} entries time one DKGreedy "
            "work-stealing run (default steal policy) on the decentral "
            "experiment's EP workload at P processors per type."
        ),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "before": BASELINE,
        "after": {k: round(v, 6) for k, v in after.items()},
        "speedup": speedups,
    }
    text = json.dumps(payload, indent=2) + "\n"
    OUT_PATH.write_text(text)
    ROOT_OUT_PATH.write_text(text)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUT_PATH}", file=sys.stderr)
    print(f"wrote {ROOT_OUT_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
