#!/usr/bin/env python
"""End-to-end smoke test of the scheduling daemon (CI gate).

Spawns ``repro serve`` as a real subprocess, submits one request of
each kind (schedule, sweep, stream), checks a warm repeat is served
from the response cache, scrapes ``/metrics``, then sends SIGTERM and
asserts a clean drain (exit code 0).  Exercises the daemon exactly the
way an operator would — process boundary, real sockets, real signals.

Run from the repo root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.testing import free_port, spawn_service  # noqa: E402

CELL = "small-layered-ep"


def fail(message: str) -> int:
    print(f"[service-smoke] FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    port = free_port()
    print(f"[service-smoke] spawning repro serve on port {port}",
          file=sys.stderr)
    with spawn_service(port, workers=1, queue_limit=16) as spawned:
        client = spawned.client

        health = client.healthz()
        if health["status"] != "ok":
            return fail(f"unhealthy at start: {health}")

        schedule = client.schedule(CELL, scheduler="mqb", seed=3)
        if schedule["result"]["makespan"] <= 0:
            return fail(f"bad schedule result: {schedule}")
        print(f"  schedule: makespan {schedule['result']['makespan']:g} "
              f"({schedule['source']})", file=sys.stderr)

        repeat = client.schedule(CELL, scheduler="mqb", seed=3)
        if repeat["source"] != "cached":
            return fail(f"warm repeat not cached: {repeat['source']}")
        if repeat["result"] != schedule["result"]:
            return fail("cached result differs from fresh result")
        print("  schedule repeat: served from cache", file=sys.stderr)

        sweep = client.sweep(CELL, ["kgreedy", "mqb"], n_instances=4, seed=7)
        keys = [s["key"] for s in sweep["result"]["series"]]
        if keys != ["kgreedy", "mqb"]:
            return fail(f"bad sweep series: {keys}")
        print(f"  sweep: {len(keys)} series over "
              f"{sweep['result']['n_instances']} instances", file=sys.stderr)

        stream = client.stream(CELL, policy="global-mqb", n_jobs=4,
                               mean_interarrival=30.0, seed=1)
        if stream["result"]["makespan"] <= 0:
            return fail(f"bad stream result: {stream}")
        print(f"  stream: makespan {stream['result']['makespan']:g}",
              file=sys.stderr)

        metrics = client.metrics()
        counters = metrics["telemetry"]["counters"]
        # cache.hits is >= 1, not == 1: the warm schedule repeat is one
        # hit, and the sweep may add persistent-cache hits from earlier
        # daemon runs (sharing instance work across restarts is the
        # cache's whole point).
        for name, expected in (
            ("admission.admitted", 4),
            ("exec.ok.schedule", 1),
            ("exec.ok.sweep", 1),
            ("exec.ok.stream", 1),
        ):
            if counters.get(name, 0) != expected:
                return fail(
                    f"counter {name} = {counters.get(name, 0)}, "
                    f"expected {expected}; counters: {counters}"
                )
        if counters.get("cache.hits", 0) < 1:
            return fail(f"no cache hit for the warm repeat; counters: {counters}")
        print(f"  metrics: queue_depth {metrics['queue_depth']}, "
              f"in_flight {metrics['in_flight']}, counters ok",
              file=sys.stderr)

        code = spawned.terminate()
        if code != 0:
            return fail(f"SIGTERM drain exited {code}, expected 0")
        print("[service-smoke] PASS: clean SIGTERM drain", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
