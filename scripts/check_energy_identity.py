#!/usr/bin/env python
"""CI guard: energy knobs at zero ARE the base schedulers.

``emqb[w=0]`` multiplies MQB's x-utilizations by weights that are
exactly ``1.0`` (as does any uniform power model, via an explicit
short-circuit rather than float cancellation), and
``kgreedy-consolidate[r=1]`` caps per-type concurrency at ``P_alpha``,
which never binds.  Both must therefore reproduce their base
schedulers **bit-identically** — the same makespan, the same decision
count, and the same trace segment for every task.  This is the anchor
that keeps the energy subsystem honest: any drift in the replicated
MQB arithmetic or the consolidation bookkeeping shows up here as a
hard failure, not as a plausible-looking Pareto point.

Checks over several workload cells x seeds, with telemetry both off
and on (observability must not perturb the schedule).  Exits nonzero
on the first-summarized mismatch.

Run from the repo root (no cache involvement — results are computed
fresh on both sides)::

    PYTHONPATH=src python scripts/check_energy_identity.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

SEED = 7
INSTANCES_PER_CELL = 3
PAIRS = (
    ("emqb[w=0]", "mqb"),
    ("emqb[w=0.7,power=baseline]", "mqb"),  # uniform-power short-circuit
    ("kgreedy-consolidate[r=1]", "kgreedy"),
)
CELLS = ("small-layered-ep", "small-random-ep", "medium-layered-ir")


def main() -> int:
    from repro.obs.telemetry import Telemetry
    from repro.schedulers.registry import make_scheduler
    from repro.sim.engine import simulate
    from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

    failures: list[str] = []

    def check(label: str, condition: bool) -> None:
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    for cell in CELLS:
        spec = WORKLOAD_CELLS[cell]
        print(f"{cell}:")
        for i in range(INSTANCES_PER_CELL):
            ss = np.random.SeedSequence([SEED, i])
            inst_ss, base_ss, var_ss = ss.spawn(3)
            job, system = sample_instance(spec, np.random.default_rng(inst_ss))
            for var_name, base_name in PAIRS:
                base = simulate(
                    job, system, make_scheduler(base_name),
                    rng=np.random.default_rng(base_ss), record_trace=True,
                )
                for telemetry in (None, Telemetry()):
                    var = simulate(
                        job, system, make_scheduler(var_name),
                        rng=np.random.default_rng(var_ss),
                        record_trace=True, telemetry=telemetry,
                    )
                    obs = "obs" if telemetry is not None else "bare"
                    tag = f"i={i} {var_name} == {base_name} [{obs}]"
                    check(
                        f"{tag}: makespan {var.makespan} == {base.makespan}",
                        var.makespan == base.makespan,
                    )
                    check(
                        f"{tag}: decisions {var.decisions} == {base.decisions}",
                        var.decisions == base.decisions,
                    )
                    check(
                        f"{tag}: trace segments identical",
                        var.trace.segments == base.trace.segments,
                    )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nenergy-off identity ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
