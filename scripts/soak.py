#!/usr/bin/env python
"""Sustained-soak harness for the sharded scheduling cluster.

Drives an open-loop mixed profile (``/schedule`` + ``/sweep`` +
``/stream``) against a freshly spawned ``repro route`` cluster at each
shard count (default 1, 2, 4), records time-bucketed p50/p95/p99
latency trajectories, and asserts the serving-plane contract: **every
offered request is answered** (zero hung, zero silently dropped) and
the SIGTERM drain is clean at every shard count.

The profile mixes three request classes:

* *cheap* — ``/schedule`` cycling a small seed set, plus ``/sweep``
  and ``/stream`` on fixed seeds: warm LRU hits on their owner shard
  after the priming pass, answered on the event loop without touching
  the compute pool (the ``/sweep`` ones also exercise the persistent
  result store shared across shards);
* *mid* — ``/schedule`` with a never-repeating seed: real compute
  (~tens of ms) that must go through the shard's admission queue and
  thread pool;
* *heavy* — fresh ``/sweep`` requests (time-salted seeds, never
  cached) at a low Poisson rate — each one fans its chunks across the
  owning shard's *entire* thread pool for seconds while holding the
  GIL.

The mid/heavy interaction is the point of the experiment.  On this
class of host the shards do not get more cores by existing — what
sharding buys is **blast-radius isolation**: with one shard, every
heavy sweep saturates the single thread pool and the single bounded
admission queue through which *all* mid traffic must pass, so mids
shed (429/504) for the duration of every blast; with four shards a
blast only degrades the 1/4 of the fingerprint space that hashes to
its owner, and the other shards' queues and pools keep serving.  The
harness offers the *identical* arrival plan to every shard count and
measures sustained ok-goodput over the offered window; the run fails
if 4 shards do not beat 1.

Run from the repo root::

    PYTHONPATH=src python scripts/soak.py               # full: >= 1e5 requests
    PYTHONPATH=src python scripts/soak.py --smoke        # CI: 2 shards, seconds

Results merge into ``BENCH_service.json`` under the ``"soak"`` key
(the loadgen's single-daemon results live under ``"loadgen"``).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from loadgen import fmt_ms, merge_write, percentile  # noqa: E402
from repro.cluster.testing import spawn_cluster  # noqa: E402
from repro.service.client import ServiceClient, ServiceResponse  # noqa: E402
from repro.service.testing import free_port  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_service.json"

CHEAP_CELL = "small-layered-ep"
HEAVY_CELL = "medium-layered-ir"

#: Cheap-class mix (must sum to 1): schedule / cached sweep / cached stream.
MIX = (("schedule", 0.90), ("sweep", 0.05), ("stream", 0.05))
SCHEDULE_SEEDS = 16
SWEEP_SEEDS = 4
STREAM_SEEDS = 4
#: Mid-class seeds start here so they never collide with the cheap set.
MID_SEED_BASE = 1_000_000
HEAVY_DEADLINE = 30.0
#: 67 instances of the heavy cell is ~2s of pure compute, fanned over
#: 4 chunks — enough to occupy a shard's whole default thread pool.
HEAVY_INSTANCES = 67


def cheap_payload(kind: str, index: int) -> dict:
    if kind == "schedule":
        return {"cell": CHEAP_CELL, "scheduler": "mqb",
                "seed": index % SCHEDULE_SEEDS}
    if kind == "sweep":
        return {"cell": CHEAP_CELL, "algorithms": ["mqb", "kgreedy"],
                "n_instances": 10, "seed": 2011 + index % SWEEP_SEEDS}
    return {"cell": CHEAP_CELL, "policy": "global-mqb", "n_jobs": 3,
            "seed": index % STREAM_SEEDS}


def mid_payload(index: int) -> dict:
    """A never-repeating schedule: always a cache miss, always pool-bound."""
    return {"cell": CHEAP_CELL, "scheduler": "mqb",
            "seed": MID_SEED_BASE + index}


def heavy_payload(salt: int, index: int) -> dict:
    """A fresh sweep: the time salt guarantees no cache layer (LRU or
    the persistent store from an earlier soak) can answer it."""
    return {"cell": HEAVY_CELL, "algorithms": ["mqb"],
            "n_instances": HEAVY_INSTANCES,
            "seed": salt * 10_000 + index, "deadline": HEAVY_DEADLINE}


def build_schedule(
    rate: float,
    mid_rate: float,
    heavy_rate: float,
    duration: float,
    seed: int,
    salt: int,
) -> list[tuple[float, str, str, dict]]:
    """The full open-loop plan: ``(at, class, kind, payload)`` sorted by
    arrival time.  Drawn up front so the offered load never depends on
    responses; built from the same ``seed`` for every shard count so
    the comparison offers byte-identical plans (only the heavy seeds
    carry the per-config salt, to defeat the persistent store)."""
    rng = np.random.default_rng(seed)

    def poisson_arrivals(r: float) -> np.ndarray:
        if r <= 0:
            return np.empty(0)
        gaps = rng.exponential(1.0 / r, size=max(1, int(r * duration * 2)))
        arrivals = np.cumsum(gaps)
        return arrivals[arrivals < duration]

    plan: list[tuple[float, str, str, dict]] = []
    kinds, weights = zip(*MIX)
    choices = rng.choice(len(kinds), size=len(arr := poisson_arrivals(rate)),
                         p=np.asarray(weights))
    for index, at in enumerate(arr):
        kind = kinds[int(choices[index])]
        plan.append((float(at), "cheap", kind, cheap_payload(kind, index)))
    for index, at in enumerate(poisson_arrivals(mid_rate)):
        plan.append((float(at), "mid", "schedule", mid_payload(index)))
    for index, at in enumerate(poisson_arrivals(heavy_rate)):
        plan.append((float(at), "heavy", "sweep", heavy_payload(salt, index)))
    plan.sort(key=lambda item: item[0])
    return plan


def prime_caches(client: ServiceClient) -> int:
    """Synchronously warm every cheap fingerprint's owner shard, so the
    measured window is steady-state rather than cold-start."""
    n = 0
    for seed in range(SCHEDULE_SEEDS):
        client.post("schedule", cheap_payload("schedule", seed))
        n += 1
    for seed in range(SWEEP_SEEDS):
        client.post("sweep", cheap_payload("sweep", seed))
        n += 1
    for seed in range(STREAM_SEEDS):
        client.post("stream", cheap_payload("stream", seed))
        n += 1
    return n


def run_soak_level(
    client: ServiceClient,
    plan: list[tuple[float, str, str, dict]],
    duration: float,
    senders: int,
    mid_senders: int,
    heavy_senders: int,
    bucket_seconds: float,
    join_grace: float,
) -> dict:
    """Offer the plan open-loop from a sender pool; return the record.

    Each class runs on its own disjoint sender subset so a sender
    blocked on a multi-second sweep (or a mid request waiting out its
    deadline) never delays cheap arrivals — the generator itself must
    not reintroduce the head-of-line blocking it is measuring.
    """
    results: list[tuple[float, str, str, ServiceResponse] | None]
    results = [None] * len(plan)
    cheap_pool = max(1, senders - mid_senders - heavy_senders)

    by_sender: dict[int, list[int]] = {}
    counters = {"cheap": 0, "mid": 0, "heavy": 0}
    for index, (_, klass, _, _) in enumerate(plan):
        n = counters[klass]
        counters[klass] += 1
        if klass == "heavy" and heavy_senders:
            slot = cheap_pool + mid_senders + n % heavy_senders
        elif klass == "mid" and mid_senders:
            slot = cheap_pool + n % mid_senders
        else:
            slot = n % cheap_pool
        by_sender.setdefault(slot, []).append(index)

    start = time.perf_counter()

    def sender(indices: list[int]) -> None:
        for index in indices:
            at, klass, kind, payload = plan[index]
            delay = start + at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            t0 = time.perf_counter()
            try:
                response = client.post(kind, payload)
            except Exception as exc:  # transport failure: an answer, not a hang
                response = ServiceResponse(
                    status=0,
                    body={"error": {
                        "code": "transport",
                        "message": f"{type(exc).__name__}: {exc}",
                    }},
                    latency=time.perf_counter() - t0,
                )
            results[index] = (at, klass, kind, response)

    threads = [
        threading.Thread(target=sender, args=(indices,), daemon=True)
        for indices in by_sender.values()
    ]
    for thread in threads:
        thread.start()
    horizon = plan[-1][0] + join_grace if plan else join_grace
    join_deadline = start + horizon
    for thread in threads:
        thread.join(timeout=max(0.0, join_deadline - time.perf_counter()))
    elapsed = time.perf_counter() - start
    hung = sum(1 for r in results if r is None)

    answered = [r for r in results if r is not None]

    def census(klass: str) -> dict:
        rows = [r for r in answered if r[1] == klass]
        ok = [r for r in rows if r[3].ok]
        latencies = sorted(r[3].latency for r in ok)
        codes: dict[str, int] = {}
        for row in rows:
            if not row[3].ok:
                code = row[3].error_code or f"http_{row[3].status}"
                codes[code] = codes.get(code, 0) + 1
        return {
            "offered": len(rows),
            "ok": len(ok),
            "errors": codes,
            "latency": {
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
            },
            "sources": {
                source: sum(1 for r in ok if r[3].body.get("source") == source)
                for source in ("fresh", "cached", "joined")
            },
        }

    # The latency trajectory buckets cover the serving plane (cheap +
    # mid, by arrival time); heavies are background load, reported in
    # their own census but kept out of the percentile stream.
    buckets = []
    if plan:
        n_buckets = int(plan[-1][0] // bucket_seconds) + 1
        for b in range(n_buckets):
            lo, hi = b * bucket_seconds, (b + 1) * bucket_seconds
            rows = [r for r in answered if r[1] != "heavy" and lo <= r[0] < hi]
            latencies = sorted(r[3].latency for r in rows if r[3].ok)
            buckets.append({
                "t": lo,
                "offered": sum(1 for at, klass, _, _ in plan
                               if klass != "heavy" and lo <= at < hi),
                "ok": len(latencies),
                "shed": sum(1 for r in rows if not r[3].ok),
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
            })

    cheap = census("cheap")
    mid = census("mid")
    heavy = census("heavy")
    total_ok = cheap["ok"] + mid["ok"] + heavy["ok"]
    return {
        "offered": len(plan),
        "answered": len(answered),
        "hung": hung,
        "elapsed": elapsed,
        "ok": total_ok,
        # Goodput over the *offered* window: the plan is identical for
        # every shard count, so this compares ok-counts, not clock
        # noise in the drain tail.
        "throughput": total_ok / duration if duration > 0 else 0.0,
        "cheap": cheap,
        "mid": mid,
        "heavy": heavy,
        "buckets": buckets,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to soak (default 1,2,4)",
    )
    parser.add_argument(
        "--rate", type=float, default=170.0,
        help="cheap offered load in req/s (default 170)",
    )
    parser.add_argument(
        "--mid-rate", type=float, default=8.0,
        help="pool-bound fresh schedules per second (default 8)",
    )
    parser.add_argument(
        "--heavy-rate", type=float, default=0.2,
        help="fresh heavy sweeps per second (default 0.2)",
    )
    parser.add_argument(
        "--duration", type=float, default=190.0,
        help="seconds of offered load per shard count (default 190)",
    )
    parser.add_argument(
        "--deadline", type=float, default=1.5,
        help="per-shard default deadline in seconds (default 1.5; heavy "
        "sweeps carry their own 30s deadline)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=8,
        help="per-shard admission queue depth (default 8 — small on "
        "purpose, so a blast sheds loudly instead of buffering)",
    )
    parser.add_argument(
        "--senders", type=int, default=32,
        help="sender threads (default 32; 4 are reserved for heavies "
        "and 4 for mids)",
    )
    parser.add_argument(
        "--bucket", type=float, default=10.0,
        help="latency-trajectory bucket width in seconds (default 10)",
    )
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI preset: 2 shards only, ~10s, a few hundred requests",
    )
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args(argv)

    if args.smoke:
        args.shards, args.rate, args.duration = "2", 40.0, 10.0
        args.mid_rate, args.heavy_rate = 3.0, 0.4
        args.senders, args.bucket = 16, 5.0

    shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    salt = int(time.time()) % 1_000_000
    exit_code = 0
    configs = []

    for config_index, n_shards in enumerate(shard_counts):
        plan = build_schedule(
            args.rate, args.mid_rate, args.heavy_rate, args.duration,
            seed=args.seed, salt=salt + config_index,
        )
        print(f"[soak] {n_shards} shard(s): offering {len(plan)} requests "
              f"({args.rate:g}/s cheap + {args.mid_rate:g}/s mid + "
              f"{args.heavy_rate:g}/s heavy for {args.duration:g}s)",
              file=sys.stderr)
        port = free_port()
        spawned = spawn_cluster(
            port, shards=n_shards, workers_per_shard=0,
            queue_limit=args.queue_limit, default_deadline=args.deadline,
        )
        health: dict = {}
        metrics: dict = {}
        try:
            primed = prime_caches(spawned.client)
            record = run_soak_level(
                spawned.client, plan, duration=args.duration,
                senders=args.senders, mid_senders=4, heavy_senders=4,
                bucket_seconds=args.bucket,
                join_grace=HEAVY_DEADLINE + 60.0,
            )
            try:
                health = spawned.client.healthz()
                metrics = spawned.client.metrics()
            except Exception as exc:
                print(f"[soak] warning: post-run metrics fetch failed: {exc}",
                      file=sys.stderr)
        finally:
            code = spawned.terminate()
        record.update({
            "shards": n_shards,
            "primed": primed,
            "clean_sigterm_exit": code == 0,
            "healthy_shards": health.get("healthy_shards"),
            "router_counters": {
                k: v for k, v in sorted(
                    metrics.get("router", {}).get("counters", {}).items()
                )
                if k.startswith(("router.", "supervisor."))
            },
        })
        configs.append(record)
        cheap, mid = record["cheap"], record["mid"]
        print(
            f"[soak]   answered {record['answered']}/{record['offered']}, "
            f"hung {record['hung']}, ok {record['ok']} "
            f"({record['throughput']:.1f}/s sustained), cheap p50 "
            f"{fmt_ms(cheap['latency']['p50'])} p99 "
            f"{fmt_ms(cheap['latency']['p99'])}, mid ok {mid['ok']}/"
            f"{mid['offered']} (shed {mid['errors']}), drain "
            f"{'clean' if code == 0 else f'EXIT {code}'}",
            file=sys.stderr,
        )
        if record["hung"]:
            print(f"[soak] FAIL: {record['hung']} hung requests at "
                  f"{n_shards} shard(s)", file=sys.stderr)
            exit_code = 1
        if code != 0:
            print(f"[soak] FAIL: unclean drain (exit {code}) at "
                  f"{n_shards} shard(s)", file=sys.stderr)
            exit_code = 1

    by_shards = {record["shards"]: record for record in configs}
    if 1 in by_shards and max(by_shards) > 1:
        solo, best = by_shards[1], by_shards[max(by_shards)]
        if best["throughput"] <= solo["throughput"]:
            print(
                f"[soak] FAIL: {best['shards']} shards sustained "
                f"{best['throughput']:.1f}/s, not above 1 shard's "
                f"{solo['throughput']:.1f}/s", file=sys.stderr,
            )
            exit_code = 1

    payload = {
        "benchmark": "cluster-soak",
        "recorded": time.strftime("%Y-%m-%d %H:%M:%S"),
        "workload": {
            "cheap_cell": CHEAP_CELL,
            "heavy_cell": HEAVY_CELL,
            "mix": dict(MIX),
            "rate": args.rate,
            "mid_rate": args.mid_rate,
            "heavy_rate": args.heavy_rate,
            "heavy_instances": HEAVY_INSTANCES,
            "duration": args.duration,
            "deadline": args.deadline,
            "queue_limit": args.queue_limit,
            "senders": args.senders,
            "heavy_salt": salt,
            "arrivals": "open-loop Poisson, identical plan per shard "
                        "count, per-class sender pools",
        },
        "total_offered": sum(r["offered"] for r in configs),
        "total_hung": sum(r["hung"] for r in configs),
        "configs": configs,
        "passed": exit_code == 0,
    }
    merge_write(Path(args.out), "soak", payload)
    print(f"[soak] wrote {args.out} "
          f"({payload['total_offered']} requests offered, "
          f"{payload['total_hung']} hung)", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
