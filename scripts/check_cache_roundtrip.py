#!/usr/bin/env python
"""CI guard: a sweep cached twice must be all-hits and bit-identical.

Runs a small paired-comparison sweep three times against a fresh cache
directory:

1. with the cache disabled — the ground truth,
2. cold — computes every instance and persists it,
3. warm — must be answered *entirely* from the cache.

Asserts that (a) the warm run records exactly ``n_instances`` cache
hits and zero misses/invalidations, (b) it never samples an instance
(``sweep.instances`` stays absent — hits skip the engines entirely),
and (c) all three :class:`SeriesStats` results compare ``==`` —
float-for-float, not approximately.  Exercised serial and with a
2-worker pool.

With ``--engine batch`` the cold and warm runs go through the batched
lockstep engine while the ground truth stays scalar — and an extra
cross-engine warm pass reads the cache back under the *other* engine.
All of it must still be all-hits and float-identical, which proves the
cache fingerprints are engine-mode-invariant: an entry written by one
engine answers the other, because the engines are bit-identical.

A final cross-backend pass flips ``REPRO_NATIVE`` (numpy vs the
compiled MQB kernel, :mod:`repro.native`) and reads the same cache
back: fingerprints must be native-invariant too, so a cache written
with one selection backend answers the other.

Run from the repo root (CI sets a throwaway ``REPRO_CACHE_DIR``)::

    PYTHONPATH=src REPRO_CACHE=1 REPRO_CACHE_DIR=/tmp/repro-ci-cache \
        python scripts/check_cache_roundtrip.py [--engine batch]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

N_INSTANCES = 8
SEED = 2026
ALGORITHMS = ("kgreedy", "mqb", "lspan")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("scalar", "batch"),
        default="scalar",
        help="engine for the cold/warm runs (ground truth is always scalar)",
    )
    args = parser.parse_args()
    engine = args.engine
    other = "scalar" if engine == "batch" else "batch"

    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-cache-")
    os.environ["REPRO_CACHE"] = "1"

    from repro.experiments.runner import run_comparison
    from repro.obs.telemetry import Telemetry
    from repro.workloads.generator import WORKLOAD_CELLS

    spec = WORKLOAD_CELLS["small-layered-ep"]

    os.environ["REPRO_CACHE"] = "0"
    truth = run_comparison(spec, ALGORITHMS, N_INSTANCES, SEED)
    os.environ["REPRO_CACHE"] = "1"

    failures: list[str] = []

    def check(label: str, condition: bool) -> None:
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    for workers in (1, 2):
        print(f"workers={workers} engine={engine}:")
        cold_t = Telemetry()
        cold = run_comparison(
            spec, ALGORITHMS, N_INSTANCES, SEED,
            n_workers=workers, telemetry=cold_t, engine=engine,
        )
        warm_t = Telemetry()
        warm = run_comparison(
            spec, ALGORITHMS, N_INSTANCES, SEED,
            n_workers=workers, telemetry=warm_t, engine=engine,
        )
        cross_t = Telemetry()
        cross = run_comparison(
            spec, ALGORITHMS, N_INSTANCES, SEED,
            n_workers=workers, telemetry=cross_t, engine=other,
        )
        check("cold run bit-identical to cache-disabled run", cold == truth)
        check("warm run bit-identical to cache-disabled run", warm == truth)
        check(
            f"warm run is all hits ({N_INSTANCES}/{N_INSTANCES})",
            warm_t.counters.get("cache.hits") == N_INSTANCES,
        )
        check(
            "warm run has no misses or invalidations",
            "cache.misses" not in warm_t.counters
            and "cache.invalidated" not in warm_t.counters,
        )
        check(
            "warm run never sampled an instance",
            "sweep.instances" not in warm_t.counters,
        )
        # Engine-mode-invariant fingerprints: reading the same cache
        # back under the other engine is still pure hits and identical.
        check(
            f"cross-engine ({other}) warm run bit-identical",
            cross == truth,
        )
        check(
            f"cross-engine warm run is all hits ({N_INSTANCES}/{N_INSTANCES})",
            cross_t.counters.get("cache.hits") == N_INSTANCES
            and "cache.misses" not in cross_t.counters,
        )
        # Native-backend-invariant fingerprints: flip the MQB selection
        # backend (numpy <-> compiled kernel) and read the cache back.
        from repro import native

        flip = "0" if native.requested() and native.load_kernel() else "1"
        prev = os.environ.get("REPRO_NATIVE")
        os.environ["REPRO_NATIVE"] = flip
        try:
            nat_t = Telemetry()
            nat = run_comparison(
                spec, ALGORITHMS, N_INSTANCES, SEED,
                n_workers=workers, telemetry=nat_t, engine=engine,
            )
        finally:
            if prev is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = prev
        check(
            f"cross-backend (REPRO_NATIVE={flip}) warm run bit-identical",
            nat == truth,
        )
        check(
            f"cross-backend warm run is all hits ({N_INSTANCES}/{N_INSTANCES})",
            nat_t.counters.get("cache.hits") == N_INSTANCES
            and "cache.misses" not in nat_t.counters,
        )
        # Clear between worker counts so each pass is a true cold start.
        if workers == 1:
            from repro.resultcache.store import ResultStore

            ResultStore().clear()

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\ncache round-trip ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
