#!/usr/bin/env python
"""CI guard: the native MQB kernel IS the numpy path, bit for bit.

The compiled selection kernel (:mod:`repro.native`) promises the
identical IEEE-double arithmetic in the identical order as the numpy
``MQB._pick_best`` / batch ``_MQBLockstep`` formulations, so winners —
and therefore makespans, decision counts, and every trace segment
(task, type, processor id, start, end) — must match **exactly** under
both backends.  This is the anchor that keeps the kernel honest: any
drift in scoring order, comparison semantics or pool bookkeeping shows
up here as a hard failure, not as a plausible-looking speedup.

Matrix: 3 workload cells x 3 instances x the MQB balance/carry
variants (lex, min, sum, nocarry) x telemetry off/on x both engines
(scalar ``simulate`` and ``simulate_batch``).  The numpy reference is
produced with ``REPRO_NATIVE=0``; the native runs use
``REPRO_NATIVE=1`` and additionally assert (via telemetry counters)
that the kernel actually carried the picks — a silently-fallen-back
run comparing numpy against numpy would be a vacuous pass.

The kernel must be loadable: CI compiles it in an explicit step before
running this guard, and a missing kernel exits nonzero here.

Run from the repo root (no cache involvement — results are computed
fresh on both sides)::

    PYTHONPATH=src python scripts/check_native_identity.py
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

os.environ["REPRO_CACHE"] = "0"

import numpy as np

SEED = 7
INSTANCES_PER_CELL = 3
VARIANTS = ("mqb", "mqb[min]", "mqb[sum]", "mqb[nocarry]")
CELLS = (
    ("small-layered-ep", 4),
    ("small-random-ep", 16),
    ("medium-layered-ir", 8),
)


def main() -> int:
    from repro import native
    from repro.obs.telemetry import Telemetry
    from repro.schedulers.registry import make_scheduler
    from repro.sim.batch import simulate_batch
    from repro.sim.engine import simulate
    from repro.system.resources import ResourceConfig
    from repro.workloads.generator import WORKLOAD_CELLS, sample_job

    os.environ["REPRO_NATIVE"] = "1"
    if native.load_kernel() is None:
        print(
            "FAIL: native kernel unavailable "
            f"({native.native_status()['error']}) — compile it first "
            "(python setup.py build_ext --inplace)",
            file=sys.stderr,
        )
        return 1

    failures: list[str] = []

    def check(label: str, condition: bool) -> None:
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    for cell, p_per_type in CELLS:
        spec = WORKLOAD_CELLS[cell]
        system = ResourceConfig((p_per_type,) * spec.num_types)
        print(f"{cell} P={p_per_type}:")
        jobs = [
            sample_job(
                spec, np.random.default_rng(np.random.SeedSequence([SEED, i]))
            )
            for i in range(INSTANCES_PER_CELL)
        ]
        instances = [(job, system) for job in jobs]
        for name in VARIANTS:
            os.environ["REPRO_NATIVE"] = "0"
            ref_scalar = [
                simulate(job, system, make_scheduler(name), record_trace=True)
                for job in jobs
            ]
            ref_batch = simulate_batch(instances, name, record_trace=True)
            for telemetry in (None, Telemetry()):
                os.environ["REPRO_NATIVE"] = "1"
                obs = "obs" if telemetry is not None else "bare"
                nat_scalar = [
                    simulate(
                        job, system, make_scheduler(name),
                        record_trace=True, telemetry=telemetry,
                    )
                    for job in jobs
                ]
                nat_batch = simulate_batch(
                    instances, name, record_trace=True, telemetry=telemetry
                )
                for i, (ref, nat) in enumerate(zip(ref_scalar, nat_scalar)):
                    tag = f"i={i} {name} scalar [{obs}]"
                    check(
                        f"{tag}: makespan {nat.makespan} == {ref.makespan}",
                        nat.makespan == ref.makespan,
                    )
                    check(
                        f"{tag}: decisions {nat.decisions} == {ref.decisions}",
                        nat.decisions == ref.decisions,
                    )
                    check(
                        f"{tag}: trace segments identical",
                        nat.trace.segments == ref.trace.segments,
                    )
                for i, (ref, nat) in enumerate(zip(ref_batch, nat_batch)):
                    tag = f"i={i} {name} batch [{obs}]"
                    check(
                        f"{tag}: makespan {nat.makespan} == {ref.makespan}",
                        nat.makespan == ref.makespan,
                    )
                    check(
                        f"{tag}: decisions {nat.decisions} == {ref.decisions}",
                        nat.decisions == ref.decisions,
                    )
                    check(
                        f"{tag}: trace segments identical",
                        nat.trace.segments == ref.trace.segments,
                    )
            # The telemetry runs must show the kernel actually ran.
            snap = telemetry.snapshot()
            check(
                f"{name}: native kernel carried picks "
                f"(calls={snap.counters.get('native.calls', 0)}, "
                f"fallbacks={snap.counters.get('native.fallbacks', 0)})",
                snap.counters.get("native.calls", 0) > 0
                and snap.counters.get("native.fallbacks", 0) == 0,
            )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nnative-backend identity ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
