#!/usr/bin/env python
"""Open-loop Poisson load generator for the scheduling daemon.

Offers requests to a running (or ``--spawn``-ed) daemon at fixed rates
and records what actually happened: per-request status and latency,
throughput, and p50/p95/p99 latency per offered-load level, written to
``BENCH_service.json``.

**Open-loop** means arrivals are scheduled by a Poisson process and
never wait for earlier responses — the generator keeps offering load
when the daemon slows down, which is exactly the regime where admission
control earns its keep: the run asserts that under overload every
excess request gets a structured 429 (none hang, none are silently
dropped).

Run from the repo root::

    PYTHONPATH=src python scripts/loadgen.py --spawn
    PYTHONPATH=src python scripts/loadgen.py --url http://127.0.0.1:8512

``--spawn`` launches ``repro serve`` on a free port with a server-side
rate limit chosen *below* the top offered rate, so the overload level
deterministically produces rejections regardless of host speed, and
asserts the daemon exits 0 on SIGTERM after the run.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient, ServiceResponse  # noqa: E402
from repro.service.testing import free_port, spawn_service  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_service.json"

CELL = "small-layered-ep"


def percentile(latencies: list[float], q: float) -> float | None:
    """A percentile, or ``None`` on an empty sample (a fully rejected
    level has no ok-latencies; null in the JSON beats a fake 0.0)."""
    return float(np.percentile(np.asarray(latencies), q)) if latencies else None


def fmt_ms(value: float | None) -> str:
    return "n/a" if value is None else f"{value * 1000:.1f}ms"


def merge_write(out: Path, key: str, payload: dict) -> None:
    """Set ``key`` in the benchmark JSON, preserving other harnesses'
    sections (``loadgen`` and ``soak`` share ``BENCH_service.json``)."""
    merged: dict = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            if "benchmark" in existing:  # pre-merge flat layout
                merged["loadgen"] = existing
            else:
                merged = existing
    merged[key] = payload
    out.write_text(json.dumps(merged, indent=2) + "\n")


def run_level(
    client: ServiceClient,
    rate: float,
    duration: float,
    seed: int,
    distinct_seeds: int,
) -> dict:
    """Offer ``rate`` req/s for ``duration`` seconds; return the record.

    Request seeds cycle over ``distinct_seeds`` values so the level
    measures a realistic mix of fresh computation and warm cache hits
    rather than hammering one fingerprint.
    """
    rng = np.random.default_rng(seed)
    # Pre-draw the whole Poisson arrival schedule (open loop: the plan
    # does not depend on responses).
    gaps = rng.exponential(1.0 / rate, size=max(1, int(rate * duration * 2)))
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals < duration]

    responses: list[ServiceResponse | None] = [None] * len(arrivals)
    threads: list[threading.Thread] = []

    def fire(index: int) -> None:
        t0 = time.perf_counter()
        try:
            responses[index] = client.post(
                "schedule",
                {"cell": CELL, "scheduler": "mqb", "seed": index % distinct_seeds},
            )
        except Exception as exc:
            # A dead daemon mid-level is an *answered-with-error* data
            # point (errors_other), not a hung request: record a
            # synthetic status-0 response so the level's accounting
            # still balances and the join below never waits on it.
            responses[index] = ServiceResponse(
                status=0,
                body={"error": {
                    "code": "transport",
                    "message": f"{type(exc).__name__}: {exc}",
                }},
                latency=time.perf_counter() - t0,
            )
            print(f"  !! transport failure on request {index}: {exc}",
                  file=sys.stderr)

    start = time.perf_counter()
    for index, at in enumerate(arrivals):
        delay = start + float(at) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(index,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - start

    completed = [r for r in responses if r is not None]
    ok = [r for r in completed if r.ok]
    rejected = [r for r in completed if r.status == 429]
    other = [r for r in completed if not r.ok and r.status != 429]
    ok_latencies = sorted(r.latency for r in ok)
    record = {
        "offered_rate": rate,
        "duration": elapsed,
        "offered": len(arrivals),
        "answered": len(completed),
        "hung_or_dropped": len(arrivals) - len(completed),
        "ok": len(ok),
        "rejected_429": len(rejected),
        "errors_other": len(other),
        "throughput": len(ok) / elapsed if elapsed > 0 else 0.0,
        "latency": {
            "p50": percentile(ok_latencies, 50),
            "p95": percentile(ok_latencies, 95),
            "p99": percentile(ok_latencies, 99),
            "mean": float(np.mean(ok_latencies)) if ok_latencies else None,
        },
        "sources": {
            source: sum(1 for r in ok if r.body.get("source") == source)
            for source in ("fresh", "cached", "joined")
        },
        "rejection_codes": sorted(
            {r.error_code for r in rejected if r.error_code is not None}
        ),
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None,
        help="daemon URL (default: spawn one; see --spawn)",
    )
    parser.add_argument(
        "--spawn", action="store_true",
        help="launch `repro serve` on a free port for the run (implied "
        "when --url is omitted)",
    )
    parser.add_argument(
        "--rates", default="4,40",
        help="comma-separated offered loads in req/s (default 4,40)",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds per load level (default 5)",
    )
    parser.add_argument(
        "--rate-limit", type=float, default=10.0,
        help="server-side admission rate when spawning (default 10/s; "
        "set below the top offered rate so overload is deterministic)",
    )
    parser.add_argument("--seed", type=int, default=2011, help="arrival seed")
    parser.add_argument(
        "--distinct-seeds", type=int, default=16,
        help="distinct request fingerprints per level (default 16)",
    )
    parser.add_argument(
        "--out", default=str(OUT_PATH), help=f"output path (default {OUT_PATH})"
    )
    args = parser.parse_args(argv)

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if len(rates) < 2:
        parser.error("need at least two offered-load levels (--rates)")

    spawned = None
    if args.url is None or args.spawn:
        port = free_port()
        print(f"[loadgen] spawning repro serve on port {port} "
              f"(rate limit {args.rate_limit}/s)", file=sys.stderr)
        spawned = spawn_service(
            port, workers=0, queue_limit=64,
            rate_limit=args.rate_limit, burst=args.rate_limit,
        )
        client = spawned.client
    else:
        client = ServiceClient.from_url(args.url)
        client.wait_until_up(timeout=10.0)

    levels = []
    exit_code = 0
    try:
        for level_index, rate in enumerate(rates):
            print(f"[loadgen] level {level_index + 1}/{len(rates)}: "
                  f"{rate:g} req/s for {args.duration:g}s", file=sys.stderr)
            record = run_level(
                client, rate, args.duration,
                seed=args.seed + level_index,
                distinct_seeds=args.distinct_seeds,
            )
            levels.append(record)
            print(
                f"  offered {record['offered']}, ok {record['ok']}, "
                f"429 {record['rejected_429']}, "
                f"p50 {fmt_ms(record['latency']['p50'])}, "
                f"p99 {fmt_ms(record['latency']['p99'])}, "
                f"throughput {record['throughput']:.1f}/s",
                file=sys.stderr,
            )
        metrics = client.metrics()
    finally:
        if spawned is not None:
            code = spawned.terminate()
            print(f"[loadgen] daemon exited {code} after SIGTERM",
                  file=sys.stderr)
            if code != 0:
                print("[loadgen] FAIL: drain was not clean", file=sys.stderr)
                exit_code = 1

    # The admission-control contract under overload: every offered
    # request was answered (none hung, none silently dropped), and the
    # overloaded level produced explicit structured rejections.
    for record in levels:
        if record["hung_or_dropped"]:
            print(f"[loadgen] FAIL: {record['hung_or_dropped']} requests "
                  f"unanswered at {record['offered_rate']:g}/s",
                  file=sys.stderr)
            exit_code = 1
        if record["errors_other"]:
            print(f"[loadgen] FAIL: {record['errors_other']} non-429 errors "
                  f"at {record['offered_rate']:g}/s", file=sys.stderr)
            exit_code = 1
    if spawned is not None and rates[-1] > args.rate_limit:
        overloaded = levels[-1]
        if not overloaded["rejected_429"]:
            print("[loadgen] FAIL: overload level produced no 429s",
                  file=sys.stderr)
            exit_code = 1

    counters = metrics["telemetry"]["counters"]
    payload = {
        "benchmark": "service-loadgen",
        "recorded": time.strftime("%Y-%m-%d %H:%M:%S"),
        "workload": {
            "cell": CELL,
            "scheduler": "mqb",
            "distinct_seeds": args.distinct_seeds,
            "arrivals": "open-loop Poisson",
        },
        "daemon": {
            "spawned": spawned is not None,
            "rate_limit": args.rate_limit if spawned is not None else None,
            "clean_sigterm_exit": (exit_code == 0) if spawned is not None else None,
        },
        "levels": levels,
        "admission_counters": {
            k: v for k, v in sorted(counters.items())
            if k.startswith(("admission.", "cache.", "dedup.", "service.requests"))
        },
        "passed": exit_code == 0,
    }
    merge_write(Path(args.out), "loadgen", payload)
    print(f"[loadgen] wrote {args.out}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
