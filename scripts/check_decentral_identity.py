#!/usr/bin/env python
"""CI guard: the degenerate steal policy IS the centralized engine.

With ``StealPolicy(victims="global", cost=0)`` every processor sees one
shared pool per type, so the decentralized engine must reproduce the
centralized :func:`repro.sim.engine.simulate` **bit-identically** — the
same makespan, the same decision count, and the same trace segment for
every task.  This is the anchor that keeps the work-stealing engine
honest: any drift in event ordering, tie-breaking or seeding shows up
here as a hard failure, not as a plausible-looking overhead curve.

Checks ``dkgreedy[global]`` against ``kgreedy`` and ``dmqb[global]``
against ``mqb`` over several workload cells x system sizes x seeds,
with telemetry both off and on (observability must not perturb the
schedule).  Exits nonzero on the first-summarized mismatch.

Run from the repo root (no cache involvement — results are computed
fresh on both sides)::

    PYTHONPATH=src python scripts/check_decentral_identity.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

SEED = 7
INSTANCES_PER_CELL = 3
PAIRS = (("dkgreedy[global]", "kgreedy"), ("dmqb[global]", "mqb"))
CELLS = (
    ("small-layered-ep", 4),
    ("small-random-ep", 16),
    ("medium-layered-ir", 8),
)


def main() -> int:
    from repro.decentral.engine import simulate_decentralized
    from repro.obs.telemetry import Telemetry
    from repro.schedulers.registry import make_scheduler
    from repro.sim.engine import simulate
    from repro.system.resources import ResourceConfig
    from repro.workloads.generator import WORKLOAD_CELLS, sample_job

    failures: list[str] = []

    def check(label: str, condition: bool) -> None:
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    for cell, p_per_type in CELLS:
        spec = WORKLOAD_CELLS[cell]
        system = ResourceConfig((p_per_type,) * spec.num_types)
        print(f"{cell} P={p_per_type}:")
        for i in range(INSTANCES_PER_CELL):
            ss = np.random.SeedSequence([SEED, i])
            inst_ss, cen_ss, dec_ss = ss.spawn(3)
            job = sample_job(spec, np.random.default_rng(inst_ss))
            for dec_name, cen_name in PAIRS:
                cen = simulate(
                    job, system, make_scheduler(cen_name),
                    rng=np.random.default_rng(cen_ss), record_trace=True,
                )
                for telemetry in (None, Telemetry()):
                    dec = simulate_decentralized(
                        job, system, make_scheduler(dec_name),
                        rng=np.random.default_rng(dec_ss),
                        record_trace=True, telemetry=telemetry,
                    )
                    obs = "obs" if telemetry is not None else "bare"
                    tag = f"i={i} {dec_name} == {cen_name} [{obs}]"
                    check(
                        f"{tag}: makespan {dec.makespan} == {cen.makespan}",
                        dec.makespan == cen.makespan,
                    )
                    check(
                        f"{tag}: decisions {dec.decisions} == {cen.decisions}",
                        dec.decisions == cen.decisions,
                    )
                    check(
                        f"{tag}: trace segments identical",
                        dec.trace.segments == cen.trace.segments,
                    )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\ndegenerate-limit identity ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
