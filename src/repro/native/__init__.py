"""Native compiled backend for the MQB selection loop.

The hot inner loop of every MQB commit — score each ready candidate of
one type, compare lexicographically, swap-remove the winner — lives in
``_mqbkernel.c`` and is consumed through :mod:`ctypes` by both the
scalar scheduler (:class:`repro.schedulers.mqb.MQB`) and the batched
lockstep engine (:mod:`repro.sim.batch`).  The kernel performs the
identical IEEE-double arithmetic in the identical order as the numpy
formulation, so winners — and therefore traces, processor ids and
decision counts — are bit-identical to the pure-numpy path (CI-asserted
by ``scripts/check_native_identity.py``).

Backend selection is environment-driven via ``REPRO_NATIVE``:

``auto`` (default)
    Use the kernel when a prebuilt extension or a working C compiler is
    available; fall back to numpy silently otherwise (one warning).
``1`` / ``on``
    Same dispatch, but the fallback is considered noteworthy — the
    warning names the failure reason.
``0`` / ``off``
    Never load or build anything; pure numpy.

Three load strategies are tried in order, all memoized process-wide:

1. the setuptools-built extension ``repro.native._mqbkernel`` (importing
   it only locates the shared object; symbols are read via ctypes),
2. a previously cached shared object under ``$XDG_CACHE_HOME/repro/native``
   keyed by a hash of the C source,
3. a lazy ``cc -O2 -fPIC -shared -DREPRO_NO_PYTHON`` build into that
   cache — so a plain source checkout works without ever running
   ``setup.py``.

Schedulers must also respect :func:`supported`: ``sum`` balance mode is
only bit-identical for K < 8, where numpy's pairwise row summation
degenerates to the same sequential left-to-right loop the kernel runs
(at K >= 8 numpy switches to unrolled multi-accumulator summation and
the two can differ in the last ulp).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
import warnings
from pathlib import Path

__all__ = [
    "MQBKernel",
    "ABI_VERSION",
    "MODE_CODES",
    "mode",
    "requested",
    "forced",
    "supported",
    "load_kernel",
    "note_fallback",
    "native_status",
]

ABI_VERSION = 1
MODE_CODES = {"lex": 0, "min": 1, "sum": 2}

#: numpy row sums are plain sequential accumulation only below this K.
_PAIRWISE_SAFE_K = 8
#: the kernel scores into fixed stack buffers of this many doubles.
_MAX_K = 1024

_SOURCE = Path(__file__).with_name("_mqbkernel.c")

_kernel: "MQBKernel | None" = None
_load_attempted = False
_load_error: str | None = None
_warned = False
_fallbacks = 0

_c_ll = ctypes.c_longlong
_c_p = ctypes.c_void_p


class MQBKernel:
    """ctypes binding over one loaded ``_mqbkernel`` shared object."""

    def __init__(self, lib: ctypes.CDLL, path: str, backend: str) -> None:
        self.lib = lib
        self.path = path
        #: how the library was obtained: "extension", "cached" or "compiled".
        self.backend = backend

        abi = lib.repro_native_abi
        abi.restype = _c_ll
        abi.argtypes = ()
        self.abi = int(abi())

        pick_pop = lib.repro_mqb_pick_pop
        pick_pop.restype = _c_ll
        # dpool, wpool, spool, m, K, alpha, l, extra, parr, mode, carry
        pick_pop.argtypes = (
            _c_p, _c_p, _c_p, _c_ll, _c_ll, _c_ll, _c_p, _c_p, _c_p,
            _c_ll, _c_ll,
        )
        self.pick_pop = pick_pop

        pick_commit = lib.repro_mqb_pick_commit
        pick_commit.restype = _c_ll
        # d_g, work_g, pool_task, pool_seq, pool_len, l, extra, parr,
        # rows, alphas, n, K, M, mode, carry, out_tasks
        pick_commit.argtypes = (
            _c_p, _c_p, _c_p, _c_p, _c_p, _c_p, _c_p, _c_p, _c_p, _c_p,
            _c_ll, _c_ll, _c_ll, _c_ll, _c_ll, _c_p,
        )
        self.pick_commit = pick_commit


def mode() -> str:
    """Resolved ``REPRO_NATIVE`` setting: ``"auto"``, ``"1"`` or ``"0"``."""
    raw = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
    if raw in ("0", "off", "false", "no", "numpy", "disable", "disabled"):
        return "0"
    if raw in ("1", "on", "true", "yes", "native", "force"):
        return "1"
    return "auto"


def requested() -> bool:
    """Whether the current environment wants the native backend at all."""
    return mode() != "0"


def forced() -> bool:
    """Whether ``REPRO_NATIVE`` explicitly demands the native backend."""
    return mode() == "1"


def supported(balance_mode: str, num_types: int) -> bool:
    """Whether the kernel is bit-identical for this mode/type-count."""
    if num_types < 1 or num_types > _MAX_K:
        return False
    if balance_mode == "sum":
        return num_types < _PAIRWISE_SAFE_K
    return balance_mode in ("lex", "min")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(xdg) / "repro" / "native"


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _source_tag(source: str) -> str:
    plat = sysconfig.get_platform().replace("-", "_").replace(".", "_")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]
    return f"_mqbkernel-abi{ABI_VERSION}-{digest}-{plat}.so"


def _load_library(path: str, backend: str) -> MQBKernel:
    kernel = MQBKernel(ctypes.CDLL(path), path, backend)
    if kernel.abi != ABI_VERSION:
        raise OSError(
            f"native kernel ABI mismatch: built {kernel.abi}, "
            f"expected {ABI_VERSION} ({path})"
        )
    return kernel


def _try_extension() -> MQBKernel | None:
    """The setuptools-built ``repro.native._mqbkernel`` extension."""
    try:
        from repro.native import _mqbkernel  # type: ignore[attr-defined]
    except ImportError:
        return None
    path = getattr(_mqbkernel, "__file__", None)
    if not path:
        return None
    return _load_library(path, "extension")


def _build_shared_object() -> MQBKernel | None:
    """Compile the C source into the user cache and load it."""
    source = _SOURCE.read_text(encoding="utf-8")
    cache = _cache_dir()
    target = cache / _source_tag(source)
    if target.exists():
        return _load_library(str(target), "cached")
    cc = _find_compiler()
    if cc is None:
        raise OSError("no C compiler found (tried $CC, cc, gcc, clang)")
    cache.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    try:
        cmd = [
            cc, "-O2", "-fPIC", "-shared", "-DREPRO_NO_PYTHON",
            str(_SOURCE), "-o", tmp,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise OSError(f"{cc} failed ({detail[:400]})")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return _load_library(str(target), "compiled")


def load_kernel() -> MQBKernel | None:
    """The process-wide kernel, or ``None`` if it cannot be obtained.

    Never raises; the failure reason is kept for :func:`native_status`
    and the one-time fallback warning.  Returns ``None`` immediately
    (without attempting any build) when ``REPRO_NATIVE=0``.
    """
    global _kernel, _load_attempted, _load_error
    if not requested():
        return None
    if _load_attempted:
        return _kernel
    _load_attempted = True
    try:
        _kernel = _try_extension()
        if _kernel is None:
            _kernel = _build_shared_object()
    except Exception as exc:  # noqa: BLE001 - fallback must never raise
        _kernel = None
        _load_error = f"{type(exc).__name__}: {exc}"
    return _kernel


def note_fallback(telemetry=None) -> None:
    """Record one numpy fallback of a run that wanted the native kernel.

    Emits a single process-wide warning (first call only) and counts
    ``native.fallbacks`` on ``telemetry`` when one is attached, so
    ``repro profile`` can report how often the kernel was requested but
    unavailable.
    """
    global _warned, _fallbacks
    _fallbacks += 1
    if not _warned:
        _warned = True
        reason = _load_error or "kernel unavailable"
        warnings.warn(
            f"repro: native MQB kernel requested (REPRO_NATIVE={mode()}) "
            f"but unavailable — using the pure-numpy path ({reason})",
            RuntimeWarning,
            stacklevel=2,
        )
    if telemetry is not None and getattr(telemetry, "enabled", False):
        telemetry.inc("native.fallbacks")


def native_status() -> dict:
    """Introspection snapshot for diagnostics and tests."""
    return {
        "mode": mode(),
        "loaded": _kernel is not None,
        "backend": _kernel.backend if _kernel is not None else None,
        "path": _kernel.path if _kernel is not None else None,
        "attempted": _load_attempted,
        "error": _load_error,
        "fallbacks": _fallbacks,
    }


def _reset_for_tests() -> tuple:
    """Clear memoized loader state; returns a token for :func:`_restore`."""
    global _kernel, _load_attempted, _load_error, _warned, _fallbacks
    token = (_kernel, _load_attempted, _load_error, _warned, _fallbacks)
    _kernel = None
    _load_attempted = False
    _load_error = None
    _warned = False
    _fallbacks = 0
    return token


def _restore(token: tuple) -> None:
    """Undo :func:`_reset_for_tests`."""
    global _kernel, _load_attempted, _load_error, _warned, _fallbacks
    _kernel, _load_attempted, _load_error, _warned, _fallbacks = token
