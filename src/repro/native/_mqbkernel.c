/* Native MQB selection kernel.
 *
 * Implements the hot inner loop of MQB scheduling — score every ready
 * candidate of one type, pick the lexicographically best balance
 * vector, and swap-remove the winner from the ready-pool buffers —
 * for the scalar scheduler (repro.schedulers.mqb.MQB) and the batched
 * lockstep engine (repro.sim.batch._MQBLockstep).
 *
 * Bit-identity contract: every floating-point operation here replays
 * the numpy formulation in the same order on the same operands —
 *
 *   s[j]     = l[j] + extra[j]                (one add, then broadcast)
 *   r[j]     = d[v][j] + s[j]
 *   r[alpha] = r[alpha] - w[v]                (own work leaves its queue)
 *   r[j]     = r[j] / parr[j]
 *
 * followed by a comparison-only selection: "lex" sorts each candidate's
 * vector ascending and compares element-wise (index 0 most
 * significant), "min" compares the row minima, "sum" compares the
 * left-to-right row sums (callers must gate sum mode to K < 8, where
 * numpy's pairwise summation degenerates to the same sequential loop).
 * Ties between equal score vectors break on the *smallest* FIFO ready
 * sequence, exactly like the numpy lexsort's trailing -seq key.  Seqs
 * are unique within a pool, so the winner is a strict maximum and
 * independent of scan order.
 *
 * The file doubles as a CPython extension (so `pip install -e .` with
 * a toolchain ships a prebuilt .so) and as a plain shared library for
 * the lazy `cc -shared -DREPRO_NO_PYTHON` ctypes build path; the
 * symbols are always consumed through ctypes, never through the
 * (empty) Python module.
 */

#include <stddef.h>

#define REPRO_NATIVE_ABI 1
#define MODE_LEX 0
#define MODE_MIN 1
#define MODE_SUM 2

/* Keys live in fixed stack buffers; loaders must gate K <= this. */
#define REPRO_NATIVE_MAX_K 1024

typedef long long i64;

#if defined(_WIN32)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

EXPORT i64 repro_native_abi(void) { return REPRO_NATIVE_ABI; }

static void insertion_sort(double *a, i64 n) {
    for (i64 i = 1; i < n; i++) {
        double v = a[i];
        i64 j = i - 1;
        while (j >= 0 && a[j] > v) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = v;
    }
}

/* Lexicographic "is the candidate better than the incumbent": greater
 * key wins; on a full tie the smaller FIFO seq wins (the numpy path's
 * trailing -seq lexsort key). */
static int key_better(const double *cand, i64 cand_seq,
                      const double *best, i64 best_seq, i64 klen) {
    for (i64 j = 0; j < klen; j++) {
        if (cand[j] > best[j]) return 1;
        if (cand[j] < best[j]) return 0;
    }
    return cand_seq < best_seq;
}

/* Score candidate `drow` (its descendant-value row) into key[0..klen):
 * klen = K for lex (sorted vector), 1 for min/sum. */
static i64 score_candidate(const double *drow, double own_work,
                           const double *s, const double *parr,
                           i64 K, i64 alpha, i64 mode, double *key) {
    if (mode == MODE_LEX) {
        for (i64 j = 0; j < K; j++) {
            double v = drow[j] + s[j];
            if (j == alpha) v -= own_work;
            key[j] = v / parr[j];
        }
        insertion_sort(key, K);
        return K;
    }
    if (mode == MODE_MIN) {
        double best = 0.0;
        for (i64 j = 0; j < K; j++) {
            double v = drow[j] + s[j];
            if (j == alpha) v -= own_work;
            v /= parr[j];
            if (j == 0 || v < best) best = v;
        }
        key[0] = best;
        return 1;
    }
    /* MODE_SUM: numpy's pairwise summation over n < 8 elements is the
     * plain sequential loop below; callers gate K < 8. */
    double acc = 0.0;
    for (i64 j = 0; j < K; j++) {
        double v = drow[j] + s[j];
        if (j == alpha) v -= own_work;
        acc += v / parr[j];
    }
    key[0] = acc;
    return 1;
}

/* Scalar MQB pick + pop over the per-type pool buffers.
 *
 * dpool: m x K candidate descendant rows (row-major), wpool: m own
 * works, spool: m FIFO seqs.  Picks the best candidate, updates
 * l[alpha] -= w[win] (and extra += d[win] when carry), swap-removes
 * row `win` (last row moves into its slot), and returns the winner's
 * original slot so the caller can mirror the swap in its task
 * list/position dict.  Returns -1 on invalid arguments.
 */
EXPORT i64 repro_mqb_pick_pop(double *dpool, double *wpool, i64 *spool,
                              i64 m, i64 K, i64 alpha,
                              double *l, double *extra, const double *parr,
                              i64 mode, i64 carry) {
    double s[REPRO_NATIVE_MAX_K];
    double key_a[REPRO_NATIVE_MAX_K], key_b[REPRO_NATIVE_MAX_K];
    double saved[REPRO_NATIVE_MAX_K];

    if (m <= 0 || K <= 0 || K > REPRO_NATIVE_MAX_K) return -1;
    if (alpha < 0 || alpha >= K) return -1;
    if (mode < MODE_LEX || mode > MODE_SUM) return -1;
    if (mode == MODE_SUM && K >= 8) return -1;

    for (i64 j = 0; j < K; j++) s[j] = l[j] + extra[j];

    double *best_key = key_a, *cand_key = key_b;
    i64 klen = score_candidate(dpool, wpool[0], s, parr, K, alpha, mode,
                               best_key);
    i64 best = 0;
    i64 best_seq = spool[0];
    for (i64 i = 1; i < m; i++) {
        score_candidate(dpool + i * K, wpool[i], s, parr, K, alpha, mode,
                        cand_key);
        if (key_better(cand_key, spool[i], best_key, best_seq, klen)) {
            best = i;
            best_seq = spool[i];
            double *tmp = best_key;
            best_key = cand_key;
            cand_key = tmp;
        }
    }

    /* Commit: read the winner's row before the swap clobbers it. */
    double w_win = wpool[best];
    if (carry) {
        for (i64 j = 0; j < K; j++) saved[j] = dpool[best * K + j];
    }
    l[alpha] -= w_win;
    if (carry) {
        for (i64 j = 0; j < K; j++) extra[j] += saved[j];
    }
    i64 last = m - 1;
    if (best != last) {
        for (i64 j = 0; j < K; j++) dpool[best * K + j] = dpool[last * K + j];
        wpool[best] = wpool[last];
        spool[best] = spool[last];
    }
    return best;
}

/* Batched lockstep pick + commit over n independent (row, alpha)
 * pairs (each row appears at most once per call, so pairs never read
 * each other's updates — exactly the vectorized _pick_multi contract).
 *
 * Pools are the engine's flat (R*K, M) buffers: pair p's candidates
 * occupy slots [g*M, g*M + pool_len[g]) with g = rows[p]*K+alphas[p].
 * For each pair: pick the best candidate (scored against that row's
 * l + extra), update extra (when carry) and l, swap-remove the winner
 * from its pool slice, decrement pool_len, and write the winning
 * global task id to out_tasks[p].  Returns 0, or -1 on bad arguments.
 */
EXPORT i64 repro_mqb_pick_commit(const double *d_g, const double *work_g,
                                 i64 *pool_task, i64 *pool_seq,
                                 i64 *pool_len,
                                 double *l, double *extra,
                                 const double *parr,
                                 const i64 *rows, const i64 *alphas,
                                 i64 n, i64 K, i64 M,
                                 i64 mode, i64 carry, i64 *out_tasks) {
    double s[REPRO_NATIVE_MAX_K];
    double key_a[REPRO_NATIVE_MAX_K], key_b[REPRO_NATIVE_MAX_K];

    if (n <= 0 || K <= 0 || K > REPRO_NATIVE_MAX_K || M <= 0) return -1;
    if (mode < MODE_LEX || mode > MODE_SUM) return -1;
    if (mode == MODE_SUM && K >= 8) return -1;
    /* Validate every pair before committing any, so a rejection is
     * all-or-nothing and the caller can safely fall back to numpy. */
    for (i64 p = 0; p < n; p++) {
        i64 alpha = alphas[p];
        if (alpha < 0 || alpha >= K) return -1;
        if (pool_len[rows[p] * K + alpha] <= 0) return -1;
    }

    for (i64 p = 0; p < n; p++) {
        i64 r = rows[p];
        i64 alpha = alphas[p];
        i64 g = r * K + alpha;
        i64 b = pool_len[g];
        i64 base = g * M;
        const double *lrow = l + r * K;
        double *erow = extra + r * K;
        const double *prow = parr + r * K;
        for (i64 j = 0; j < K; j++) s[j] = lrow[j] + erow[j];

        double *best_key = key_a, *cand_key = key_b;
        i64 t0 = pool_task[base];
        i64 klen = score_candidate(d_g + t0 * K, work_g[t0], s, prow, K,
                                   alpha, mode, best_key);
        i64 best = 0;
        i64 best_seq = pool_seq[base];
        for (i64 i = 1; i < b; i++) {
            i64 t = pool_task[base + i];
            score_candidate(d_g + t * K, work_g[t], s, prow, K, alpha,
                            mode, cand_key);
            if (key_better(cand_key, pool_seq[base + i], best_key, best_seq,
                           klen)) {
                best = i;
                best_seq = pool_seq[base + i];
                double *tmp = best_key;
                best_key = cand_key;
                cand_key = tmp;
            }
        }

        i64 wtask = pool_task[base + best];
        if (carry) {
            const double *drow = d_g + wtask * K;
            for (i64 j = 0; j < K; j++) erow[j] += drow[j];
        }
        l[g] -= work_g[wtask];
        i64 last = b - 1;
        pool_task[base + best] = pool_task[base + last];
        pool_seq[base + best] = pool_seq[base + last];
        pool_len[g] = last;
        out_tasks[p] = wtask;
    }
    return 0;
}

#ifndef REPRO_NO_PYTHON
/* Minimal CPython module shell: importing it only locates the shared
 * object (repro.native loads the symbols above through ctypes). */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

static struct PyModuleDef mqbkernel_module = {
    PyModuleDef_HEAD_INIT,
    "_mqbkernel",
    "Compiled MQB selection kernel; symbols are consumed via ctypes.",
    -1,
    NULL,
};

PyMODINIT_FUNC PyInit__mqbkernel(void) {
    return PyModule_Create(&mqbkernel_module);
}
#endif
