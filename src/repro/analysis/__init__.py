"""Statistical analysis of scheduling experiments.

The paper reports bare means over 5000 instances; this package adds the
statistical machinery a careful reproduction needs: confidence
intervals, paired-difference tests between algorithms (the sweeps are
paired by construction), bootstrap resampling, and a convergence check
answering "how many instances until the mean is stable?".
"""

from repro.analysis.stats import (
    bootstrap_ci,
    mean_ci,
    paired_difference,
    required_instances,
)

__all__ = [
    "mean_ci",
    "bootstrap_ci",
    "paired_difference",
    "required_instances",
]
