"""Statistics for completion-time-ratio samples.

Everything here is distribution-free or normal-approximate and uses
only numpy; the paired helpers exploit that the experiment runner
evaluates all algorithms on identical instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["mean_ci", "bootstrap_ci", "paired_difference", "required_instances"]

#: two-sided z quantiles for the confidence levels we support
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _check_samples(x: np.ndarray, min_n: int = 2) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size < min_n:
        raise ConfigurationError(
            f"need a 1-D sample of >= {min_n} values, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("samples must be finite")
    return arr


def _z_for(level: float) -> float:
    try:
        return _Z[level]
    except KeyError:
        raise ConfigurationError(
            f"confidence level must be one of {sorted(_Z)}, got {level}"
        ) from None


@dataclass(frozen=True)
class Interval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    level: float

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        """Half the interval width (the ± margin)."""
        return (self.high - self.low) / 2


def mean_ci(samples, level: float = 0.95) -> Interval:
    """Normal-approximation CI for the sample mean."""
    x = _check_samples(samples)
    z = _z_for(level)
    m = float(x.mean())
    half = z * float(x.std(ddof=1)) / np.sqrt(x.size)
    return Interval(m, m - half, m + half, level)


def bootstrap_ci(
    samples,
    rng: np.random.Generator,
    level: float = 0.95,
    n_resamples: int = 2000,
    statistic=np.mean,
) -> Interval:
    """Percentile-bootstrap CI for an arbitrary statistic."""
    x = _check_samples(samples)
    _z_for(level)  # validate the level even though z is unused
    if n_resamples < 10:
        raise ConfigurationError(f"n_resamples must be >= 10, got {n_resamples}")
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    stats = np.sort(np.apply_along_axis(statistic, 1, x[idx]))
    alpha = (1 - level) / 2
    lo = stats[int(np.floor(alpha * n_resamples))]
    hi = stats[min(n_resamples - 1, int(np.ceil((1 - alpha) * n_resamples)))]
    return Interval(float(statistic(x)), float(lo), float(hi), level)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired-difference comparison A vs B."""

    mean_difference: float  # mean(A - B); negative means A is better
    ci: Interval
    significant: bool  # CI excludes zero

    @property
    def a_better(self) -> bool:
        """True if A's ratios are significantly smaller than B's."""
        return self.significant and self.mean_difference < 0


def paired_difference(a, b, level: float = 0.95) -> PairedComparison:
    """Paired comparison of two algorithms' per-instance ratios.

    ``a[i]`` and ``b[i]`` must come from the *same* instance ``i`` (the
    experiment runner guarantees this); pairing removes the between-
    instance variance that dominates unpaired comparisons.
    """
    xa = _check_samples(a)
    xb = _check_samples(b)
    if xa.size != xb.size:
        raise ConfigurationError(
            f"paired samples must align: {xa.size} vs {xb.size}"
        )
    ci = mean_ci(xa - xb, level)
    return PairedComparison(
        mean_difference=ci.estimate,
        ci=ci,
        significant=not ci.contains(0.0),
    )


def required_instances(
    samples, target_half_width: float, level: float = 0.95
) -> int:
    """Instances needed for the mean's CI to reach the target half-width.

    Uses the pilot sample's variance: ``n = (z * s / h)^2``, rounded up
    and never below 2.  The paper ran 5000 instances per point; on
    these workloads a few hundred already reach ±0.01.
    """
    x = _check_samples(samples)
    if target_half_width <= 0:
        raise ConfigurationError(
            f"target_half_width must be positive, got {target_half_width}"
        )
    z = _z_for(level)
    s = float(x.std(ddof=1))
    return max(2, int(np.ceil((z * s / target_half_width) ** 2)))
