"""Synchronous stdlib client for the scheduling daemon.

Built on :mod:`http.client` — the daemon's consumers (CLI, load
generator, CI smoke) are synchronous, and a blocking client keeps them
dependency-free.  Connections are **keep-alive and per-thread**: each
thread reuses one persistent connection across requests (the TCP
handshake per request is the load generator's dominant client-side
overhead at soak rates), reconnecting transparently — with a single
retry, safe because every request is an idempotent pure computation —
when the server has closed it (idle timeout, restart, drain).

Two calling styles:

* :meth:`ServiceClient.request` / :meth:`post` return a
  :class:`ServiceResponse` (status + parsed body + latency) without
  raising on service errors — what the load generator needs to count
  429s as data rather than failures;
* the convenience verbs (:meth:`schedule`, :meth:`sweep`,
  :meth:`stream`, :meth:`healthz`, :meth:`metrics`) raise
  :class:`ServiceError` carrying the structured error code on any
  non-2xx answer and hand back the ``result`` payload on success.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from dataclasses import dataclass, field
from time import perf_counter
from urllib.parse import urlparse

from repro.errors import ConfigurationError, ReproError
from repro.service.protocol import PROTOCOL_VERSION

__all__ = ["ServiceClient", "ServiceResponse", "ServiceError", "DEFAULT_PORT"]

DEFAULT_PORT = 8512


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP exchange: status, parsed JSON body, client-side latency."""

    status: int
    body: dict
    latency: float
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def error_code(self) -> str | None:
        """The structured error code, if this is an error body."""
        error = self.body.get("error")
        return error.get("code") if isinstance(error, dict) else None

    @property
    def retry_after(self) -> float | None:
        """Rejection backoff hint (body field, falling back to the header)."""
        error = self.body.get("error")
        if isinstance(error, dict) and "retry_after" in error:
            return float(error["retry_after"])
        if "retry-after" in self.headers:
            try:
                return float(self.headers["retry-after"])
            except ValueError:
                return None
        return None


class ServiceError(ReproError):
    """A non-2xx daemon answer, carrying the structured error code."""

    def __init__(self, response: ServiceResponse) -> None:
        code = response.error_code or "unknown"
        error = response.body.get("error") or {}
        message = error.get("message") or f"HTTP {response.status}"
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.response = response


class ServiceClient:
    """Talk to one daemon at ``host:port`` (or construct from a URL)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        # One persistent keep-alive connection per thread:
        # http.client connections are not thread-safe, and the load
        # generator drives one client from many threads.
        self._local = threading.local()

    @classmethod
    def from_url(cls, url: str, timeout: float = 120.0) -> "ServiceClient":
        """``http://host:port`` (or bare ``host:port``/``host``) form."""
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ConfigurationError(
                f"only http:// service URLs are supported, got {url!r}"
            )
        if not parsed.hostname:
            raise ConfigurationError(f"no host in service URL {url!r}")
        return cls(parsed.hostname, parsed.port or DEFAULT_PORT, timeout=timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ------------------------------------------------------
    def _acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection (or a fresh one), plus whether
        it was reused — a reused connection may be stale (server idle
        timeout, restart), so its failures are retried once."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            return conn, True
        return (
            http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            ),
            False,
        )

    def _release(self, conn: http.client.HTTPConnection, raw) -> None:
        if raw.will_close:
            conn.close()
        else:
            self._local.conn = conn

    def close(self) -> None:
        """Close this thread's pooled connection (if any)."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            conn.close()

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> ServiceResponse:
        """One exchange; raises only on transport failure, never on 4xx/5xx."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        t0 = perf_counter()
        for _attempt in (0, 1):
            conn, reused = self._acquire()
            try:
                conn.request(method, path, body=body, headers=headers)
                raw = conn.getresponse()
                data = raw.read()
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
                OSError,
            ):
                conn.close()
                if not reused:
                    raise
                continue  # stale keep-alive connection: one fresh retry
            latency = perf_counter() - t0
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {"raw": data.decode("utf-8", "replace")}
            self._release(conn, raw)
            return ServiceResponse(
                status=raw.status,
                body=decoded if isinstance(decoded, dict) else {"raw": decoded},
                latency=latency,
                headers={k.lower(): v for k, v in raw.getheaders()},
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def post(self, kind: str, payload: dict) -> ServiceResponse:
        """POST a raw payload to the ``kind`` endpoint (no raising)."""
        return self.request("POST", f"/{kind}", {"protocol": PROTOCOL_VERSION, **payload})

    def _checked(self, response: ServiceResponse) -> dict:
        if not response.ok:
            raise ServiceError(response)
        return response.body

    # -- convenience verbs ----------------------------------------------
    def schedule(
        self,
        cell: str,
        scheduler: str = "mqb",
        seed: int = 0,
        preemptive: bool = False,
        quantum: float = 1.0,
        power: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Submit a ``schedule`` request; return the full ok-body."""
        payload: dict = {
            "cell": cell,
            "scheduler": scheduler,
            "seed": seed,
            "preemptive": preemptive,
            "quantum": quantum,
        }
        if power is not None:
            payload["power"] = power
        if deadline is not None:
            payload["deadline"] = deadline
        return self._checked(self.post("schedule", payload))

    def sweep(
        self,
        cell: str,
        algorithms: list[str],
        n_instances: int = 10,
        seed: int = 2011,
        preemptive: bool = False,
        quantum: float = 1.0,
        deadline: float | None = None,
    ) -> dict:
        payload: dict = {
            "cell": cell,
            "algorithms": list(algorithms),
            "n_instances": n_instances,
            "seed": seed,
            "preemptive": preemptive,
            "quantum": quantum,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        return self._checked(self.post("sweep", payload))

    def stream(
        self,
        cell: str,
        policy: str = "global-mqb",
        n_jobs: int = 10,
        mean_interarrival: float = 40.0,
        seed: int = 0,
        deadline: float | None = None,
    ) -> dict:
        payload: dict = {
            "cell": cell,
            "policy": policy,
            "n_jobs": n_jobs,
            "mean_interarrival": mean_interarrival,
            "seed": seed,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        return self._checked(self.post("stream", payload))

    def healthz(self) -> dict:
        return self._checked(self.request("GET", "/healthz"))

    def metrics(self) -> dict:
        return self._checked(self.request("GET", "/metrics"))

    def wait_until_up(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        import time

        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ConnectionError, OSError, socket.timeout) as exc:
                last = exc
                time.sleep(0.05)
        raise ConfigurationError(
            f"service at {self.url} not reachable within {timeout}s: {last}"
        )
