"""The scheduling daemon: asyncio JSON-over-HTTP front-end.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — the
stdlib has no async HTTP server, and the protocol subset a scheduling
API needs (request line, headers, ``Content-Length`` body, one
response, close) is ~60 lines — far less surface than a web framework
dependency.  Endpoints:

* ``POST /schedule`` — simulate one instance (bit-identical to a
  direct :func:`repro.sim.engine.simulate`);
* ``POST /sweep`` — a paired-comparison sweep, sharded over the shared
  pool through the persistent result cache;
* ``POST /stream`` — one multi-job Poisson stream simulation;
* ``GET /healthz`` — liveness (``503`` once draining);
* ``GET /metrics`` — the serialized
  :class:`~repro.obs.telemetry.TelemetrySnapshot` plus queue depth,
  in-flight count, and admission/rejection counters.

Every request passes admission control
(:class:`~repro.service.admission.AdmissionController`) before any
work is queued: a full queue or an exhausted token bucket answers
``429`` with a ``Retry-After`` hint and a structured JSON error body —
overload is explicit, never an unbounded buffer or a silent drop.

Graceful drain: SIGTERM/SIGINT stop the listener, reject new requests
with ``503 draining``, wait for admitted requests (bounded by
``drain_timeout``), then shut the pool down — clean exit code 0, no
orphaned workers (``scripts/service_smoke.py`` asserts this end to
end).  Connections are HTTP/1.1 keep-alive: at soak rates the TCP
handshake per request is the dominant client-side cost, so the server
answers as many requests as the client pipelines sequentially on one
connection, closing on client request (``Connection: close``), idle
timeout, framing errors, or drain.  The low-level framing
(:func:`read_http_request` / :func:`render_http_response`) is shared
with the cluster router (:mod:`repro.cluster.router`), which speaks
the same wire protocol in front of many daemons.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import time
from dataclasses import dataclass
from time import perf_counter

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.executor import ServiceExecutor
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    ProtocolError,
    error_response,
    ok_response,
    parse_request,
)

__all__ = [
    "ServiceConfig",
    "ScheduleService",
    "run_service",
    "BadHttp",
    "read_http_request",
    "render_http_response",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadHttp(Exception):
    """Malformed HTTP framing (before any JSON exists to answer with)."""


async def read_http_request(
    reader: asyncio.StreamReader,
    timeout: float,
    max_body_bytes: int,
) -> tuple[str, str, dict[str, str], bytes, bool] | None:
    """Read one framed HTTP request off a (possibly reused) connection.

    Returns ``(method, path, headers, body, keep_alive)`` — where
    ``keep_alive`` is the *client's* preference per HTTP/1.1 defaults —
    or ``None`` when the connection ended cleanly before a request
    started (EOF or idle timeout between keep-alive requests), which
    callers treat as a silent close, not an error.  Framing errors
    raise :class:`BadHttp`; protocol-level size errors raise
    :class:`ProtocolError`.
    """
    try:
        request_line = await asyncio.wait_for(reader.readline(), timeout)
    except asyncio.TimeoutError:
        return None  # idle keep-alive connection: close silently
    if not request_line:
        return None  # clean EOF between requests
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise BadHttp(f"bad request line {request_line!r}")
    method, target, version = parts[0].upper(), parts[1], parts[2].upper()
    headers: dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise BadHttp("connection closed inside request headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadHttp(f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(
            "bad_request", "Content-Length must be an integer"
        ) from None
    if length < 0:
        raise ProtocolError("bad_request", "negative Content-Length")
    if length > max_body_bytes:
        raise ProtocolError(
            "payload_too_large",
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    body = (
        await asyncio.wait_for(reader.readexactly(length), timeout)
        if length
        else b""
    )
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        keep_alive = connection == "keep-alive"
    else:
        keep_alive = connection != "close"
    return method, target.split("?", 1)[0], headers, body, keep_alive


def render_http_response(
    status: int,
    payload: bytes,
    keep_alive: bool,
    retry_after: float | None = None,
    content_type: str = "application/json",
) -> bytes:
    """Serialize one framed HTTP response (body passed through verbatim)."""
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if retry_after is not None:
        # Retry-After is integer delay-seconds; round *up* so a
        # hint of 0.2s never becomes "retry immediately".
        head.append(f"Retry-After: {max(1, math.ceil(retry_after))}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs, one frozen record (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8512
    #: Worker processes for the shared pool; 0 executes in-process on
    #: the event loop's thread pool (tests, smoke runs).
    workers: int = 1
    #: Bound on admitted-but-unfinished requests; beyond it: 429.
    queue_limit: int = 64
    #: Sustained admission rate (requests/second); ``None`` disables
    #: rate limiting.  ``burst`` defaults to ``max(1, rate)``.
    rate_limit: float | None = None
    burst: float | None = None
    #: Server-side default deadline (seconds) when a request names none;
    #: ``None`` means wait indefinitely.
    default_deadline: float | None = None
    #: How long a drain waits for in-flight work before hard teardown.
    drain_timeout: float = 20.0
    #: In-memory response-cache entries (0 disables).
    cache_entries: int = 256
    max_body_bytes: int = 1 << 20
    #: Timeout for reading one request head/body off a connection.
    read_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")


class ScheduleService:
    """One daemon instance: listener + admission + shared executor."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        telemetry: Telemetry | None = None,
        work_fns: dict | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.executor = ServiceExecutor(
            n_workers=self.config.workers,
            cache_entries=self.config.cache_entries,
            telemetry=self.telemetry,
            work_fns=work_fns,
        )
        bucket = (
            TokenBucket(self.config.rate_limit, self.config.burst)
            if self.config.rate_limit is not None
            else None
        )
        self.admission = AdmissionController(
            self.config.queue_limit, bucket=bucket, telemetry=self.telemetry
        )
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolves ``port`` — pass 0 for ephemeral)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    def request_shutdown(self) -> None:
        """Trigger a graceful drain; safe from any thread or signal."""
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    async def serve_forever(self) -> bool:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`), then drain.

        Returns ``True`` if the drain completed cleanly within
        ``drain_timeout``.
        """
        assert self._shutdown is not None, "start() first"
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread / non-Unix: programmatic shutdown only
        try:
            await self._shutdown.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        return await self.drain()

    async def drain(self) -> bool:
        """Stop accepting, finish admitted work, tear the pool down."""
        self.admission.start_draining()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_timeout
        while self.admission.pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        remaining = max(0.0, deadline - time.monotonic())
        clean = await self.executor.drain(timeout=remaining)
        return clean and self.admission.pending == 0

    # -- request handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            keep = True
            while keep:
                keep = await self._serve_one(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive connections; exit
            # quietly (3.11's stream callback would log the cancel).
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """One request/response exchange; returns whether to keep serving."""
        status, body, retry_after = 500, error_response("internal", "unset"), None
        keep_alive = False
        try:
            request = await read_http_request(
                reader,
                timeout=self.config.read_timeout,
                max_body_bytes=self.config.max_body_bytes,
            )
            if request is None:
                return False  # clean EOF / idle timeout: close silently
            method, path, _headers, payload, keep_alive = request
            status, body, retry_after = await self._dispatch(method, path, payload)
        except ProtocolError as err:
            status, body, retry_after = err.http_status, err.to_body(), err.retry_after
        except (BadHttp, asyncio.TimeoutError):
            # Framing is broken mid-request; answer and close (the
            # stream position is no longer trustworthy).
            status, body = 400, error_response("bad_request", "malformed HTTP request")
            keep_alive = False
        except (
            asyncio.IncompleteReadError, ConnectionError, BrokenPipeError
        ):
            return False
        except Exception as exc:  # never leak a traceback as a hang
            status, body = 500, error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        if self.admission.draining:
            keep_alive = False  # drain: finish this answer, then close
        try:
            await self._write_response(writer, status, body, retry_after, keep_alive)
        except (ConnectionError, BrokenPipeError):
            return False
        return keep_alive

    async def _dispatch(
        self, method: str, path: str, raw_body: bytes
    ) -> tuple[int, dict, float | None]:
        if path == "/healthz":
            self._require_method(method, "GET")
            draining = self.admission.draining
            # Rich enough for a supervisor to act on: draining state,
            # queue pressure, and uptime — not just liveness.
            return (
                503 if draining else 200,
                {
                    "protocol": PROTOCOL_VERSION,
                    "status": "draining" if draining else "ok",
                    "uptime": time.monotonic() - self._started_at,
                    "draining": draining,
                    "pending": self.admission.pending,
                    "queue_limit": self.config.queue_limit,
                    "in_flight": self.executor.in_flight,
                },
                None,
            )
        if path == "/metrics":
            self._require_method(method, "GET")
            return 200, self._metrics_body(), None
        kind = path.lstrip("/")
        if kind not in REQUEST_KINDS:
            raise ProtocolError(
                "not_found",
                f"no endpoint {path!r}; try /schedule /sweep /stream "
                f"/healthz /metrics",
            )
        self._require_method(method, "POST")
        self.telemetry.inc("service.requests")
        self.telemetry.inc(f"service.requests.{kind}")
        try:
            payload = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError("bad_json", f"request body is not JSON: {exc}") from None
        request = parse_request(payload, expected_kind=kind)

        ticket = self.admission.admit()  # raises 429/503 rejections
        t0 = perf_counter()
        try:
            deadline = (
                request.deadline
                if request.deadline is not None
                else self.config.default_deadline
            )
            try:
                result, source = await asyncio.wait_for(
                    self.executor.execute(request), timeout=deadline
                )
            except asyncio.TimeoutError:
                self.telemetry.inc("admission.rejected.deadline")
                raise ProtocolError(
                    "deadline_exceeded",
                    f"deadline of {deadline:g}s passed before the result; "
                    f"the computation continues and will be cached",
                ) from None
        finally:
            ticket.release()
        elapsed = perf_counter() - t0
        self.telemetry.add_time(f"service.latency.{kind}", elapsed)
        return 200, ok_response(kind, result, elapsed, source), None

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(
                "method_not_allowed", f"use {expected}, not {method}"
            )

    def _metrics_body(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "status": "draining" if self.admission.draining else "ok",
            "uptime": time.monotonic() - self._started_at,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "queue_depth": self.admission.pending,
            "in_flight": self.executor.in_flight,
            "telemetry": self.telemetry.snapshot().to_dict(),
        }

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        retry_after: float | None,
        keep_alive: bool = False,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        writer.write(
            render_http_response(
                status, payload, keep_alive=keep_alive, retry_after=retry_after
            )
        )
        await writer.drain()


def run_service(config: ServiceConfig | None = None) -> int:
    """Blocking entry point of ``repro serve``; returns an exit code."""

    async def main() -> bool:
        service = ScheduleService(config)
        await service.start()
        print(
            f"[repro serve] listening on http://{service.config.host}:"
            f"{service.port} (workers={service.config.workers}, "
            f"queue={service.config.queue_limit}, "
            f"rate={service.config.rate_limit or 'off'}) — SIGTERM drains",
            file=sys.stderr,
            flush=True,
        )
        clean = await service.serve_forever()
        print(
            f"[repro serve] drained {'cleanly' if clean else 'WITH TIMEOUT'}",
            file=sys.stderr,
            flush=True,
        )
        return clean

    try:
        return 0 if asyncio.run(main()) else 1
    except KeyboardInterrupt:  # second Ctrl-C during drain
        return 130
