"""Scheduling-as-a-service: an asyncio job-submission daemon.

A stdlib-only (no new runtime dependencies) JSON-over-HTTP front-end
for the simulation engine: submit single-instance schedules, paired-
comparison sweeps, and multi-job stream simulations to a long-lived
daemon that executes them on a shared worker pool.  The pieces:

* :mod:`~repro.service.protocol` — versioned request/response schema,
  strict validation, structured error codes, request fingerprints;
* :mod:`~repro.service.admission` — bounded queue + token-bucket rate
  limit + cooperative deadlines (explicit 429/503/504, never unbounded
  buffering);
* :mod:`~repro.service.executor` — shared pool built on
  :mod:`repro.experiments.parallel`, with in-flight request joining
  and an LRU response cache keyed by content fingerprint;
* :mod:`~repro.service.server` — the asyncio HTTP daemon
  (``/schedule`` ``/sweep`` ``/stream`` ``/healthz`` ``/metrics``),
  graceful SIGTERM drain;
* :mod:`~repro.service.client` — synchronous stdlib client;
* :mod:`~repro.service.testing` — in-thread and subprocess harnesses.

Entry points: ``repro serve`` and ``repro submit`` (see
:mod:`repro.service.cli`), plus ``scripts/loadgen.py`` for open-loop
load testing and ``scripts/service_smoke.py`` for end-to-end smoke.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceResponse
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_request,
    request_fingerprint,
)
from repro.service.server import ScheduleService, ServiceConfig, run_service

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "parse_request",
    "request_fingerprint",
    "ScheduleService",
    "ServiceConfig",
    "run_service",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
]
