"""Request execution on a shared pool, with result dedup.

One :class:`ServiceExecutor` owns the daemon's compute: a single
process pool (:class:`~concurrent.futures.ProcessPoolExecutor`) shared
by every request, or — with ``n_workers=0`` — the event loop's default
thread pool, which is what the tests and the smoke path use (same
code, no fork cost; simulation results are identical either way
because the work functions are pure).

Deduplication happens at two layers, both keyed by
:func:`~repro.service.protocol.request_fingerprint`:

* **in-flight** — a second request arriving while an identical one is
  computing *joins* its task (``dedup.joined``) instead of spawning a
  duplicate computation.  Joiners await through ``asyncio.shield``, so
  one waiter hitting its deadline never cancels the shared work.
* **completed** — results land in a bounded in-memory LRU; a warm
  repeat is answered without touching the pool (``cache.hits`` /
  ``cache.misses`` / ``cache.writes`` telemetry, same counter family
  as the persistent result cache).

Sweeps additionally go through the *persistent* result cache exactly
like CLI sweeps do: the sweep path is built from
:mod:`repro.experiments.parallel` primitives (``plan_chunks`` +
``_ratio_chunk`` + :class:`~repro.resultcache.integrate.SweepCache`),
sharding only cache-miss segments across the shared pool and
persisting chunks as they land.  Distinct sweep requests that overlap
instance-wise therefore still share per-instance work across requests
— and across daemon restarts.

Work functions are module-level (picklable) and take/return plain JSON
dicts, so the same functions drive process workers, thread workers and
direct unit tests.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from time import perf_counter
from typing import Callable

import numpy as np

from repro.decentral.engine import dispatch_simulate
from repro.decentral.schedulers import DecentralScheduler
from repro.energy.metrics import energy_breakdown
from repro.energy.models import power_config
from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    _CHUNKS_PER_WORKER,
    _ratio_chunk,
    plan_chunks,
    terminate_pool,
)
from repro.experiments.runner import _stats_from_ratios
from repro.multijob.arrival import poisson_stream
from repro.multijob.engine import simulate_stream
from repro.multijob.schedulers import make_stream_scheduler
from repro.obs.telemetry import Telemetry
from repro.resultcache.integrate import open_sweep_cache, segments_of
from repro.resultcache.keys import comparison_fingerprint
from repro.schedulers.registry import make_scheduler
from repro.service.protocol import (
    ProtocolError,
    Request,
    ScheduleRequest,
    StreamRequest,
    SweepRequest,
    parse_request,
    request_fingerprint,
)
from repro.sim.preemptive import simulate_preemptive
from repro.workloads.generator import sample_instance, sample_system, workload_cell

__all__ = [
    "ServiceExecutor",
    "run_schedule_request",
    "run_stream_request",
]


def run_schedule_request(payload: dict) -> dict:
    """Execute one ``schedule`` request payload; return its result dict.

    Seeding mirrors ``repro demo`` exactly (sample from
    ``default_rng(seed)``, simulate with a fresh ``default_rng(seed)``)
    so responses are bit-identical to a direct :func:`simulate` call —
    the contract ``tests/service/test_service_http.py`` asserts per
    scheduler.
    """
    request = parse_request(payload)
    assert isinstance(request, ScheduleRequest)
    spec = workload_cell(request.cell)
    job, system = sample_instance(spec, np.random.default_rng(request.seed))
    scheduler = make_scheduler(request.scheduler)
    want_energy = request.power is not None
    if want_energy and isinstance(scheduler, DecentralScheduler):
        # Steal costs are paid outside trace segments, so a trace-based
        # energy account would undercount decentralized busy time.
        # Reject explicitly rather than report wrong joules.
        raise ProtocolError(
            "bad_request",
            f"{scheduler.name}: decentralized schedulers do not "
            f"support energy accounting",
        )
    if request.preemptive:
        if isinstance(scheduler, DecentralScheduler):
            raise ProtocolError(
                "bad_request",
                f"{scheduler.name}: decentralized schedulers do not "
                f"support preemptive scheduling",
            )
        result = simulate_preemptive(
            job, system, scheduler,
            rng=np.random.default_rng(request.seed), quantum=request.quantum,
            record_trace=want_energy,
        )
    else:
        result = dispatch_simulate(
            job, system, scheduler, rng=np.random.default_rng(request.seed),
            record_trace=want_energy,
        )
    energy: dict | None = None
    if want_energy:
        power = power_config(request.power, system.num_types)
        bd = energy_breakdown(result.trace, system, power)
        energy = {
            "power": request.power,
            "total": bd["total"],
            "busy": bd["busy"],
            "idle": bd["idle"],
            "sleep": bd["sleep"],
            "wake": bd["wake"],
            "n_gaps": bd["n_gaps"],
            "n_shutdowns": bd["n_shutdowns"],
        }
    return {
        "cell": request.cell,
        "scheduler": result.scheduler,
        "seed": request.seed,
        "preemptive": request.preemptive,
        "n_tasks": int(job.n_tasks),
        "n_edges": int(job.n_edges),
        "counts": list(system.counts),
        "makespan": result.makespan,
        "lower_bound": result.lower_bound(),
        "ratio": result.completion_time_ratio(),
        "decisions": int(result.decisions),
        **({"energy": energy} if energy is not None else {}),
    }


def run_stream_request(payload: dict) -> dict:
    """Execute one ``stream`` request payload; return its result dict.

    Seeding: one ``default_rng(seed)`` draws the system, then the
    stream — deterministic and reproducible from the payload alone.
    """
    request = parse_request(payload)
    assert isinstance(request, StreamRequest)
    spec = workload_cell(request.cell)
    rng = np.random.default_rng(request.seed)
    system = sample_system(spec, rng)
    stream = poisson_stream(
        spec, request.n_jobs, request.mean_interarrival, rng
    )
    result = simulate_stream(stream, system, make_stream_scheduler(request.policy))
    flows = result.flow_times
    return {
        "cell": request.cell,
        "policy": result.scheduler,
        "n_jobs": request.n_jobs,
        "mean_interarrival": request.mean_interarrival,
        "seed": request.seed,
        "counts": list(system.counts),
        "makespan": result.makespan,
        "mean_flow_time": result.mean_flow_time,
        "max_flow_time": float(flows.max()),
        "total_work": result.stream.total_work(),
        "completion_times": list(result.completion_times),
    }


#: Default work functions by request kind.  ``sweep`` is absent on
#: purpose: the executor shards sweeps across the pool itself.
_WORK_FNS: dict[str, Callable[[dict], dict]] = {
    "schedule": run_schedule_request,
    "stream": run_stream_request,
}


class ServiceExecutor:
    """Shared-pool request executor with two-layer dedup (see module doc).

    ``n_workers=0`` executes on the event loop's default thread pool;
    ``n_workers >= 1`` builds one shared
    :class:`~concurrent.futures.ProcessPoolExecutor`.  ``work_fns``
    overrides the per-kind work functions (tests inject slow/fake work
    to exercise dedup and queueing deterministically).
    """

    def __init__(
        self,
        n_workers: int = 0,
        cache_entries: int = 256,
        telemetry: Telemetry | None = None,
        work_fns: dict[str, Callable[[dict], dict]] | None = None,
    ) -> None:
        if n_workers < 0:
            raise ConfigurationError(f"n_workers must be >= 0, got {n_workers}")
        if cache_entries < 0:
            raise ConfigurationError(
                f"cache_entries must be >= 0, got {cache_entries}"
            )
        self.n_workers = int(n_workers)
        self.cache_entries = int(cache_entries)
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._work_fns = dict(_WORK_FNS)
        if work_fns:
            self._work_fns.update(work_fns)
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Task] = {}
        self._cache: OrderedDict[str, dict] = OrderedDict()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Build the shared pool (no-op in thread mode)."""
        if self.n_workers >= 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)

    @property
    def in_flight(self) -> int:
        """Unique computations currently running (after dedup)."""
        return len(self._inflight)

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight work, then shut the pool down.

        Returns ``True`` on a clean drain.  On timeout the pool is torn
        down hard (:func:`~repro.experiments.parallel.terminate_pool`)
        so shutdown can never hang behind a stuck worker.
        """
        tasks = list(self._inflight.values())
        clean = True
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=timeout)
            clean = not pending
        if self._pool is not None:
            if clean:
                self._pool.shutdown(wait=True)
            else:
                terminate_pool(self._pool)
            self._pool = None
        return clean

    def close(self) -> None:
        """Synchronous hard teardown (test/atexit convenience)."""
        if self._pool is not None:
            terminate_pool(self._pool)
            self._pool = None

    # -- the in-memory response cache -----------------------------------
    def _cache_get(self, key: str) -> dict | None:
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: str, result: dict) -> None:
        if self.cache_entries == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_entries:
            self._cache.pop(next(iter(self._cache)))
        self._telemetry.inc("cache.writes")

    # -- execution ------------------------------------------------------
    async def execute(self, request: Request) -> tuple[dict, str]:
        """Run (or dedup) one validated request; return ``(result, source)``.

        ``source`` is ``"cached"`` (warm repeat, no work), ``"joined"``
        (attached to an identical in-flight computation) or ``"fresh"``.
        Worker failures surface as :class:`ProtocolError` with code
        ``internal``; errors are never cached, so a retry recomputes.
        """
        key = request_fingerprint(request)
        cached = self._cache_get(key)
        if cached is not None:
            self._telemetry.inc("cache.hits")
            return cached, "cached"
        task = self._inflight.get(key)
        if task is not None:
            self._telemetry.inc("dedup.joined")
            return await asyncio.shield(task), "joined"
        self._telemetry.inc("cache.misses")
        task = asyncio.get_running_loop().create_task(self._compute(key, request))
        self._inflight[key] = task
        # If every waiter is cancelled (deadlines), the computation
        # still finishes and caches; consume its outcome so an orphaned
        # failure never warns "exception was never retrieved".
        task.add_done_callback(
            lambda t: t.exception() if not t.cancelled() else None
        )
        return await asyncio.shield(task), "fresh"

    async def _compute(self, key: str, request: Request) -> dict:
        t0 = perf_counter()
        try:
            if request.kind == "sweep" and "sweep" not in self._work_fns:
                assert isinstance(request, SweepRequest)
                result = await self._execute_sweep(request)
            else:
                result = await self._run_in_pool(
                    self._work_fns[request.kind], request.to_payload()
                )
        except ProtocolError:
            self._telemetry.inc(f"exec.error.{request.kind}")
            self._inflight.pop(key, None)
            raise
        except Exception as exc:
            self._telemetry.inc(f"exec.error.{request.kind}")
            self._inflight.pop(key, None)
            raise ProtocolError(
                "internal", f"{type(exc).__name__}: {exc}"
            ) from exc
        self._telemetry.inc(f"exec.ok.{request.kind}")
        self._telemetry.add_time(
            f"service.exec.{request.kind}", perf_counter() - t0
        )
        self._cache_put(key, result)
        self._inflight.pop(key, None)
        return result

    async def _run_in_pool(self, fn: Callable, *args) -> dict:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn, *args)

    async def _execute_sweep(self, request: SweepRequest) -> dict:
        """Shard one sweep over the shared pool, through the result cache.

        The same recipe as
        :func:`~repro.experiments.parallel.run_comparison_parallel`,
        reshaped for a shared pool: persistent-cache hits are filled in
        up front (off-loop — they are file reads), only miss segments
        are planned into chunks, chunks run concurrently wherever the
        pool has capacity, and each completed chunk is persisted.  The
        assembled matrix is collapsed by the exact serial-path code, so
        responses are bit-identical to :func:`run_comparison` for any
        pool size and interleaving.
        """
        spec = workload_cell(request.cell)
        algorithms = tuple(request.algorithms)
        n = request.n_instances
        loop = asyncio.get_running_loop()
        out = np.empty((len(algorithms), n), dtype=np.float64)
        segments = [(0, n)]
        on_chunk = None
        cache = open_sweep_cache(
            comparison_fingerprint(
                spec, algorithms, request.seed, request.preemptive,
                request.quantum,
            ),
            len(algorithms),
            telemetry=self._telemetry,
        )
        if cache is not None:
            misses = await loop.run_in_executor(None, cache.fill_hits, out)
            segments = segments_of(misses)
            on_chunk = cache.write_chunk
        remaining = sum(stop - start for start, stop in segments)
        if remaining:
            slots = max(1, self.n_workers)
            chunk_size = max(1, -(-remaining // (slots * _CHUNKS_PER_WORKER)))
            worker = partial(
                _ratio_chunk, spec, algorithms, request.seed,
                request.preemptive, request.quantum, False,
            )

            async def run_chunk(start: int, stop: int) -> None:
                block = await self._run_in_pool(worker, start, stop)
                out[:, start:stop] = block
                if on_chunk is not None:
                    await loop.run_in_executor(None, on_chunk, start, block)

            await asyncio.gather(
                *(run_chunk(s, e) for s, e in plan_chunks(segments, chunk_size))
            )
        stats = _stats_from_ratios(algorithms, out, request.preemptive)
        return {
            "cell": request.cell,
            "algorithms": list(algorithms),
            "n_instances": n,
            "seed": request.seed,
            "preemptive": request.preemptive,
            "series": [s.to_dict() for s in stats],
        }
