"""Test/smoke harnesses for the daemon: in-thread and subprocess hosts.

:class:`ServiceThread` runs a complete :class:`ScheduleService` on a
background thread with its own event loop, bound to an ephemeral port —
the test process talks to it over real HTTP with the synchronous
:class:`~repro.service.client.ServiceClient`.  That exercises the whole
stack (framing, admission, executor, serialization) without
pytest-asyncio, which this environment does not ship.

:func:`spawn_service` launches ``repro serve`` as a real subprocess for
scripts that must observe OS-level behaviour (SIGTERM handling, exit
codes): the smoke test and the load generator.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.service.client import ServiceClient
from repro.service.server import ScheduleService, ServiceConfig

__all__ = ["ServiceThread", "SpawnedService", "spawn_service", "free_port"]


class ServiceThread:
    """Host a daemon on a background thread; use as a context manager.

    ``workers=0`` (the default here) executes requests on the loop's
    thread pool — no fork cost, identical results — which is what tests
    want.  The bound port is ephemeral unless pinned via ``config``.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        telemetry: Telemetry | None = None,
        work_fns: dict | None = None,
    ) -> None:
        self.config = config or ServiceConfig(port=0, workers=0)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._work_fns = work_fns
        self.service: ScheduleService | None = None
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.clean: bool | None = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ConfigurationError("ServiceThread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise ConfigurationError("service thread failed to start in 30s")
        return self

    def _run(self) -> None:
        import asyncio

        async def main() -> bool:
            self.service = ScheduleService(
                self.config, telemetry=self.telemetry, work_fns=self._work_fns
            )
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self.port = self.service.port
            self._started.set()
            return await self.service.serve_forever()

        try:
            self.clean = asyncio.run(main())
        except BaseException:
            # Startup failures are re-raised to the caller from start().
            self._started.set()

    def stop(self, timeout: float = 30.0) -> bool | None:
        """Drain and join; returns whether the drain was clean."""
        if self._thread is None:
            return None
        if self.service is not None:
            self.service.request_shutdown()
        self._thread.join(timeout=timeout)
        self._thread = None
        return self.clean

    def client(self, timeout: float = 120.0) -> ServiceClient:
        assert self.port is not None, "start() first"
        return ServiceClient(self.config.host, self.port, timeout=timeout)


@dataclass
class SpawnedService:
    """A ``repro serve`` subprocess plus the client pointed at it."""

    process: subprocess.Popen
    client: ServiceClient

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM (graceful drain) and wait; returns the exit code."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10.0)
            raise

    def __enter__(self) -> "SpawnedService":
        return self

    def __exit__(self, *exc: object) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)


def spawn_service(
    port: int,
    workers: int = 0,
    queue_limit: int = 64,
    rate_limit: float | None = None,
    burst: float | None = None,
    extra_args: list[str] | None = None,
    startup_timeout: float = 30.0,
) -> SpawnedService:
    """Launch ``repro serve`` as a subprocess and wait until it answers.

    The caller picks the port (use :func:`free_port`).  The child
    inherits the environment with ``PYTHONPATH`` extended so ``repro``
    resolves from the repo checkout.
    """
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--workers", str(workers),
        "--queue-limit", str(queue_limit),
    ]
    if rate_limit is not None:
        cmd += ["--rate-limit", str(rate_limit)]
    if burst is not None:
        cmd += ["--burst", str(burst)]
    cmd += extra_args or []
    env = dict(os.environ)
    src = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(cmd, env=env)
    client = ServiceClient("127.0.0.1", port)
    try:
        client.wait_until_up(timeout=startup_timeout)
    except Exception:
        process.kill()
        process.wait(timeout=10.0)
        raise
    return SpawnedService(process=process, client=client)


def free_port() -> int:
    """An OS-assigned free TCP port (racy in principle, fine on loopback)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
