"""Versioned JSON request/response protocol of the scheduling service.

Every request and response carries ``"protocol": PROTOCOL_VERSION``.
A request names one of three kinds of work:

* ``schedule`` — simulate one sampled instance of a workload cell
  under one scheduler (the service form of ``repro demo``);
* ``sweep`` — a paired-comparison sweep over a cell (the service form
  of :func:`repro.experiments.runner.run_comparison`);
* ``stream`` — simulate one multi-job Poisson stream under one stream
  policy (:func:`repro.multijob.engine.simulate_stream`).

Validation is strict and total: :func:`parse_request` either returns a
frozen request dataclass or raises :class:`ProtocolError` with a
structured, machine-readable error ``code`` (plus the offending field
where applicable).  Unknown fields are rejected — silent tolerance
would make typos indistinguishable from defaults and would haunt
protocol evolution.  Every error code maps to one HTTP status
(:data:`HTTP_STATUS`), and error bodies always carry ``status:
"error"`` with ``error: {code, message, ...}``.

Seeding contract (the bit-identity guarantee the tests assert):

* ``schedule`` samples ``(job, system)`` from
  ``np.random.default_rng(seed)`` and hands the engine a *fresh*
  ``np.random.default_rng(seed)`` — exactly what ``repro demo`` does,
  so a ``/schedule`` response is bit-identical to a direct
  :func:`repro.sim.engine.simulate` call with the same derivation;
* ``sweep`` defers to :func:`run_comparison`'s documented
  ``SeedSequence([seed, i])`` layout;
* ``stream`` draws the system and then the stream from one
  ``np.random.default_rng(seed)``.

Requests are content-addressable: :func:`request_fingerprint` hashes
the execution-relevant fields (never ``deadline``) together with
:data:`~repro.resultcache.keys.ENGINE_REV` and the numpy major
version, through the same canonical-JSON/SHA-256 scheme as the
persistent result cache.  Two requests with equal fingerprints are
guaranteed equal results, which is what lets the executor deduplicate
duplicate in-flight and repeated requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.energy.models import available_power_configs
from repro.errors import ReproError
from repro.multijob.schedulers import available_stream_policies
from repro.resultcache.keys import ENGINE_REV, NUMPY_MAJOR, fingerprint_digest
from repro.schedulers.registry import available_schedulers
from repro.workloads.generator import EXTRA_CELLS, WORKLOAD_CELLS

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_KINDS",
    "MAX_SWEEP_INSTANCES",
    "MAX_STREAM_JOBS",
    "HTTP_STATUS",
    "ProtocolError",
    "ScheduleRequest",
    "SweepRequest",
    "StreamRequest",
    "parse_request",
    "request_fingerprint",
    "ok_response",
    "error_response",
]

#: Version of the wire protocol.  Bump on any incompatible change to
#: request/response shapes; the daemon rejects other versions with
#: ``bad_protocol`` so clients fail loudly instead of misparsing.
PROTOCOL_VERSION = 1

REQUEST_KINDS = ("schedule", "sweep", "stream")

#: Admission-time caps on request size, so one request cannot occupy a
#: worker for unbounded time.  Generous against every legitimate use:
#: the paper's own sweeps used 5000 instances per point.
MAX_SWEEP_INSTANCES = 5000
MAX_STREAM_JOBS = 500

#: HTTP status of each structured error code.
HTTP_STATUS: dict[str, int] = {
    "bad_json": 400,
    "bad_protocol": 400,
    "unknown_kind": 400,
    "bad_request": 400,
    "unknown_cell": 400,
    "unknown_scheduler": 400,
    "unknown_policy": 400,
    "unknown_power": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "queue_full": 429,
    "rate_limited": 429,
    "internal": 500,
    "draining": 503,
    #: The cluster router's "ring is empty" answer: no healthy shard
    #: to place the request on (all down, draining, or unreachable).
    "no_shards": 503,
    "deadline_exceeded": 504,
}


class ProtocolError(ReproError):
    """A request the service rejects, with a structured error code."""

    def __init__(
        self, code: str, message: str, retry_after: float | None = None
    ) -> None:
        if code not in HTTP_STATUS:
            raise ValueError(f"unregistered error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.code]

    def to_body(self) -> dict:
        return error_response(self.code, self.message, self.retry_after)


def _known_cells() -> list[str]:
    return sorted(WORKLOAD_CELLS) + sorted(EXTRA_CELLS)


@dataclass(frozen=True)
class ScheduleRequest:
    """Simulate one sampled instance of ``cell`` under ``scheduler``."""

    cell: str
    scheduler: str = "mqb"
    seed: int = 0
    preemptive: bool = False
    quantum: float = 1.0
    power: str | None = None
    deadline: float | None = None

    kind = "schedule"

    def to_payload(self) -> dict:
        """Wire form; round-trips through :func:`parse_request`."""
        payload = {
            "protocol": PROTOCOL_VERSION,
            "kind": self.kind,
            "cell": self.cell,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "preemptive": self.preemptive,
            "quantum": self.quantum,
        }
        if self.power is not None:
            payload["power"] = self.power
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    def fingerprint_fields(self) -> dict:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "preemptive": self.preemptive,
            # As in the sweep cache keys: the non-preemptive engine
            # never reads the quantum, so it must not split the cache.
            "quantum": self.quantum if self.preemptive else None,
            # A power config changes the response body (energy fields)
            # but never the simulated schedule, so it is part of the
            # response identity like any other requested computation.
            "power": self.power,
        }


@dataclass(frozen=True)
class SweepRequest:
    """Paired-comparison sweep of ``algorithms`` over ``cell``."""

    cell: str
    algorithms: tuple[str, ...]
    n_instances: int = 10
    seed: int = 2011
    preemptive: bool = False
    quantum: float = 1.0
    deadline: float | None = None

    kind = "sweep"

    def to_payload(self) -> dict:
        payload = {
            "protocol": PROTOCOL_VERSION,
            "kind": self.kind,
            "cell": self.cell,
            "algorithms": list(self.algorithms),
            "n_instances": self.n_instances,
            "seed": self.seed,
            "preemptive": self.preemptive,
            "quantum": self.quantum,
        }
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    def fingerprint_fields(self) -> dict:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "algorithms": list(self.algorithms),
            "n_instances": self.n_instances,
            "seed": self.seed,
            "preemptive": self.preemptive,
            "quantum": self.quantum if self.preemptive else None,
        }


@dataclass(frozen=True)
class StreamRequest:
    """Simulate one Poisson job stream under one stream policy."""

    cell: str
    policy: str = "global-mqb"
    n_jobs: int = 10
    mean_interarrival: float = 40.0
    seed: int = 0
    deadline: float | None = None

    kind = "stream"

    def to_payload(self) -> dict:
        payload = {
            "protocol": PROTOCOL_VERSION,
            "kind": self.kind,
            "cell": self.cell,
            "policy": self.policy,
            "n_jobs": self.n_jobs,
            "mean_interarrival": self.mean_interarrival,
            "seed": self.seed,
        }
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    def fingerprint_fields(self) -> dict:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "policy": self.policy,
            "n_jobs": self.n_jobs,
            "mean_interarrival": self.mean_interarrival,
            "seed": self.seed,
        }


Request = ScheduleRequest | SweepRequest | StreamRequest


class _Fields:
    """Typed, consuming view of a request payload.

    Each ``take_*`` pops and validates one field; :meth:`finish`
    rejects whatever remains, so unknown fields are always an error.
    """

    def __init__(self, payload: Mapping[str, Any]) -> None:
        self._data = dict(payload)

    def _pop(self, name: str, default: Any, required: bool) -> Any:
        if name in self._data:
            return self._data.pop(name)
        if required:
            raise ProtocolError("bad_request", f"missing required field {name!r}")
        return default

    def take_str(self, name: str, default: str | None = None) -> str:
        value = self._pop(name, default, default is None)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "bad_request", f"field {name!r} must be a non-empty string"
            )
        return value

    def take_opt_str(self, name: str) -> str | None:
        """An optional string field: absent (or ``null``) means ``None``.

        :meth:`take_str` cannot express this — its ``default=None``
        spelling marks a *required* field — so optional strings get
        their own helper instead of a sentinel default.
        """
        value = self._pop(name, None, False)
        if value is None:
            return None
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "bad_request", f"field {name!r} must be a non-empty string"
            )
        return value

    def take_int(
        self, name: str, default: int, lo: int | None = None, hi: int | None = None
    ) -> int:
        value = self._pop(name, default, False)
        # bool is an int subclass; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError("bad_request", f"field {name!r} must be an integer")
        if (lo is not None and value < lo) or (hi is not None and value > hi):
            raise ProtocolError(
                "bad_request",
                f"field {name!r} must be in [{lo}, {hi}], got {value}",
            )
        return value

    def take_float(
        self, name: str, default: float | None, lo: float | None = None
    ) -> float | None:
        value = self._pop(name, default, False)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError("bad_request", f"field {name!r} must be a number")
        value = float(value)
        if lo is not None and value < lo:
            raise ProtocolError(
                "bad_request", f"field {name!r} must be >= {lo}, got {value}"
            )
        return value

    def take_bool(self, name: str, default: bool) -> bool:
        value = self._pop(name, default, False)
        if not isinstance(value, bool):
            raise ProtocolError("bad_request", f"field {name!r} must be a boolean")
        return value

    def take_str_list(self, name: str) -> tuple[str, ...]:
        value = self._pop(name, None, True)
        if (
            not isinstance(value, (list, tuple))
            or not value
            or not all(isinstance(v, str) and v for v in value)
        ):
            raise ProtocolError(
                "bad_request",
                f"field {name!r} must be a non-empty list of strings",
            )
        return tuple(value)

    def finish(self) -> None:
        if self._data:
            raise ProtocolError(
                "bad_request", f"unknown fields: {sorted(self._data)}"
            )


def _check_cell(cell: str) -> str:
    if cell not in WORKLOAD_CELLS and cell not in EXTRA_CELLS:
        raise ProtocolError(
            "unknown_cell",
            f"unknown workload cell {cell!r}; known: {_known_cells()}",
        )
    return cell


def _check_scheduler(name: str) -> str:
    if name.strip().lower() not in available_schedulers():
        raise ProtocolError(
            "unknown_scheduler",
            f"unknown scheduler {name!r}; known: {available_schedulers()}",
        )
    return name.strip().lower()


def _check_policy(name: str) -> str:
    if name.strip().lower() not in available_stream_policies():
        raise ProtocolError(
            "unknown_policy",
            f"unknown stream policy {name!r}; "
            f"known: {available_stream_policies()}",
        )
    return name.strip().lower()


def _check_power(name: str | None) -> str | None:
    if name is None:
        return None
    key = name.strip().lower()
    if key not in available_power_configs():
        raise ProtocolError(
            "unknown_power",
            f"unknown power config {name!r}; "
            f"known: {available_power_configs()}",
        )
    return key


def parse_request(
    payload: Any, expected_kind: str | None = None
) -> Request:
    """Validate a decoded JSON payload into a request dataclass.

    ``expected_kind`` pins the kind (the HTTP layer passes the endpoint
    path's kind); a payload may omit ``kind`` when it is pinned, but a
    conflicting explicit kind is an error, never silently reinterpreted.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("bad_request", "request body must be a JSON object")
    fields = _Fields(payload)
    protocol = fields.take_int("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad_protocol",
            f"protocol {protocol} not supported; this daemon speaks "
            f"{PROTOCOL_VERSION}",
        )
    kind = fields.take_str("kind", expected_kind)
    if expected_kind is not None and kind != expected_kind:
        raise ProtocolError(
            "bad_request",
            f"kind {kind!r} conflicts with the {expected_kind!r} endpoint",
        )
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            "unknown_kind",
            f"unknown request kind {kind!r}; known: {list(REQUEST_KINDS)}",
        )

    cell = _check_cell(fields.take_str("cell"))
    deadline = fields.take_float("deadline", None, lo=0.0)
    if kind == "schedule":
        request: Request = ScheduleRequest(
            cell=cell,
            scheduler=_check_scheduler(fields.take_str("scheduler", "mqb")),
            seed=fields.take_int("seed", 0),
            preemptive=fields.take_bool("preemptive", False),
            quantum=fields.take_float("quantum", 1.0, lo=1e-9),
            power=_check_power(fields.take_opt_str("power")),
            deadline=deadline,
        )
    elif kind == "sweep":
        algorithms = tuple(
            _check_scheduler(a) for a in fields.take_str_list("algorithms")
        )
        request = SweepRequest(
            cell=cell,
            algorithms=algorithms,
            n_instances=fields.take_int(
                "n_instances", 10, lo=1, hi=MAX_SWEEP_INSTANCES
            ),
            seed=fields.take_int("seed", 2011),
            preemptive=fields.take_bool("preemptive", False),
            quantum=fields.take_float("quantum", 1.0, lo=1e-9),
            deadline=deadline,
        )
    else:
        request = StreamRequest(
            cell=cell,
            policy=_check_policy(fields.take_str("policy", "global-mqb")),
            n_jobs=fields.take_int("n_jobs", 10, lo=1, hi=MAX_STREAM_JOBS),
            mean_interarrival=fields.take_float("mean_interarrival", 40.0, lo=0.0),
            seed=fields.take_int("seed", 0),
            deadline=deadline,
        )
    fields.finish()
    return request


def request_fingerprint(request: Request) -> str:
    """Content address of a request's execution-relevant identity.

    Includes the protocol version, :data:`ENGINE_REV` and the numpy
    major version for the same reason the persistent result cache does:
    a fingerprint must never outlive the semantics it hashed.
    """
    return fingerprint_digest(
        {
            "service": PROTOCOL_VERSION,
            "engine_rev": ENGINE_REV,
            "numpy_major": NUMPY_MAJOR,
            **request.fingerprint_fields(),
        }
    )


def ok_response(
    kind: str, result: dict, elapsed: float, source: str = "fresh"
) -> dict:
    """A success body.  ``source`` is ``fresh``/``cached``/``joined``."""
    return {
        "protocol": PROTOCOL_VERSION,
        "status": "ok",
        "kind": kind,
        "source": source,
        "elapsed": elapsed,
        "result": result,
    }


def error_response(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    """A structured error body; ``code`` must be registered."""
    if code not in HTTP_STATUS:
        raise ValueError(f"unregistered error code {code!r}")
    error: dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"protocol": PROTOCOL_VERSION, "status": "error", "error": error}
