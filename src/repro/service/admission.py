"""Admission control: bounded queue, token-bucket rate limit, deadlines.

The daemon admits a request before any work is queued for it; the
controller enforces two independent limits and reports each rejection
as a structured :class:`~repro.service.protocol.ProtocolError` the
HTTP layer maps to ``429`` (with a ``Retry-After`` hint) or ``503``:

* **bounded queue** — at most ``max_pending`` admitted-but-unfinished
  requests (queued *or* executing).  Overload is rejected explicitly
  (``queue_full``), never buffered without bound: an open-loop arrival
  process otherwise grows the queue — and every queued request's
  latency — without limit.
* **token bucket** — a sustained request rate ``rate_limit`` with
  burst capacity ``burst``.  Deterministic and clock-injectable, so
  the tests need no sleeping.

Deadlines are cooperative: admission records the request's budget, the
HTTP layer bounds its *wait* with it (``deadline_exceeded``, HTTP 504).
A deadline never cancels the underlying computation — with request
deduplication the result is still worth finishing and caching for the
retry that typically follows.

All admission traffic counts into the service telemetry:
``admission.admitted``, ``admission.rejected.queue_full``,
``admission.rejected.rate_limited``, ``admission.rejected.draining``
and the ``service.queue_depth`` histogram.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.service.protocol import ProtocolError

__all__ = ["TokenBucket", "AdmissionController", "AdmissionTicket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full.  :meth:`try_acquire` either consumes one
    token and returns ``0.0``, or returns the seconds until the next
    token accrues (the ``Retry-After`` hint) without consuming.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ConfigurationError(
                f"burst must be >= 1 (one whole request), got {self.burst}"
            )
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self) -> float:
        """Take one token; return 0.0, or seconds until one is available."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionTicket:
    """One admitted request; release exactly once (context manager)."""

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class AdmissionController:
    """Gatekeeper in front of the executor; see the module docstring."""

    def __init__(
        self,
        max_pending: int,
        bucket: TokenBucket | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.max_pending = int(max_pending)
        self.bucket = bucket
        self._pending = 0
        self._draining = False
        self._obs = (
            telemetry if (telemetry is not None and telemetry.enabled) else None
        )

    @property
    def pending(self) -> int:
        """Admitted-but-unfinished requests (queued or executing)."""
        return self._pending

    @property
    def draining(self) -> bool:
        return self._draining

    def start_draining(self) -> None:
        """Reject all new work from now on (graceful shutdown)."""
        self._draining = True

    def _reject(self, code: str, message: str, retry_after: float | None) -> None:
        if self._obs is not None:
            self._obs.inc(f"admission.rejected.{code}")
        raise ProtocolError(code, message, retry_after=retry_after)

    def admit(self) -> AdmissionTicket:
        """Admit one request or raise a structured rejection.

        Single-threaded by design: the daemon calls this from the event
        loop only, so check-then-increment needs no lock.
        """
        if self._draining:
            self._reject(
                "draining", "daemon is draining; resubmit elsewhere or later",
                retry_after=None,
            )
        if self._pending >= self.max_pending:
            # The head-of-line request frees a slot after roughly one
            # service time; one token period is the honest stand-in hint
            # when rate-limited deployments overload, 1s otherwise.
            hint = 1.0 / self.bucket.rate if self.bucket is not None else 1.0
            self._reject(
                "queue_full",
                f"request queue is full ({self._pending}/{self.max_pending} "
                f"pending)",
                retry_after=hint,
            )
        if self.bucket is not None:
            wait = self.bucket.try_acquire()
            if wait > 0.0:
                self._reject(
                    "rate_limited",
                    f"rate limit exceeded ({self.bucket.rate:g} req/s, "
                    f"burst {self.bucket.burst:g})",
                    retry_after=wait,
                )
        self._pending += 1
        if self._obs is not None:
            self._obs.inc("admission.admitted")
            self._obs.observe("service.queue_depth", float(self._pending))
        return AdmissionTicket(self)

    def _release(self) -> None:
        self._pending -= 1
        assert self._pending >= 0, "ticket released twice"
