"""``repro serve`` / ``repro submit`` — the daemon's CLI face.

``serve`` blocks in the foreground running the daemon (SIGTERM/Ctrl-C
drains gracefully); ``submit`` fires one request at a running daemon
and prints the JSON answer.  Both live here and are grafted onto the
main :mod:`repro.cli` parser by :func:`add_service_parsers` so the
service stays an optional import (the daemon pulls in asyncio plumbing
the batch CLI never needs).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.client import DEFAULT_PORT, ServiceClient, ServiceError

__all__ = ["add_service_parsers", "cmd_serve", "cmd_submit"]

SUBMIT_KINDS = ("schedule", "sweep", "stream", "health", "metrics")


def add_service_parsers(sub: argparse._SubParsersAction) -> None:
    """Register the ``serve`` and ``submit`` subcommands."""
    serve_p = sub.add_parser(
        "serve", help="run the scheduling daemon (JSON over HTTP)"
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 picks a free one)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for the shared pool (default 1; 0 runs "
            "requests in-process — results identical either way)"
        ),
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="max admitted-but-unfinished requests before 429 (default 64)",
    )
    serve_p.add_argument(
        "--rate-limit", type=float, default=None,
        help="sustained admission rate in requests/second (default: off)",
    )
    serve_p.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket burst capacity (default: max(1, rate))",
    )
    serve_p.add_argument(
        "--default-deadline", type=float, default=None,
        help="server-side deadline (s) for requests that name none",
    )
    serve_p.add_argument(
        "--drain-timeout", type=float, default=20.0,
        help="seconds a drain waits for in-flight work (default 20)",
    )
    serve_p.add_argument(
        "--cache-entries", type=int, default=256,
        help="in-memory response-cache entries, 0 disables (default 256)",
    )

    submit_p = sub.add_parser(
        "submit", help="submit one request to a running daemon"
    )
    submit_p.add_argument(
        "kind", choices=SUBMIT_KINDS, help="request kind (or health/metrics)"
    )
    submit_p.add_argument(
        "cell", nargs="?", default=None,
        help="workload cell (see `repro cells`); required for work requests",
    )
    submit_p.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"daemon URL (default http://127.0.0.1:{DEFAULT_PORT})",
    )
    submit_p.add_argument(
        "--scheduler", default="mqb", help="schedule: algorithm name"
    )
    submit_p.add_argument(
        "--algorithms", default="kgreedy,mqb",
        help="sweep: comma-separated algorithm names (default kgreedy,mqb)",
    )
    submit_p.add_argument(
        "--instances", type=int, default=10, help="sweep: instances"
    )
    submit_p.add_argument(
        "--policy", default="global-mqb", help="stream: multi-job policy"
    )
    submit_p.add_argument(
        "--jobs", type=int, default=10, help="stream: number of jobs"
    )
    submit_p.add_argument(
        "--interarrival", type=float, default=40.0,
        help="stream: mean interarrival gap (default 40)",
    )
    submit_p.add_argument("--seed", type=int, default=None, help="base seed")
    submit_p.add_argument(
        "--preemptive", action="store_true",
        help="schedule/sweep: use the preemptive engine",
    )
    submit_p.add_argument(
        "--quantum", type=float, default=1.0,
        help="preemptive quantum (default 1.0)",
    )
    submit_p.add_argument(
        "--power", default=None,
        help="schedule: named power config for an energy breakdown "
             "(baseline/idle-heavy/hetero/shutdown)",
    )
    submit_p.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds (504 when exceeded)",
    )
    submit_p.add_argument(
        "--timeout", type=float, default=300.0,
        help="client-side HTTP timeout (default 300s)",
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        rate_limit=args.rate_limit,
        burst=args.burst,
        default_deadline=args.default_deadline,
        drain_timeout=args.drain_timeout,
        cache_entries=args.cache_entries,
    )
    return run_service(config)


def cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient.from_url(args.url, timeout=args.timeout)
    try:
        if args.kind == "health":
            body = client.healthz()
        elif args.kind == "metrics":
            body = client.metrics()
        else:
            if args.cell is None:
                print(
                    f"error: `repro submit {args.kind}` needs a workload "
                    f"cell (see `repro cells`)",
                    file=sys.stderr,
                )
                return 2
            if args.kind == "schedule":
                body = client.schedule(
                    args.cell,
                    scheduler=args.scheduler,
                    seed=args.seed if args.seed is not None else 0,
                    preemptive=args.preemptive,
                    quantum=args.quantum,
                    power=args.power,
                    deadline=args.deadline,
                )
            elif args.kind == "sweep":
                body = client.sweep(
                    args.cell,
                    algorithms=[
                        a.strip() for a in args.algorithms.split(",") if a.strip()
                    ],
                    n_instances=args.instances,
                    seed=args.seed if args.seed is not None else 2011,
                    preemptive=args.preemptive,
                    quantum=args.quantum,
                    deadline=args.deadline,
                )
            else:
                body = client.stream(
                    args.cell,
                    policy=args.policy,
                    n_jobs=args.jobs,
                    mean_interarrival=args.interarrival,
                    seed=args.seed if args.seed is not None else 0,
                    deadline=args.deadline,
                )
    except ServiceError as err:
        print(json.dumps(err.response.body, indent=2))
        print(f"error: {err}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as err:
        print(
            f"error: cannot reach daemon at {client.url}: {err}",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(body, indent=2))
    return 0
