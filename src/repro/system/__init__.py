"""Resource-side model: processor pools of a functionally heterogeneous system."""

from repro.system.resources import (
    ResourceConfig,
    medium_system,
    sample_medium_system,
    sample_small_system,
    skewed,
    small_system,
)

__all__ = [
    "ResourceConfig",
    "small_system",
    "medium_system",
    "sample_small_system",
    "sample_medium_system",
    "skewed",
]
