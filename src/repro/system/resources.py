"""Processor configurations of a functionally heterogeneous system.

A :class:`ResourceConfig` is just the vector ``(P_0, ..., P_{K-1})`` of
unit-speed processor counts per resource type.  The paper evaluates two
sizes (Section V-B):

* **small** systems — 1 to 5 processors per type;
* **medium** systems — 10 to 20 processors per type;

plus a **skewed** variant (Section V-E) where type-0's processor count
is cut to one fifth while the other types keep theirs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ResourceError

__all__ = [
    "ResourceConfig",
    "small_system",
    "medium_system",
    "sample_small_system",
    "sample_medium_system",
    "skewed",
]

SMALL_RANGE = (1, 5)
"""Inclusive per-type processor-count range of the paper's small systems."""

MEDIUM_RANGE = (10, 20)
"""Inclusive per-type processor-count range of the paper's medium systems."""

SKEW_FACTOR = 5
"""The paper's skew experiment divides type-0's processor count by 5."""


@dataclass(frozen=True)
class ResourceConfig:
    """Immutable processor counts per resource type.

    Attributes
    ----------
    counts:
        Tuple ``(P_0, ..., P_{K-1})`` of positive processor counts.
    """

    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ResourceError("a system needs at least one resource type")
        if any((not isinstance(c, (int, np.integer))) or c < 1 for c in self.counts):
            raise ResourceError(
                f"processor counts must be positive integers, got {self.counts}"
            )
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))

    @property
    def num_types(self) -> int:
        """Number of resource types ``K``."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total processor count across all types."""
        return sum(self.counts)

    @property
    def p_max(self) -> int:
        """``P_max = max_alpha P_alpha`` (used by the online bounds)."""
        return max(self.counts)

    def as_array(self) -> np.ndarray:
        """Counts as an int64 numpy array of shape ``(K,)``."""
        return np.asarray(self.counts, dtype=np.int64)

    def __getitem__(self, alpha: int) -> int:
        return self.counts[alpha]

    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def with_counts(self, counts: Sequence[int]) -> "ResourceConfig":
        """A new config with the given counts (same constructor checks)."""
        return ResourceConfig(tuple(int(c) for c in counts))


def small_system(num_types: int, per_type: int = 3) -> ResourceConfig:
    """A deterministic small system: ``per_type`` processors per type.

    ``per_type`` must fall inside the paper's small range (1..5).
    """
    _check_in_range(per_type, SMALL_RANGE, "small")
    return ResourceConfig((per_type,) * num_types)


def medium_system(num_types: int, per_type: int = 15) -> ResourceConfig:
    """A deterministic medium system: ``per_type`` processors per type."""
    _check_in_range(per_type, MEDIUM_RANGE, "medium")
    return ResourceConfig((per_type,) * num_types)


def sample_small_system(
    num_types: int, rng: np.random.Generator, uniform: bool = True
) -> ResourceConfig:
    """Sample a small system: counts drawn from 1..5.

    With ``uniform=True`` (default) one count is drawn and shared by
    all types, keeping the default load balanced across types — the
    paper treats imbalance as its own experiment (skewed load,
    Section V-E).  ``uniform=False`` draws each type independently.
    """
    return _sample(num_types, rng, SMALL_RANGE, uniform)


def sample_medium_system(
    num_types: int, rng: np.random.Generator, uniform: bool = True
) -> ResourceConfig:
    """Sample a medium system: counts drawn from 10..20.

    See :func:`sample_small_system` for the ``uniform`` semantics.
    """
    return _sample(num_types, rng, MEDIUM_RANGE, uniform)


def _sample(
    num_types: int,
    rng: np.random.Generator,
    bounds: tuple[int, int],
    uniform: bool,
) -> ResourceConfig:
    lo, hi = bounds
    if uniform:
        c = int(rng.integers(lo, hi + 1))
        return ResourceConfig((c,) * num_types)
    return ResourceConfig(tuple(int(c) for c in rng.integers(lo, hi + 1, num_types)))


def skewed(
    config: ResourceConfig,
    skew_type: int = 0,
    factor: int = SKEW_FACTOR,
) -> ResourceConfig:
    """The paper's skewed-load variant of a system (Section V-E).

    Reduces ``skew_type``'s processor count to ``ceil(P / factor)``
    (never below 1) and keeps all other types unchanged, mimicking
    "reducing the number of machines for type 1 resources to 1/5 of the
    original".
    """
    if not 0 <= skew_type < config.num_types:
        raise ResourceError(
            f"skew_type {skew_type} out of range for K={config.num_types}"
        )
    if factor < 1:
        raise ResourceError(f"skew factor must be >= 1, got {factor}")
    counts = list(config.counts)
    counts[skew_type] = max(1, -(-counts[skew_type] // factor))
    return ResourceConfig(tuple(counts))


def _check_in_range(value: int, bounds: tuple[int, int], name: str) -> None:
    lo, hi = bounds
    if not lo <= value <= hi:
        raise ResourceError(
            f"{name} systems have {lo}..{hi} processors per type, got {value}"
        )
