"""repro — K-DAG scheduling on functionally heterogeneous systems.

A full reproduction of *"Scheduling Functionally Heterogeneous Systems
with Utilization Balancing"* (He, Liu, Sun — IPDPS 2011): the K-DAG job
model, the online KGreedy algorithm and its competitive bounds, the
Multi-Queue Balancing (MQB) offline algorithm with approximate-
information variants, four comparison heuristics, the discrete-time
simulator (non-preemptive and preemptive), the paper's three workload
families, an experiment harness regenerating every figure of the
paper's evaluation, and a fault-tolerance subsystem (failure
injection, a fault-aware engine, robustness experiments) probing the
schedulers beyond the paper's fixed-capacity assumption.

Quickstart::

    import numpy as np
    from repro import (KDagBuilder, ResourceConfig, make_scheduler,
                       simulate)

    b = KDagBuilder(num_types=2)
    cpu = b.add_task(0, work=4.0)
    gpu = b.add_task(1, work=2.0)
    b.add_edge(cpu, gpu)
    job = b.build()

    result = simulate(job, ResourceConfig((2, 1)), make_scheduler("mqb"),
                      rng=np.random.default_rng(0))
    print(result.makespan, result.completion_time_ratio())
"""

from repro.core import (
    KDag,
    KDagBuilder,
    critical_path,
    lower_bound,
    span,
    total_work,
    type_work,
    work_per_processor,
)
from repro.system import (
    ResourceConfig,
    medium_system,
    sample_medium_system,
    sample_small_system,
    skewed,
    small_system,
)
from repro.sim import (
    ScheduleResult,
    ScheduleTrace,
    average_utilization,
    simulate,
    simulate_batch,
    simulate_batch_grid,
    simulate_preemptive,
    type_busy_time,
    utilization_profile,
    validate_schedule,
)
from repro.schedulers import (
    MQB,
    DType,
    KGreedy,
    LSpan,
    MaxDP,
    PAPER_ALGORITHMS,
    Scheduler,
    ShiftBT,
    available_schedulers,
    make_scheduler,
)
from repro.faults import (
    ExponentialFaults,
    FaultScheduleResult,
    FaultTimeline,
    Outage,
    make_fault_model,
    simulate_with_faults,
    validate_fault_schedule,
)
from repro.obs import (
    EventStream,
    NULL_TELEMETRY,
    PhaseProfiler,
    Telemetry,
    TelemetrySnapshot,
    render_summary,
    write_chrome_trace,
)
from repro.resultcache import (
    ENGINE_REV,
    ResultStore,
    cache_enabled,
    open_store,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "KDag",
    "KDagBuilder",
    "type_work",
    "total_work",
    "span",
    "critical_path",
    "lower_bound",
    "work_per_processor",
    # system
    "ResourceConfig",
    "small_system",
    "medium_system",
    "sample_small_system",
    "sample_medium_system",
    "skewed",
    # sim
    "simulate",
    "simulate_batch",
    "simulate_batch_grid",
    "simulate_preemptive",
    "ScheduleResult",
    "ScheduleTrace",
    "validate_schedule",
    "type_busy_time",
    "average_utilization",
    "utilization_profile",
    # schedulers
    "Scheduler",
    "KGreedy",
    "LSpan",
    "MaxDP",
    "DType",
    "ShiftBT",
    "MQB",
    "make_scheduler",
    "available_schedulers",
    "PAPER_ALGORITHMS",
    # faults
    "Outage",
    "FaultTimeline",
    "ExponentialFaults",
    "make_fault_model",
    "simulate_with_faults",
    "FaultScheduleResult",
    "validate_fault_schedule",
    # obs
    "Telemetry",
    "TelemetrySnapshot",
    "NULL_TELEMETRY",
    "EventStream",
    "PhaseProfiler",
    "render_summary",
    "write_chrome_trace",
    # resultcache
    "ENGINE_REV",
    "ResultStore",
    "cache_enabled",
    "open_store",
]
