"""Event-driven simulation of job streams on one FHS.

Semantics mirror the single-job engine (unit-speed typed processors,
non-preemptive, free dispatch) plus arrivals: a job's sources become
ready the instant it arrives, and decision points are arrivals and
completions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import SchedulingError
from repro.multijob.arrival import JobStream
from repro.multijob.schedulers import StreamScheduler
from repro.obs.events import ARRIVAL, COMPLETE, DECISION, JOB_DONE, SAMPLE, SLICE
from repro.obs.telemetry import Telemetry
from repro.system.resources import ResourceConfig

__all__ = ["StreamResult", "simulate_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one stream simulation."""

    scheduler: str
    stream: JobStream
    resources: ResourceConfig
    completion_times: tuple[float, ...]

    @property
    def flow_times(self) -> np.ndarray:
        """Per-job completion minus arrival (response times)."""
        return np.asarray(self.completion_times) - np.asarray(
            self.stream.arrivals
        )

    @property
    def mean_flow_time(self) -> float:
        """Average job response time — the stream objective."""
        return float(self.flow_times.mean())

    @property
    def makespan(self) -> float:
        """Completion time of the whole stream."""
        return max(self.completion_times)


def simulate_stream(
    stream: JobStream,
    resources: ResourceConfig,
    scheduler: StreamScheduler,
    rng: np.random.Generator | None = None,
    telemetry: Telemetry | None = None,
) -> StreamResult:
    """Run ``scheduler`` over the whole stream; see module docstring.

    ``telemetry`` (:mod:`repro.obs`) is optional observability: when
    enabled it records arrival/dispatch/completion events (slices use
    ``proc=-1`` plus a ``jid`` field — this engine tracks per-type
    counts, not processor identities), per-round decision costs and
    queue samples.  ``None`` or disabled is bit-identical to the
    uninstrumented engine.
    """
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    if obs is None:
        scheduler.prepare(stream, resources, rng)
    else:
        _t0 = perf_counter()
        scheduler.prepare(stream, resources, rng)
        obs.add_time("phase.prepare", perf_counter() - _t0)
    k = resources.num_types
    n_jobs = len(stream)
    indeg = [job.in_degrees() for job in stream.jobs]
    unfinished = [job.n_tasks for job in stream.jobs]
    completion = [0.0] * n_jobs
    free = list(resources.counts)

    # Event heap: (time, priority, kind, payload). Arrivals (kind 0)
    # sort before completions (kind 1) at equal times so a job arriving
    # exactly at a completion instant competes in that decision round.
    events: list[tuple[float, int, int, int, int]] = []
    seq = 0
    for jid, t in enumerate(stream.arrivals):
        events.append((float(t), 0, seq, jid, -1))
        seq += 1
    heapq.heapify(events)

    pending_tasks = sum(unfinished)
    now = 0.0
    running = 0
    decisions = 0
    _t_loop = perf_counter() if obs is not None else 0.0

    while pending_tasks > 0 or running > 0:
        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: "
                f"{pending_tasks} tasks pending, nothing running"
            )
        now = events[0][0]
        # Drain every event at `now` before making decisions.
        while events and events[0][0] == now:
            _, kind, _, jid, task = heapq.heappop(events)
            if kind == 0:  # arrival
                job = stream.jobs[jid]
                scheduler.job_arrived(jid, job, now)
                if obs is not None:
                    obs.emit(ARRIVAL, now, jid=jid)
                for v in job.sources():
                    scheduler.task_ready(jid, int(v), now)
            else:  # completion
                job = stream.jobs[jid]
                alpha = int(job.types[task])
                free[alpha] += 1
                running -= 1
                unfinished[jid] -= 1
                if obs is not None:
                    obs.emit(COMPLETE, now, jid=jid, task=task, alpha=alpha)
                scheduler.task_finished(jid, task, now)
                if unfinished[jid] == 0:
                    completion[jid] = now
                    if obs is not None:
                        obs.emit(JOB_DONE, now, jid=jid)
                    scheduler.job_finished(jid, now)
                for c in job.children(task):
                    ci = int(c)
                    indeg[jid][ci] -= 1
                    if indeg[jid][ci] == 0:
                        scheduler.task_ready(jid, ci, now)

        # Decision round.
        _t_round = perf_counter() if obs is not None else 0.0
        started_this_round = 0
        for alpha in range(k):
            while free[alpha] > 0 and scheduler.pending(alpha) > 0:
                picked = scheduler.select(alpha, free[alpha], now)
                if not picked:
                    raise SchedulingError(
                        f"{scheduler.name}: select({alpha}) returned nothing "
                        f"with {scheduler.pending(alpha)} pending"
                    )
                if len(picked) > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name}: select({alpha}) oversubscribed"
                    )
                for jid, task in picked:
                    job = stream.jobs[jid]
                    if int(job.types[task]) != alpha:
                        raise SchedulingError(
                            f"{scheduler.name} returned a type-"
                            f"{int(job.types[task])} task from pool {alpha}"
                        )
                    free[alpha] -= 1
                    running += 1
                    pending_tasks -= 1
                    finish = now + float(job.work[task])
                    if obs is not None:
                        obs.emit(SLICE, now, jid=jid, task=task, alpha=alpha,
                                 proc=-1, end=finish)
                        started_this_round += 1
                    heapq.heappush(events, (finish, 1, seq, jid, task))
                    seq += 1

        if obs is not None:
            decisions += 1
            obs.add_time("decision." + scheduler.name, perf_counter() - _t_round)
            obs.inc("decisions." + scheduler.name)
            if started_this_round:
                obs.emit(DECISION, now, n=started_this_round)
                obs.inc("dispatched." + scheduler.name, started_this_round)
            obs.emit(
                SAMPLE, now,
                ready=[scheduler.pending(a) for a in range(k)],
                free=list(free),
            )

    if obs is not None:
        obs.add_time("phase.engine_loop", perf_counter() - _t_loop)
        obs.inc("engine.runs")
        obs.inc("engine.jobs", n_jobs)
        obs.inc("engine.decisions", decisions)
        obs.inc("engine.events_pushed", seq)

    return StreamResult(
        scheduler=scheduler.name,
        stream=stream,
        resources=resources,
        completion_times=tuple(completion),
    )
