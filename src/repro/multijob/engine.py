"""Event-driven simulation of job streams on one FHS.

Semantics mirror the single-job engine (unit-speed typed processors,
non-preemptive, free dispatch) plus arrivals: a job's sources become
ready the instant it arrives, and decision points are arrivals and
completions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError
from repro.multijob.arrival import JobStream
from repro.multijob.schedulers import StreamScheduler
from repro.system.resources import ResourceConfig

__all__ = ["StreamResult", "simulate_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one stream simulation."""

    scheduler: str
    stream: JobStream
    resources: ResourceConfig
    completion_times: tuple[float, ...]

    @property
    def flow_times(self) -> np.ndarray:
        """Per-job completion minus arrival (response times)."""
        return np.asarray(self.completion_times) - np.asarray(
            self.stream.arrivals
        )

    @property
    def mean_flow_time(self) -> float:
        """Average job response time — the stream objective."""
        return float(self.flow_times.mean())

    @property
    def makespan(self) -> float:
        """Completion time of the whole stream."""
        return max(self.completion_times)


def simulate_stream(
    stream: JobStream,
    resources: ResourceConfig,
    scheduler: StreamScheduler,
    rng: np.random.Generator | None = None,
) -> StreamResult:
    """Run ``scheduler`` over the whole stream; see module docstring."""
    scheduler.prepare(stream, resources, rng)
    k = resources.num_types
    n_jobs = len(stream)
    indeg = [job.in_degrees() for job in stream.jobs]
    unfinished = [job.n_tasks for job in stream.jobs]
    completion = [0.0] * n_jobs
    free = list(resources.counts)

    # Event heap: (time, priority, kind, payload). Arrivals (kind 0)
    # sort before completions (kind 1) at equal times so a job arriving
    # exactly at a completion instant competes in that decision round.
    events: list[tuple[float, int, int, int, int]] = []
    seq = 0
    for jid, t in enumerate(stream.arrivals):
        events.append((float(t), 0, seq, jid, -1))
        seq += 1
    heapq.heapify(events)

    pending_tasks = sum(unfinished)
    now = 0.0
    running = 0

    while pending_tasks > 0 or running > 0:
        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: "
                f"{pending_tasks} tasks pending, nothing running"
            )
        now = events[0][0]
        # Drain every event at `now` before making decisions.
        while events and events[0][0] == now:
            _, kind, _, jid, task = heapq.heappop(events)
            if kind == 0:  # arrival
                job = stream.jobs[jid]
                scheduler.job_arrived(jid, job, now)
                for v in job.sources():
                    scheduler.task_ready(jid, int(v), now)
            else:  # completion
                job = stream.jobs[jid]
                alpha = int(job.types[task])
                free[alpha] += 1
                running -= 1
                unfinished[jid] -= 1
                scheduler.task_finished(jid, task, now)
                if unfinished[jid] == 0:
                    completion[jid] = now
                    scheduler.job_finished(jid, now)
                for c in job.children(task):
                    ci = int(c)
                    indeg[jid][ci] -= 1
                    if indeg[jid][ci] == 0:
                        scheduler.task_ready(jid, ci, now)

        # Decision round.
        for alpha in range(k):
            while free[alpha] > 0 and scheduler.pending(alpha) > 0:
                picked = scheduler.select(alpha, free[alpha], now)
                if not picked:
                    raise SchedulingError(
                        f"{scheduler.name}: select({alpha}) returned nothing "
                        f"with {scheduler.pending(alpha)} pending"
                    )
                if len(picked) > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name}: select({alpha}) oversubscribed"
                    )
                for jid, task in picked:
                    job = stream.jobs[jid]
                    if int(job.types[task]) != alpha:
                        raise SchedulingError(
                            f"{scheduler.name} returned a type-"
                            f"{int(job.types[task])} task from pool {alpha}"
                        )
                    free[alpha] -= 1
                    running += 1
                    pending_tasks -= 1
                    finish = now + float(job.work[task])
                    heapq.heappush(events, (finish, 1, seq, jid, task))
                    seq += 1

    return StreamResult(
        scheduler=scheduler.name,
        stream=stream,
        resources=resources,
        completion_times=tuple(completion),
    )
