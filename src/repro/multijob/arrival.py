"""Job streams: K-DAG jobs with arrival times."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError
from repro.workloads.generator import sample_job
from repro.workloads.params import WorkloadSpec

__all__ = ["JobStream", "poisson_stream"]


@dataclass(frozen=True)
class JobStream:
    """A sequence of jobs and their (non-decreasing) arrival times.

    All jobs must agree on ``K`` — they share one system.
    """

    jobs: tuple[KDag, ...]
    arrivals: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ConfigurationError("a stream needs at least one job")
        if len(self.jobs) != len(self.arrivals):
            raise ConfigurationError(
                f"{len(self.jobs)} jobs vs {len(self.arrivals)} arrival times"
            )
        if any(t < 0 for t in self.arrivals):
            raise ConfigurationError("arrival times must be non-negative")
        if any(b < a for a, b in zip(self.arrivals, self.arrivals[1:])):
            raise ConfigurationError("arrival times must be non-decreasing")
        k = self.jobs[0].num_types
        if any(j.num_types != k for j in self.jobs):
            raise ConfigurationError("all jobs in a stream must share K")

    @property
    def num_types(self) -> int:
        """The shared K of the stream."""
        return self.jobs[0].num_types

    def __len__(self) -> int:
        return len(self.jobs)

    def total_work(self) -> float:
        """Sum of all jobs' work."""
        return float(sum(j.work.sum() for j in self.jobs))


def poisson_stream(
    spec: WorkloadSpec,
    n_jobs: int,
    mean_interarrival: float,
    rng: np.random.Generator,
) -> JobStream:
    """Sample ``n_jobs`` jobs from a cell with Poisson arrivals.

    The first job arrives at time 0 (there is no point simulating an
    empty prefix); subsequent gaps are exponential with the given mean.
    """
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    if mean_interarrival < 0:
        raise ConfigurationError(
            f"mean_interarrival must be >= 0, got {mean_interarrival}"
        )
    jobs = tuple(sample_job(spec, rng) for _ in range(n_jobs))
    gaps = rng.exponential(mean_interarrival, size=n_jobs - 1)
    arrivals = (0.0, *np.cumsum(gaps).tolist())
    return JobStream(jobs=jobs, arrivals=arrivals)
