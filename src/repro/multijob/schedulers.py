"""Scheduling policies for job streams.

All four policies are work conserving; they differ in how they order
the union of all arrived jobs' ready tasks within each type's pool:

* :class:`GlobalKGreedy` — job-blind FIFO, the stream analogue of
  KGreedy and the natural "online" baseline.
* :class:`JobFCFS` — strict job seniority: every ready task of an
  earlier-arrived job precedes any task of a later one.  Classic
  cluster behaviour; minimizes interleaving between jobs.
* :class:`SmallestRemainingFirst` — SRPT-flavoured: tasks of the job
  with the least *remaining total work* first; the standard mean-flow-
  time heuristic, here generalized to typed DAG jobs.
* :class:`GlobalMQB` — the paper's utilization balancing applied to
  the union of ready queues: per-job typed descendant values are
  computed at arrival, and each pick maximizes the lexicographic
  x-utilization balance exactly as in single-job MQB.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.core.descendants import descendant_values
from repro.core.kdag import KDag
from repro.errors import ConfigurationError, SchedulingError
from repro.multijob.arrival import JobStream
from repro.system.resources import ResourceConfig

__all__ = [
    "StreamScheduler",
    "GlobalKGreedy",
    "JobFCFS",
    "SmallestRemainingFirst",
    "GlobalMQB",
    "STREAM_POLICIES",
    "make_stream_scheduler",
    "available_stream_policies",
]


class StreamScheduler(ABC):
    """Policy interface for :func:`repro.multijob.engine.simulate_stream`."""

    name: str = "stream-abstract"

    def __init__(self) -> None:
        self._stream: JobStream | None = None
        self._resources: ResourceConfig | None = None

    def prepare(
        self,
        stream: JobStream,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Reset state for a fresh run."""
        if stream.num_types != resources.num_types:
            raise SchedulingError("stream and system disagree on K")
        self._stream = stream
        self._resources = resources

    @property
    def stream(self) -> JobStream:
        if self._stream is None:
            raise SchedulingError("scheduler used before prepare()")
        return self._stream

    def job_arrived(self, jid: int, job: KDag, time: float) -> None:
        """A new job entered the system (hook; default no-op)."""

    @abstractmethod
    def task_ready(self, jid: int, task: int, time: float) -> None:
        """A task of job ``jid`` became ready."""

    @abstractmethod
    def pending(self, alpha: int) -> int:
        """Queued ready tasks of type ``alpha`` across all jobs."""

    @abstractmethod
    def select(self, alpha: int, n_slots: int, time: float) -> list[tuple[int, int]]:
        """Pop up to ``n_slots`` ``(jid, task)`` pairs of type ``alpha``."""

    def task_finished(self, jid: int, task: int, time: float) -> None:
        """Completion hook (default no-op)."""

    def job_finished(self, jid: int, time: float) -> None:
        """Whole-job completion hook (default no-op)."""


class _HeapPolicy(StreamScheduler):
    """Shared machinery: one heap per type, subclass supplies the key."""

    def prepare(self, stream, resources, rng=None) -> None:
        super().prepare(stream, resources, rng)
        self._heaps: list[list[tuple]] = [[] for _ in range(stream.num_types)]
        self._seq = 0

    @abstractmethod
    def _key(self, jid: int, task: int, time: float) -> tuple:
        """Heap key; lower pops first (seq appended automatically)."""

    def task_ready(self, jid: int, task: int, time: float) -> None:
        alpha = int(self.stream.jobs[jid].types[task])
        heapq.heappush(
            self._heaps[alpha],
            (*self._key(jid, task, time), self._seq, jid, task),
        )
        self._seq += 1

    def pending(self, alpha: int) -> int:
        return len(self._heaps[alpha])

    def select(self, alpha, n_slots, time):
        heap = self._heaps[alpha]
        out = []
        while heap and len(out) < n_slots:
            *_, jid, task = heapq.heappop(heap)
            out.append((jid, task))
        return out


class GlobalKGreedy(_HeapPolicy):
    """Job-blind FIFO across the union of ready tasks."""

    name = "global-kgreedy"

    def _key(self, jid, task, time):
        return ()


class JobFCFS(_HeapPolicy):
    """Strict job seniority (jobs are numbered in arrival order)."""

    name = "job-fcfs"

    def _key(self, jid, task, time):
        return (jid,)


class SmallestRemainingFirst(StreamScheduler):
    """Tasks of the job with the least remaining total work first.

    Remaining work is tracked exactly (decremented at completions), so
    the priority is evaluated live at selection time rather than frozen
    at enqueue.
    """

    name = "srpt"

    def prepare(self, stream, resources, rng=None) -> None:
        super().prepare(stream, resources, rng)
        self._pools: list[dict[tuple[int, int], int]] = [
            {} for _ in range(stream.num_types)
        ]
        self._remaining = [float(j.work.sum()) for j in stream.jobs]
        self._seq = 0

    def task_ready(self, jid, task, time):
        alpha = int(self.stream.jobs[jid].types[task])
        self._pools[alpha][(jid, task)] = self._seq
        self._seq += 1

    def pending(self, alpha):
        return len(self._pools[alpha])

    def select(self, alpha, n_slots, time):
        pool = self._pools[alpha]
        out = []
        while pool and len(out) < n_slots:
            key = min(
                pool, key=lambda jt: (self._remaining[jt[0]], pool[jt])
            )
            del pool[key]
            out.append(key)
        return out

    def task_finished(self, jid, task, time):
        self._remaining[jid] -= float(self.stream.jobs[jid].work[task])


class GlobalMQB(StreamScheduler):
    """MQB balancing over all arrived jobs' ready queues.

    Descendant values are per job (computed once at arrival) — a task's
    descendants live in its own job — while the queue-work vector and
    the balance comparison span the whole system, exactly the
    single-job MQB rule applied to the union.
    """

    name = "global-mqb"

    def prepare(self, stream, resources, rng=None) -> None:
        super().prepare(stream, resources, rng)
        self._pools: list[dict[tuple[int, int], int]] = [
            {} for _ in range(stream.num_types)
        ]
        self._l = np.zeros(stream.num_types)
        self._parr = resources.as_array().astype(np.float64)
        self._d: dict[int, np.ndarray] = {}
        self._seq = 0

    def job_arrived(self, jid, job, time):
        self._d[jid] = descendant_values(job)

    def task_ready(self, jid, task, time):
        job = self.stream.jobs[jid]
        alpha = int(job.types[task])
        self._pools[alpha][(jid, task)] = self._seq
        self._seq += 1
        self._l[alpha] += float(job.work[task])

    def pending(self, alpha):
        return len(self._pools[alpha])

    def select(self, alpha, n_slots, time):
        pool = self._pools[alpha]
        out: list[tuple[int, int]] = []
        extra = np.zeros(self.stream.num_types)
        while pool and len(out) < n_slots:
            if len(pool) <= n_slots - len(out):
                batch = list(pool.keys())
                for jid, task in batch:
                    self._pop(alpha, jid, task)
                    extra += self._d[jid][task]
                out.extend(batch)
                break
            best = None
            best_key = None
            for (jid, task), seq in pool.items():
                job = self.stream.jobs[jid]
                hypo = self._l + extra + self._d[jid][task]
                hypo[alpha] -= float(job.work[task])
                key = (tuple(-x for x in np.sort(hypo / self._parr)), seq)
                # Maximize sorted-ascending lexicographically ==
                # minimize its negation.
                if best_key is None or key < best_key:
                    best_key = key
                    best = (jid, task)
            assert best is not None
            jid, task = best
            self._pop(alpha, jid, task)
            extra += self._d[jid][task]
            out.append(best)
        return out

    def _pop(self, alpha: int, jid: int, task: int) -> None:
        del self._pools[alpha][(jid, task)]
        self._l[alpha] -= float(self.stream.jobs[jid].work[task])


#: Registry of stream policies by name, in the study's plotting order —
#: the stream analogue of :data:`repro.schedulers.registry.PAPER_ALGORITHMS`.
STREAM_POLICIES: dict[str, Callable[[], StreamScheduler]] = {
    GlobalKGreedy.name: GlobalKGreedy,
    JobFCFS.name: JobFCFS,
    SmallestRemainingFirst.name: SmallestRemainingFirst,
    GlobalMQB.name: GlobalMQB,
}


def make_stream_scheduler(name: str) -> StreamScheduler:
    """Construct a fresh stream policy from its registry name."""
    key = name.strip().lower()
    try:
        return STREAM_POLICIES[key]()
    except KeyError:
        raise ConfigurationError(
            f"unknown stream policy {name!r}; known: {sorted(STREAM_POLICIES)}"
        ) from None


def available_stream_policies() -> list[str]:
    """All registry names accepted by :func:`make_stream_scheduler`."""
    return sorted(STREAM_POLICIES)
