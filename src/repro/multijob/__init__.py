"""Multi-job scheduling: streams of K-DAG jobs sharing one FHS.

The paper schedules one job at a time, but its motivating system
(Cosmos) runs "over a thousand jobs" a day on shared server classes.
This subpackage extends the model to a *stream* of K-DAG jobs with
arrival times:

* :class:`~repro.multijob.arrival.JobStream` — jobs plus arrival
  times; :func:`~repro.multijob.arrival.poisson_stream` samples
  Poisson arrivals over a workload cell;
* :func:`~repro.multijob.engine.simulate_stream` — event-driven
  engine handling arrivals and completions;
* policies in :mod:`repro.multijob.schedulers`:
  ``GlobalKGreedy`` (one FIFO pool per type, job-blind),
  ``JobFCFS`` (strict arrival-order priority between jobs),
  ``SmallestRemainingFirst`` (SRPT-style: jobs with the least
  remaining total work first), and ``GlobalMQB`` (MQB balancing over
  the union of all jobs' ready queues);
* metrics: per-job completion/flow times, mean flow time, stream
  makespan.
"""

from repro.multijob.arrival import JobStream, poisson_stream
from repro.multijob.engine import StreamResult, simulate_stream
from repro.multijob.schedulers import (
    STREAM_POLICIES,
    GlobalKGreedy,
    GlobalMQB,
    JobFCFS,
    SmallestRemainingFirst,
    StreamScheduler,
    available_stream_policies,
    make_stream_scheduler,
)

__all__ = [
    "JobStream",
    "poisson_stream",
    "simulate_stream",
    "StreamResult",
    "StreamScheduler",
    "GlobalKGreedy",
    "JobFCFS",
    "SmallestRemainingFirst",
    "GlobalMQB",
    "STREAM_POLICIES",
    "make_stream_scheduler",
    "available_stream_policies",
]
