"""``repro route`` — run the sharded cluster from the command line.

Grafted onto the main :mod:`repro.cli` parser the same way the service
subcommands are, so the cluster stays an optional import.  Two modes:

* ``repro route --shards 4`` — spawn four ``repro serve`` shard
  processes on free ports, supervise them (health checks, capped-
  backoff restarts), and route in front of them;
* ``repro route --shard-urls http://h1:8512,http://h2:8512`` — route
  to externally managed daemons (health-checked, never restarted).
"""

from __future__ import annotations

import argparse

__all__ = ["add_cluster_parser", "cmd_route"]


def add_cluster_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``route`` subcommand."""
    route_p = sub.add_parser(
        "route",
        help="run the consistent-hash router over N supervised shards",
    )
    route_p.add_argument("--host", default="127.0.0.1", help="bind address")
    route_p.add_argument(
        "--port", type=int, default=8600,
        help="router bind port (default 8600; 0 picks a free one)",
    )
    route_p.add_argument(
        "--shards", type=int, default=2,
        help="shard processes to spawn and supervise (default 2)",
    )
    route_p.add_argument(
        "--shard-urls", default=None,
        help=(
            "comma-separated daemon URLs to route to instead of "
            "spawning (static mode: health-checked, never restarted)"
        ),
    )
    route_p.add_argument(
        "--workers-per-shard", type=int, default=0,
        help="pool workers per spawned shard (default 0: in-process)",
    )
    route_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-shard admission queue limit (default 64)",
    )
    route_p.add_argument(
        "--rate-limit", type=float, default=None,
        help="per-shard sustained admission rate (default: off)",
    )
    route_p.add_argument(
        "--default-deadline", type=float, default=None,
        help="per-shard server-side deadline for requests naming none",
    )
    route_p.add_argument(
        "--cache-entries", type=int, default=256,
        help="per-shard LRU response-cache entries (default 256)",
    )
    route_p.add_argument(
        "--replicas", type=int, default=64,
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    route_p.add_argument(
        "--retries", type=int, default=2,
        help=(
            "extra replicas tried when a shard is down or draining "
            "(default 2; requests are idempotent, so retry is safe)"
        ),
    )
    route_p.add_argument(
        "--health-interval", type=float, default=0.5,
        help="seconds between shard health probes (default 0.5)",
    )
    route_p.add_argument(
        "--drain-timeout", type=float, default=20.0,
        help="seconds a drain waits for in-flight work and shard exits",
    )


def cmd_route(args: argparse.Namespace) -> int:
    from repro.cluster.router import RouterConfig, run_cluster

    shard_urls: tuple[str, ...] = ()
    if args.shard_urls:
        shard_urls = tuple(
            url.strip() for url in args.shard_urls.split(",") if url.strip()
        )
    config = RouterConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        shard_urls=shard_urls,
        workers_per_shard=args.workers_per_shard,
        queue_limit=args.queue_limit,
        rate_limit=args.rate_limit,
        default_deadline=args.default_deadline,
        cache_entries=args.cache_entries,
        replicas=args.replicas,
        retries=args.retries,
        health_interval=args.health_interval,
        drain_timeout=args.drain_timeout,
    )
    return run_cluster(config)
