"""Cluster test harnesses: in-thread routers and subprocess clusters.

:class:`ClusterThread` hosts a complete :class:`ClusterRouter` on a
background thread with its own event loop.  In *static* form
(:func:`static_cluster`) the shards are in-thread
:class:`~repro.service.testing.ServiceThread` daemons — no subprocess
spawn cost, so router behaviour (affinity, failover, aggregation,
drain) is testable in milliseconds over real sockets.  In *managed*
form the router spawns real ``repro serve`` subprocesses, which is
what the supervision tests need (kill -9, restart, exit codes).

:func:`spawn_cluster` launches ``repro route`` as a real subprocess
for scripts that must observe OS-level behaviour (SIGTERM propagation,
exit codes): the soak harness and the CI smoke step.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig
from repro.service.testing import ServiceThread

__all__ = [
    "ClusterThread",
    "static_cluster",
    "SpawnedCluster",
    "spawn_cluster",
    "wait_cluster_up",
]


class ClusterThread:
    """Host a router (and, managed mode, its shard fleet) on a thread."""

    def __init__(
        self,
        config: RouterConfig,
        telemetry: Telemetry | None = None,
        shard_threads: list[ServiceThread] | None = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.shard_threads = shard_threads or []
        self.router: ClusterRouter | None = None
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.clean: bool | None = None

    def __enter__(self) -> "ClusterThread":
        # static_cluster() hands back an already-started cluster; using
        # it as a context manager must not start it twice.
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self, wait_healthy: float = 30.0) -> "ClusterThread":
        if self._thread is not None:
            raise ConfigurationError("ClusterThread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise ConfigurationError("router thread failed to start in 30s")
        if wait_healthy:
            wait_cluster_up(self.client(), timeout=wait_healthy)
        return self

    def _run(self) -> None:
        import asyncio

        async def main() -> bool:
            self.router = ClusterRouter(self.config, telemetry=self.telemetry)
            try:
                await self.router.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self.port = self.router.port
            self._started.set()
            return await self.router.serve_forever()

        try:
            self.clean = asyncio.run(main())
        except BaseException:
            self._started.set()

    def stop(self, timeout: float = 30.0) -> bool | None:
        """Drain the router (and managed shards), then stop static shards."""
        clean: bool | None = None
        if self._thread is not None:
            if self.router is not None:
                self.router.request_shutdown()
            self._thread.join(timeout=timeout)
            self._thread = None
            clean = self.clean
        for shard in self.shard_threads:
            shard.stop(timeout=timeout)
        return clean

    def client(self, timeout: float = 60.0) -> ServiceClient:
        assert self.port is not None, "start() first"
        return ServiceClient(self.config.host, self.port, timeout=timeout)


def static_cluster(
    n_shards: int,
    router_config: RouterConfig | None = None,
    shard_config: ServiceConfig | None = None,
    telemetry: Telemetry | None = None,
    work_fns: dict | None = None,
    per_shard_work_fns: list[dict] | None = None,
) -> ClusterThread:
    """A router over ``n_shards`` in-thread daemons, started and healthy.

    ``per_shard_work_fns`` injects distinct work functions per shard
    (e.g. each shard answering with its own index), which is how the
    affinity tests observe placement without reaching into the router.
    """
    shards = []
    for index in range(n_shards):
        fns = work_fns
        if per_shard_work_fns is not None:
            fns = per_shard_work_fns[index]
        config = shard_config or ServiceConfig(port=0, workers=0)
        shards.append(ServiceThread(config, work_fns=fns).start())
    base = router_config or RouterConfig()
    config = RouterConfig(
        **{
            **base.__dict__,
            "port": base.port if base.port != 8600 else 0,
            "shard_urls": tuple(
                f"http://127.0.0.1:{shard.port}" for shard in shards
            ),
        }
    )
    cluster = ClusterThread(config, telemetry=telemetry, shard_threads=shards)
    try:
        return cluster.start()
    except BaseException:
        for shard in shards:
            shard.stop()
        raise


def wait_cluster_up(
    client: ServiceClient, timeout: float = 30.0, min_status: str = "ok"
) -> dict:
    """Poll the router's ``/healthz`` until it reports healthy shards.

    Unlike :meth:`ServiceClient.wait_until_up` this also rides out the
    startup window where the router answers 503 ``no_shards`` while
    its shards are still booting.
    """
    deadline = time.monotonic() + timeout
    last: object = None
    while time.monotonic() < deadline:
        try:
            body = client.healthz()
            if body.get("status") == min_status or min_status == "any":
                return body
            last = body
        except ServiceError as err:
            if min_status == "any":
                return err.response.body
            last = err.response.body
        except (ConnectionError, OSError) as exc:
            last = exc
        time.sleep(0.05)
    raise ConfigurationError(
        f"cluster at {client.url} not healthy within {timeout}s: {last}"
    )


@dataclass
class SpawnedCluster:
    """A ``repro route`` subprocess plus the client pointed at it."""

    process: subprocess.Popen
    client: ServiceClient

    def terminate(self, timeout: float = 60.0) -> int:
        """SIGTERM (coordinated drain) and wait; returns the exit code."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10.0)
            raise

    def __enter__(self) -> "SpawnedCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)


def spawn_cluster(
    port: int,
    shards: int,
    workers_per_shard: int = 0,
    queue_limit: int = 64,
    default_deadline: float | None = None,
    extra_args: list[str] | None = None,
    startup_timeout: float = 60.0,
) -> SpawnedCluster:
    """Launch ``repro route`` as a subprocess and wait until it is healthy."""
    cmd = [
        sys.executable, "-m", "repro.cli", "route",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--shards", str(shards),
        "--workers-per-shard", str(workers_per_shard),
        "--queue-limit", str(queue_limit),
    ]
    if default_deadline is not None:
        cmd += ["--default-deadline", str(default_deadline)]
    cmd += extra_args or []
    env = dict(os.environ)
    src = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(cmd, env=env)
    client = ServiceClient("127.0.0.1", port)
    try:
        wait_cluster_up(client, timeout=startup_timeout)
    except Exception:
        process.kill()
        process.wait(timeout=10.0)
        raise
    return SpawnedCluster(process=process, client=client)
