"""The consistent-hash router: one listener in front of many shards.

``repro route`` runs this: an asyncio HTTP listener speaking the
daemon's exact versioned JSON protocol, placed in front of N
``repro serve`` shard processes.  Work requests (``/schedule``,
``/sweep``, ``/stream``) are validated *at the router* (malformed
requests never touch a shard), keyed by their content fingerprint —
the same SHA-256 identity the result cache and every shard's LRU
response cache use — and forwarded to the owning shard on the
consistent-hash ring (:mod:`repro.cluster.ring`).  Placement is
therefore a pure function of the request: identical requests land on
the same shard, so per-shard in-flight joining and response caching
keep working cluster-wide, and the shared content-addressed result
store on disk gives cross-shard warm-cache coherence for sweeps.

Failover: requests are pure computations (idempotent by construction
— the protocol's fingerprint *is* a proof of that), so a transport
failure or a draining shard retries on the next distinct replica in
ring order, bounded by ``retries``.  When the primary is unhealthy the
request is *rebalanced* to the next replica; when no healthy shard
remains the router answers a structured 503 ``no_shards``.  All of it
is counted: ``router.routed`` / ``router.routed.<shard>`` /
``router.retried`` / ``router.rebalanced`` / ``router.shard_down`` /
``router.no_shards``.

``/healthz`` aggregates supervised per-shard state (no fan-out — the
supervisor already polls); ``/metrics`` fans out to every live shard
and merges their telemetry snapshots into one cluster-level snapshot
next to the router's own counters.

Responses are passed through byte-for-byte: the router never
re-serializes a shard's answer, which is what makes the 2-shard vs
1-shard bit-identity test meaningful.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from dataclasses import dataclass
from time import perf_counter
from urllib.parse import urlparse

from repro.errors import ConfigurationError
from repro.obs.telemetry import TelemetrySnapshot, Telemetry, merge_snapshots
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.workers import WorkerSpec, WorkerSupervisor, serve_command
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    ProtocolError,
    error_response,
    parse_request,
    request_fingerprint,
)
from repro.service.server import (
    BadHttp,
    read_http_request,
    render_http_response,
)

__all__ = ["RouterConfig", "ClusterRouter", "run_cluster"]


@dataclass(frozen=True)
class RouterConfig:
    """Cluster knobs: the listener, the fleet, supervision, failover."""

    host: str = "127.0.0.1"
    port: int = 8600
    #: Managed mode: spawn this many ``repro serve`` shards on free
    #: ports.  Ignored when ``shard_urls`` is non-empty (static mode).
    shards: int = 2
    #: Pool workers *per shard* (``repro serve --workers``); 0 runs
    #: shard requests in-process, which is right for soak fleets on
    #: small hosts.
    workers_per_shard: int = 0
    #: Static mode: route to these externally managed daemons instead
    #: of spawning (health-checked, never restarted).
    shard_urls: tuple[str, ...] = ()
    #: Per-shard admission settings, forwarded to ``repro serve``.
    queue_limit: int = 64
    rate_limit: float | None = None
    burst: float | None = None
    default_deadline: float | None = None
    cache_entries: int = 256
    #: Virtual nodes per shard on the hash ring.
    replicas: int = DEFAULT_REPLICAS
    #: Extra replicas tried after the primary (transport failures and
    #: draining shards only — admission 429s are answers, not failures).
    retries: int = 2
    health_interval: float = 0.5
    probe_timeout: float = 2.0
    fail_threshold: int = 2
    kill_threshold: int = 10
    backoff_base: float = 0.5
    backoff_cap: float = 10.0
    forward_timeout: float = 120.0
    read_timeout: float = 30.0
    drain_timeout: float = 20.0
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if not self.shard_urls and self.shards < 1:
            raise ConfigurationError(
                f"need at least one shard, got {self.shards}"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")


def _specs_from_config(config: RouterConfig) -> list[WorkerSpec]:
    if config.shard_urls:
        specs = []
        for index, url in enumerate(config.shard_urls):
            parsed = urlparse(url if "//" in url else f"http://{url}")
            if not parsed.hostname or not parsed.port:
                raise ConfigurationError(
                    f"shard URL needs host:port, got {url!r}"
                )
            specs.append(
                WorkerSpec(
                    shard_id=f"shard-{index}",
                    host=parsed.hostname,
                    port=parsed.port,
                    command=None,
                )
            )
        return specs
    from repro.service.testing import free_port

    specs = []
    for index in range(config.shards):
        port = free_port()
        specs.append(
            WorkerSpec(
                shard_id=f"shard-{index}",
                host="127.0.0.1",
                port=port,
                command=tuple(
                    serve_command(
                        port,
                        workers=config.workers_per_shard,
                        queue_limit=config.queue_limit,
                        rate_limit=config.rate_limit,
                        burst=config.burst,
                        default_deadline=config.default_deadline,
                        cache_entries=config.cache_entries,
                    )
                ),
            )
        )
    return specs


class ClusterRouter:
    """Listener + ring + supervisor; one per ``repro route`` process."""

    def __init__(
        self,
        config: RouterConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or RouterConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.supervisor: WorkerSupervisor | None = None
        self.ring = HashRing(replicas=self.config.replicas)
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = 0.0
        self._in_flight = 0
        self._draining = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn/adopt the fleet and bind the listener."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        specs = _specs_from_config(self.config)
        self.supervisor = WorkerSupervisor(
            specs,
            health_interval=self.config.health_interval,
            probe_timeout=self.config.probe_timeout,
            fail_threshold=self.config.fail_threshold,
            kill_threshold=self.config.kill_threshold,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            telemetry=self.telemetry,
        )
        for spec in specs:
            self.ring.add(spec.shard_id)
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    def request_shutdown(self) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    async def serve_forever(self) -> bool:
        assert self._shutdown is not None, "start() first"
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await self._shutdown.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        return await self.drain()

    async def drain(self) -> bool:
        """Coordinated drain: listener, in-flight forwards, then the fleet."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_timeout
        while self._in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        clean = self._in_flight == 0
        if self.supervisor is not None:
            remaining = max(0.1, deadline - time.monotonic())
            clean = await self.supervisor.drain(timeout=remaining) and clean
        return clean

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            keep = True
            while keep:
                keep = await self._serve_one(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive connections; exit
            # quietly (3.11's stream callback would log the cancel).
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        status, payload, retry_after = 500, b"{}", None
        keep_alive = False
        try:
            request = await read_http_request(
                reader,
                timeout=self.config.read_timeout,
                max_body_bytes=self.config.max_body_bytes,
            )
            if request is None:
                return False
            method, path, _headers, body, keep_alive = request
            status, payload, retry_after = await self._dispatch(
                method, path, body
            )
        except ProtocolError as err:
            status = err.http_status
            payload = json.dumps(err.to_body()).encode("utf-8")
            retry_after = err.retry_after
        except (BadHttp, asyncio.TimeoutError):
            status, keep_alive = 400, False
            payload = json.dumps(
                error_response("bad_request", "malformed HTTP request")
            ).encode("utf-8")
        except (asyncio.IncompleteReadError, ConnectionError, BrokenPipeError):
            return False
        except Exception as exc:
            status = 500
            payload = json.dumps(
                error_response("internal", f"{type(exc).__name__}: {exc}")
            ).encode("utf-8")
        if self._draining:
            keep_alive = False
        try:
            writer.write(
                render_http_response(
                    status, payload, keep_alive=keep_alive,
                    retry_after=retry_after,
                )
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            return False
        return keep_alive

    # -- dispatch -------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, raw_body: bytes
    ) -> tuple[int, bytes, float | None]:
        if path == "/healthz":
            self._require_method(method, "GET")
            status, body = self._healthz_body()
            return status, json.dumps(body).encode("utf-8"), None
        if path == "/metrics":
            self._require_method(method, "GET")
            body = await self._metrics_body()
            return 200, json.dumps(body).encode("utf-8"), None
        kind = path.lstrip("/")
        if kind not in REQUEST_KINDS:
            raise ProtocolError(
                "not_found",
                f"no endpoint {path!r}; try /schedule /sweep /stream "
                f"/healthz /metrics",
            )
        self._require_method(method, "POST")
        if self._draining:
            raise ProtocolError(
                "draining", "router is draining; resubmit elsewhere or later"
            )
        self.telemetry.inc("router.requests")
        try:
            payload = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                "bad_json", f"request body is not JSON: {exc}"
            ) from None
        # Validate locally so malformed requests never occupy a shard,
        # and so the fingerprint below is defined.
        request = parse_request(payload, expected_kind=kind)
        fingerprint = request_fingerprint(request)
        self._in_flight += 1
        t0 = perf_counter()
        try:
            status, body, retry_after = await self._route(
                kind, path, raw_body, fingerprint
            )
        finally:
            self._in_flight -= 1
        self.telemetry.add_time("router.latency", perf_counter() - t0)
        return status, body, retry_after

    async def _route(
        self, kind: str, path: str, raw_body: bytes, fingerprint: str
    ) -> tuple[int, bytes, float | None]:
        """Forward to the fingerprint's shard, failing over in ring order."""
        assert self.supervisor is not None
        preference = self.ring.preference(fingerprint)
        healthy = set(self.supervisor.healthy_ids())
        candidates = [sid for sid in preference if sid in healthy]
        if not candidates:
            self.telemetry.inc("router.no_shards")
            raise ProtocolError(
                "no_shards",
                f"no healthy shards (of {len(preference)}) to route "
                f"{kind!r} to; retry shortly",
                retry_after=self.config.health_interval * 2,
            )
        if candidates[0] != preference[0]:
            self.telemetry.inc("router.rebalanced")
        attempts = candidates[: self.config.retries + 1]
        last_response = None
        last_error: Exception | None = None
        for index, shard_id in enumerate(attempts):
            if index:
                self.telemetry.inc("router.retried")
            endpoint = self.supervisor.endpoint(shard_id)
            try:
                response = await endpoint.request(
                    "POST", path, raw_body, timeout=self.config.forward_timeout
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                self.telemetry.inc("router.shard_down")
                last_error = exc
                continue
            if (
                response.status == 503
                and response.json().get("error", {}).get("code") == "draining"
            ):
                # Restarting shard mid-drain: the work is idempotent,
                # the next replica can serve it.
                last_response = response
                continue
            self.telemetry.inc("router.routed")
            self.telemetry.inc(f"router.routed.{shard_id}")
            retry_after = None
            if "retry-after" in response.headers:
                try:
                    retry_after = float(response.headers["retry-after"])
                except ValueError:
                    retry_after = None
            return response.status, response.body, retry_after
        if last_response is not None:
            return last_response.status, last_response.body, None
        self.telemetry.inc("router.no_shards")
        raise ProtocolError(
            "no_shards",
            f"all {len(attempts)} candidate shards failed for {kind!r}: "
            f"{type(last_error).__name__ if last_error else 'unknown'}: "
            f"{last_error}",
            retry_after=self.config.health_interval * 2,
        )

    # -- aggregation ----------------------------------------------------
    def _healthz_body(self) -> tuple[int, dict]:
        assert self.supervisor is not None
        shards = self.supervisor.summary()
        healthy = sum(1 for s in shards if s["healthy"])
        if self._draining:
            status = "draining"
        elif healthy:
            status = "ok"
        else:
            status = "no_shards"
        code = 200 if status == "ok" else 503
        return code, {
            "protocol": PROTOCOL_VERSION,
            "status": status,
            "role": "router",
            "uptime": time.monotonic() - self._started_at,
            "draining": self._draining,
            "healthy_shards": healthy,
            "total_shards": len(shards),
            "shards": shards,
        }

    async def _metrics_body(self) -> dict:
        assert self.supervisor is not None

        async def fetch(shard_id: str) -> tuple[str, dict | None]:
            try:
                response = await self.supervisor.endpoint(shard_id).request(
                    "GET", "/metrics", timeout=self.config.probe_timeout
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return shard_id, None
            return shard_id, (response.json() if response.status == 200 else None)

        fetched = dict(
            await asyncio.gather(*(fetch(sid) for sid in self.supervisor.workers))
        )
        snapshots = []
        shard_reports = []
        for summary in self.supervisor.summary():
            metrics = fetched.get(summary["id"])
            if metrics and isinstance(metrics.get("telemetry"), dict):
                try:
                    snapshots.append(
                        TelemetrySnapshot.from_dict(metrics["telemetry"])
                    )
                except (KeyError, TypeError, ValueError):
                    pass
            shard_reports.append({**summary, "metrics": metrics})
        cluster = merge_snapshots(snapshots) if snapshots else None
        return {
            "protocol": PROTOCOL_VERSION,
            "status": "draining" if self._draining else "ok",
            "role": "router",
            "uptime": time.monotonic() - self._started_at,
            "in_flight": self._in_flight,
            "router": self.telemetry.snapshot().to_dict(),
            "cluster": cluster.to_dict() if cluster is not None else None,
            "shards": shard_reports,
        }

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(
                "method_not_allowed", f"use {expected}, not {method}"
            )


def run_cluster(config: RouterConfig | None = None) -> int:
    """Blocking entry point of ``repro route``; returns an exit code."""

    async def main() -> bool:
        router = ClusterRouter(config)
        await router.start()
        assert router.supervisor is not None
        mode = (
            f"{len(router.supervisor.workers)} managed shards"
            if not router.config.shard_urls
            else f"{len(router.supervisor.workers)} static shards"
        )
        print(
            f"[repro route] listening on http://{router.config.host}:"
            f"{router.port} ({mode}, replicas={router.config.replicas}, "
            f"retries={router.config.retries}) — SIGTERM drains",
            file=sys.stderr,
            flush=True,
        )
        ready = await router.supervisor.wait_healthy(min_healthy=1)
        shard_urls = [w.spec.url for w in router.supervisor.workers.values()]
        print(
            f"[repro route] shards {'healthy' if ready else 'NOT READY'}: "
            f"{shard_urls}",
            file=sys.stderr,
            flush=True,
        )
        clean = await router.serve_forever()
        print(
            f"[repro route] drained {'cleanly' if clean else 'WITH TIMEOUT'}",
            file=sys.stderr,
            flush=True,
        )
        return clean

    try:
        return 0 if asyncio.run(main()) else 1
    except KeyboardInterrupt:
        return 130
