"""Minimal asyncio HTTP/1.1 client used inside the cluster.

The router forwards requests to shards and health-checks them over the
same JSON-over-HTTP protocol the daemon speaks; the stdlib has no
async HTTP client, and the subset the cluster needs (one request, one
``Content-Length``-framed response, keep-alive) is small enough to own
— mirroring the daemon's own ~60-line server framing.

:class:`PooledEndpoint` keeps a small stack of idle keep-alive
connections per shard: at soak rates the router would otherwise pay a
TCP handshake per forwarded request, which measurably dominates
loopback latency.  A request on a reused connection that fails at the
transport layer is retried once on a fresh connection (the server may
have idle-closed it); a failure on a fresh connection is the shard's
problem and propagates to the caller's failover logic.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = ["HttpResponse", "PooledEndpoint", "read_http_response"]


@dataclass
class HttpResponse:
    """One parsed upstream answer (body kept as raw bytes)."""

    status: int
    headers: dict[str, str]
    body: bytes
    will_close: bool

    def json(self) -> dict:
        try:
            decoded = json.loads(self.body.decode("utf-8")) if self.body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {}
        return decoded if isinstance(decoded, dict) else {}


async def read_http_response(
    reader: asyncio.StreamReader, max_body_bytes: int = 1 << 26
) -> HttpResponse:
    """Parse one ``Content-Length``-framed HTTP/1.1 response."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("connection closed before a status line")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"bad status line {status_line!r}")
    version, status = parts[0], int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("connection closed inside response headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_header = headers.get("content-length")
    connection = headers.get("connection", "").lower()
    will_close = connection == "close" or version.upper() == "HTTP/1.0"
    if length_header is None:
        # No framing: read to EOF and force the connection closed.
        body = await reader.read(max_body_bytes)
        will_close = True
    else:
        length = int(length_header)
        if length > max_body_bytes:
            raise ConnectionError(f"response body of {length} bytes too large")
        body = await reader.readexactly(length) if length else b""
    return HttpResponse(
        status=status, headers=headers, body=body, will_close=will_close
    )


def _render_request(
    method: str, path: str, host: str, body: bytes | None
) -> bytes:
    head = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Connection: keep-alive",
    ]
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + (body or b"")


@dataclass
class PooledEndpoint:
    """Keep-alive connection pool for one ``host:port`` upstream."""

    host: str
    port: int
    connect_timeout: float = 5.0
    max_idle: int = 8
    _idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = field(
        default_factory=list
    )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _open(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout,
        )

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:
            pass

    def _release(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._idle) < self.max_idle:
            self._idle.append((reader, writer))
        else:
            self._discard(writer)

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float = 30.0,
    ) -> HttpResponse:
        """One exchange; raises ``ConnectionError``/``TimeoutError`` only.

        Transport failures on a *reused* connection retry once on a
        fresh one; failures on a fresh connection propagate.
        """
        payload = _render_request(method, path, self.host, body)
        for _attempt in (0, 1):
            reused = bool(self._idle)
            if reused:
                reader, writer = self._idle.pop()
            else:
                reader, writer = await self._open()
            try:
                writer.write(payload)
                await asyncio.wait_for(writer.drain(), timeout=timeout)
                response = await asyncio.wait_for(
                    read_http_response(reader), timeout=timeout
                )
            except (
                ConnectionError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ) as exc:
                self._discard(writer)
                if not reused:
                    if isinstance(exc, asyncio.TimeoutError):
                        raise
                    raise ConnectionError(
                        f"{self.url}{path}: {type(exc).__name__}: {exc}"
                    ) from exc
                continue
            if response.will_close:
                self._discard(writer)
            else:
                self._release(reader, writer)
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Drop every idle connection (drain/teardown)."""
        while self._idle:
            _reader, writer = self._idle.pop()
            self._discard(writer)
