"""Worker supervision: spawn, health-check, restart, drain.

A :class:`WorkerSupervisor` owns the shard fleet behind the router.
Two modes share one implementation:

* **managed** — the supervisor spawns each shard as a real
  ``repro serve`` subprocess on its own port, restarts dead workers
  with capped exponential backoff (``supervisor.restarts``), and
  propagates SIGTERM as a coordinated drain (children first get a
  graceful SIGTERM, stragglers are killed after a bounded wait);
* **static** — shard URLs are given from outside (separately deployed
  daemons, or in-thread test harnesses); the supervisor only
  health-checks and reports, never spawns or kills.

Health is polled from ``/healthz`` every ``health_interval`` seconds:
a shard is *up* only while it answers 200 with ``status: ok`` — a
draining shard (503) is routed around exactly like a dead one.  One
failed probe does not evict a shard (a slow GC pause should not cause
a rebalance); ``fail_threshold`` consecutive failures do.  A managed
worker whose process is alive but unresponsive for ``kill_threshold``
consecutive probes is killed and restarted — a wedged event loop is
operationally identical to a dead one.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.cluster.wire import PooledEndpoint

__all__ = ["WorkerSpec", "ManagedWorker", "WorkerSupervisor", "serve_command"]


def serve_command(
    port: int,
    host: str = "127.0.0.1",
    workers: int = 0,
    queue_limit: int = 64,
    rate_limit: float | None = None,
    burst: float | None = None,
    default_deadline: float | None = None,
    cache_entries: int = 256,
) -> list[str]:
    """The ``repro serve`` argv for one shard (mirrors the CLI flags)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", host,
        "--port", str(port),
        "--workers", str(workers),
        "--queue-limit", str(queue_limit),
        "--cache-entries", str(cache_entries),
    ]
    if rate_limit is not None:
        cmd += ["--rate-limit", str(rate_limit)]
    if burst is not None:
        cmd += ["--burst", str(burst)]
    if default_deadline is not None:
        cmd += ["--default-deadline", str(default_deadline)]
    return cmd


@dataclass(frozen=True)
class WorkerSpec:
    """One shard's identity: ring id, address, and (if managed) argv."""

    shard_id: str
    host: str
    port: int
    command: tuple[str, ...] | None = None  # None → static (unmanaged)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def managed(self) -> bool:
        return self.command is not None


@dataclass
class ManagedWorker:
    """Mutable supervision state for one shard."""

    spec: WorkerSpec
    endpoint: PooledEndpoint
    process: subprocess.Popen | None = None
    healthy: bool = False
    consecutive_failures: int = 0
    restarts: int = 0
    restart_attempts: int = 0  # consecutive, resets on a healthy probe
    next_restart_at: float = 0.0
    last_health: dict = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        """Process liveness (always True for static workers)."""
        if not self.spec.managed:
            return True
        return self.process is not None and self.process.poll() is None


class WorkerSupervisor:
    """Spawn/probe/restart/drain the shard fleet (see module docstring)."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        health_interval: float = 0.5,
        probe_timeout: float = 2.0,
        fail_threshold: int = 2,
        kill_threshold: int = 10,
        backoff_base: float = 0.5,
        backoff_cap: float = 10.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not specs:
            raise ConfigurationError("supervisor needs at least one worker")
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate shard ids: {ids}")
        self.health_interval = float(health_interval)
        self.probe_timeout = float(probe_timeout)
        self.fail_threshold = int(fail_threshold)
        self.kill_threshold = int(kill_threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.workers: dict[str, ManagedWorker] = {
            spec.shard_id: ManagedWorker(
                spec=spec,
                endpoint=PooledEndpoint(spec.host, spec.port),
            )
            for spec in specs
        }
        self._monitor: asyncio.Task | None = None
        self._draining = False

    # -- queries --------------------------------------------------------
    def healthy_ids(self) -> list[str]:
        return [wid for wid, w in self.workers.items() if w.healthy]

    def endpoint(self, shard_id: str) -> PooledEndpoint:
        return self.workers[shard_id].endpoint

    def summary(self) -> list[dict]:
        """Per-shard state for ``/healthz`` aggregation (no network)."""
        return [
            {
                "id": worker.spec.shard_id,
                "url": worker.spec.url,
                "managed": worker.spec.managed,
                "healthy": worker.healthy,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "consecutive_failures": worker.consecutive_failures,
            }
            for worker in self.workers.values()
        ]

    def backoff_delay(self, attempts: int) -> float:
        """Capped exponential restart backoff: base·2^k, clamped."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempts))

    # -- lifecycle ------------------------------------------------------
    def _spawn(self, worker: ManagedWorker) -> None:
        assert worker.spec.command is not None
        env = dict(os.environ)
        src = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        worker.process = subprocess.Popen(list(worker.spec.command), env=env)
        self.telemetry.inc("supervisor.spawned")

    async def start(self) -> None:
        """Spawn managed workers and begin the monitor loop."""
        for worker in self.workers.values():
            if worker.spec.managed:
                self._spawn(worker)
        self._monitor = asyncio.get_running_loop().create_task(
            self._monitor_loop()
        )

    async def wait_healthy(
        self, min_healthy: int = 1, timeout: float = 30.0
    ) -> bool:
        """Block until ``min_healthy`` shards answer, or time out."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.healthy_ids()) >= min_healthy:
                return True
            await asyncio.sleep(0.05)
        return len(self.healthy_ids()) >= min_healthy

    # -- monitoring -----------------------------------------------------
    async def _probe(self, worker: ManagedWorker) -> None:
        try:
            response = await worker.endpoint.request(
                "GET", "/healthz", timeout=self.probe_timeout
            )
            up = response.status == 200
            worker.last_health = response.json()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            up = False
        if up:
            if not worker.healthy:
                self.telemetry.inc("supervisor.recovered")
            worker.healthy = True
            worker.consecutive_failures = 0
            worker.restart_attempts = 0
        else:
            worker.consecutive_failures += 1
            self.telemetry.inc("supervisor.health_failures")
            if worker.consecutive_failures >= self.fail_threshold:
                worker.healthy = False

    def _restart_dead(self, worker: ManagedWorker, now: float) -> None:
        """Respawn a dead managed worker once its backoff has elapsed."""
        if worker.process is not None and worker.process.poll() is None:
            if worker.consecutive_failures >= self.kill_threshold:
                # Alive but wedged: treat as dead.
                worker.process.kill()
                worker.process.wait(timeout=10.0)
                self.telemetry.inc("supervisor.killed_unresponsive")
            else:
                return
        worker.healthy = False
        if now < worker.next_restart_at:
            return
        delay = self.backoff_delay(worker.restart_attempts)
        worker.restart_attempts += 1
        worker.restarts += 1
        worker.next_restart_at = now + delay
        worker.endpoint.close()
        self._spawn(worker)
        self.telemetry.inc("supervisor.restarts")

    async def _monitor_loop(self) -> None:
        while not self._draining:
            await asyncio.gather(
                *(self._probe(w) for w in self.workers.values())
            )
            now = time.monotonic()
            for worker in self.workers.values():
                if worker.spec.managed and not self._draining:
                    self._restart_dead(worker, now)
            await asyncio.sleep(self.health_interval)

    # -- drain ----------------------------------------------------------
    async def drain(self, timeout: float = 20.0) -> bool:
        """Stop monitoring, SIGTERM managed children, await clean exits.

        Returns ``True`` when every managed child exited 0 within the
        timeout (static workers are not ours to stop and don't count).
        """
        self._draining = True
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except (asyncio.CancelledError, Exception):
                pass
            self._monitor = None
        clean = True
        managed = [
            w for w in self.workers.values()
            if w.spec.managed and w.process is not None
        ]
        for worker in managed:
            if worker.process.poll() is None:
                worker.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for worker in managed:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                code = await asyncio.get_running_loop().run_in_executor(
                    None, worker.process.wait, remaining
                )
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait(timeout=10.0)
                code = worker.process.returncode
            if code != 0:
                clean = False
            worker.healthy = False
            worker.endpoint.close()
        return clean
