"""Consistent-hash ring: stable request→shard placement.

The router keys every work request by its content fingerprint (the
same SHA-256 identity the result cache and the in-memory response
cache use), so *placement is a pure function of the request's
execution-relevant fields*: identical requests always land on the same
shard, which is what keeps per-shard in-flight joining and the LRU
response cache effective across a fleet.

Classic consistent hashing with virtual nodes: each shard id is hashed
onto the ring at ``replicas`` points; a key is owned by the first
virtual node clockwise from the key's own hash.  Adding or removing
one shard from an ``n``-shard ring therefore moves only ~``1/n`` of
the key space (``tests/cluster/test_ring.py`` asserts the bound) —
restarts and scale changes invalidate a bounded slice of every
shard-local cache instead of reshuffling everything.

Hashes are SHA-256 prefixes, not :func:`hash`: placement must be
identical across processes and runs (``PYTHONHASHSEED`` varies), and
the router, the soak harness and the tests all need to agree on who
owns a key.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard.  64 keeps the max/mean shard load under
#: ~1.35 for small fleets (measured in the ring tests) at a lookup
#: table of 64·n entries — bisect cost is logarithmic and tiny.
DEFAULT_REPLICAS = 64


def _hash64(key: str) -> int:
    """First 8 bytes of SHA-256 as an unsigned int (process-stable)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over string node ids.

    Mutable (``add``/``remove``) but cheap to rebuild; the router
    mutates it only on supervised membership changes, never per
    request.
    """

    def __init__(
        self, nodes: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._nodes: set[str] = set()
        self._hashes: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def _points(self, node: str) -> list[int]:
        return [_hash64(f"{node}#{i}") for i in range(self.replicas)]

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._points(node):
            index = bisect_right(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        keep = [
            (h, o) for h, o in zip(self._hashes, self._owners) if o != node
        ]
        self._hashes = [h for h, _ in keep]
        self._owners = [o for _, o in keep]

    def node_for(self, key: str) -> str | None:
        """The owner of ``key``, or ``None`` on an empty ring."""
        if not self._hashes:
            return None
        index = bisect_right(self._hashes, _hash64(key)) % len(self._hashes)
        return self._owners[index]

    def preference(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct nodes in clockwise ring order starting at ``key``.

        The first entry is :meth:`node_for`; the rest are the failover
        order the router walks when the primary is unhealthy.  The
        order is a deterministic function of ``(key, membership)``, so
        every retry of the same request walks the same replica chain.
        """
        if not self._hashes:
            return []
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect_right(self._hashes, _hash64(key))
        seen: list[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) >= want:
                    break
        return seen
