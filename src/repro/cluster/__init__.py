"""Horizontally sharded serving: router, supervisor, hash ring.

The multi-process serving plane in front of :mod:`repro.service`: one
consistent-hash router (``repro route``) speaking the daemon's exact
versioned JSON protocol, N supervised ``repro serve`` shard processes
behind it.  Placement is keyed by the request content fingerprint, so
identical requests always land on the same shard — per-shard in-flight
joining and LRU response caching keep working fleet-wide, and the
shared content-addressed result store on disk provides cross-shard
warm-cache coherence for sweeps.  The pieces:

* :mod:`~repro.cluster.ring` — consistent-hash ring with virtual
  nodes (bounded key movement under membership change);
* :mod:`~repro.cluster.wire` — minimal asyncio HTTP client with
  per-shard keep-alive connection pools;
* :mod:`~repro.cluster.workers` — worker supervision: spawn, health
  probes, capped-exponential-backoff restart, coordinated drain;
* :mod:`~repro.cluster.router` — the listener: validate, fingerprint,
  route, fail over, aggregate ``/healthz`` and ``/metrics``;
* :mod:`~repro.cluster.testing` — in-thread and subprocess harnesses.

Entry point: ``repro route`` (see :mod:`repro.cluster.cli`), plus
``scripts/soak.py`` for sustained mixed-profile load at shard counts
1/2/4.
"""

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.cluster.router import ClusterRouter, RouterConfig, run_cluster
from repro.cluster.workers import WorkerSpec, WorkerSupervisor

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "ClusterRouter",
    "RouterConfig",
    "run_cluster",
    "WorkerSpec",
    "WorkerSupervisor",
]
