"""Analytic results of the paper: Lemma 1 and the competitive bounds."""

from repro.theory.lemma1 import (
    expected_draws_closed_form,
    expected_draws_exact,
    simulate_draws,
)
from repro.theory.bounds import (
    deterministic_online_lower_bound,
    graham_bound,
    kgreedy_competitive_ratio,
    randomized_online_lower_bound,
    randomized_online_lower_bound_as_stated,
    randomized_online_lower_bound_finite_m,
)

__all__ = [
    "expected_draws_closed_form",
    "expected_draws_exact",
    "simulate_draws",
    "randomized_online_lower_bound",
    "randomized_online_lower_bound_as_stated",
    "randomized_online_lower_bound_finite_m",
    "deterministic_online_lower_bound",
    "kgreedy_competitive_ratio",
    "graham_bound",
]
