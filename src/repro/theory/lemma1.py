"""Lemma 1: the ball-drawing lemma behind the online lower bound.

*There are n balls in a non-transparent box; r are red.  Balls are
drawn uniformly at random without replacement.  The expected number of
draws needed to obtain all r red balls is* ``r/(r+1) * (n+1)``.

This module provides the closed form, an independent exact computation
from the distribution the paper derives
(``Pr[Q = r+i] = C(r+i-1, i) / C(n, r)``), and a Monte Carlo
simulator — the test suite checks all three against each other, and
the ``lemma1`` benchmark reproduces the agreement table.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "expected_draws_closed_form",
    "expected_draws_exact",
    "simulate_draws",
]


def _check(n: int, r: int) -> None:
    if r < 1 or n < r:
        raise ConfigurationError(
            f"need 1 <= r <= n, got n={n}, r={r}"
        )


def expected_draws_closed_form(n: int, r: int) -> float:
    """``E[Q] = r/(r+1) * (n+1)`` — the lemma's closed form."""
    _check(n, r)
    return r / (r + 1) * (n + 1)


def expected_draws_exact(n: int, r: int) -> float:
    """``E[Q]`` summed directly from the draw-count distribution.

    ``Pr[Q = r+i] = C(r+i-1, i) / C(n, r)`` for ``i = 0..n-r`` — the
    last red ball sits at position ``r+i`` and the ``i`` black balls
    before it can occupy any of the first ``r+i-1`` positions.
    """
    _check(n, r)
    total = 0.0
    denom = math.comb(n, r)
    for i in range(0, n - r + 1):
        total += (r + i) * math.comb(r + i - 1, i) / denom
    return total


def simulate_draws(
    n: int, r: int, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Monte Carlo draw counts: ``trials`` samples of ``Q``.

    Vectorized: one permutation per trial; ``Q`` is the position of the
    last red ball (1-indexed).
    """
    _check(n, r)
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    # The position of the last of r marked items in a random permutation.
    out = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        positions = rng.choice(n, size=r, replace=False)
        out[t] = positions.max() + 1
    return out
