"""Competitive-ratio bounds for online K-DAG scheduling.

Collected formulas from Section III (and the related work they cite):

* :func:`randomized_online_lower_bound` — Theorem 2 as *derived* in the
  proof (Inequality 4): ``K + 1 - sum_a 1/(P_a + 1) - 1/(P_max + 1)``.
* :func:`randomized_online_lower_bound_as_stated` — the abstract /
  theorem-statement form whose last term is ``1/P_max``; the paper
  states the two inconsistently, so both are exposed and the
  discrepancy is documented (they differ by
  ``1/P_max - 1/(P_max+1)``, vanishing as ``P_max`` grows).
* :func:`deterministic_online_lower_bound` — He, Sun & Hsu (ICPP'07):
  ``K + 1 - 1/P_max``.
* :func:`kgreedy_competitive_ratio` — KGreedy's guarantee ``K + 1``.
* :func:`graham_bound` — Graham's ``2 - 1/P`` for the homogeneous
  (K = 1) special case.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ResourceError

__all__ = [
    "randomized_online_lower_bound",
    "randomized_online_lower_bound_as_stated",
    "randomized_online_lower_bound_finite_m",
    "deterministic_online_lower_bound",
    "kgreedy_competitive_ratio",
    "graham_bound",
]


def _procs(processors: Sequence[int]) -> np.ndarray:
    p = np.asarray(processors, dtype=np.float64)
    if p.ndim != 1 or p.size < 1 or np.any(p < 1):
        raise ResourceError(f"invalid processor counts {processors!r}")
    return p


def randomized_online_lower_bound(processors: Sequence[int]) -> float:
    """Theorem 2 (proof form): no randomized online algorithm beats this.

    ``K + 1 - sum_alpha 1/(P_alpha + 1) - 1/(P_max + 1)``.
    """
    p = _procs(processors)
    k = p.size
    return float(k + 1 - np.sum(1.0 / (p + 1)) - 1.0 / (p.max() + 1))


def randomized_online_lower_bound_as_stated(processors: Sequence[int]) -> float:
    """Theorem 2 as stated in the paper's abstract/theorem text.

    ``K + 1 - sum_alpha 1/(P_alpha + 1) - 1/P_max``.  Slightly smaller
    than the proof's form; kept for reference.
    """
    p = _procs(processors)
    k = p.size
    return float(k + 1 - np.sum(1.0 / (p + 1)) - 1.0 / p.max())


def randomized_online_lower_bound_finite_m(
    processors: Sequence[int], m: int
) -> float:
    """Theorem 2's finite-m bound (the paper's Inequality 3).

    The expected completion-time ratio of any online algorithm on the
    adversarial family with scale constant ``m`` is at least::

        [ (K + 1 - sum_a 1/(P_a+1)) m P_K - (P_K/(P_K+1)) m - 1 ]
        / (K - 1 + m P_K)

    which approaches :func:`randomized_online_lower_bound` as
    ``m -> inf``.  Empirical adversary runs should be compared against
    this form at their actual ``m``.
    """
    p = _procs(processors)
    if m < 1:
        raise ResourceError(f"m must be >= 1, got {m}")
    k = p.size
    pk = float(p[-1])
    if pk != float(p.max()):
        raise ResourceError(
            "the adversarial family requires P_K = P_max (last type largest)"
        )
    numerator = (k + 1 - np.sum(1.0 / (p + 1))) * m * pk - pk / (pk + 1) * m - 1
    return float(numerator / (k - 1 + m * pk))


def deterministic_online_lower_bound(processors: Sequence[int]) -> float:
    """He, Sun & Hsu: deterministic online bound ``K + 1 - 1/P_max``."""
    p = _procs(processors)
    return float(p.size + 1 - 1.0 / p.max())


def kgreedy_competitive_ratio(num_types: int) -> float:
    """KGreedy's worst-case guarantee: ``K + 1``.

    More precisely (He, Sun & Hsu) KGreedy is
    ``(K + 1 - 1/P_max)``-competitive; ``K + 1`` is the clean form the
    paper quotes.
    """
    if num_types < 1:
        raise ResourceError(f"num_types must be >= 1, got {num_types}")
    return float(num_types + 1)


def graham_bound(n_processors: int) -> float:
    """Graham's list-scheduling guarantee for K = 1: ``2 - 1/P``.

    Also an upper bound on the homogeneous completion-time ratio
    ``T / max(T_inf, T_1/P)``, since ``T <= T_1/P + T_inf`` implies
    ``T <= 2 L``.
    """
    if n_processors < 1:
        raise ResourceError(f"n_processors must be >= 1, got {n_processors}")
    return 2.0 - 1.0 / n_processors
