"""ASCII Gantt rendering of execution traces.

Terminal-friendly visualization: one row per processor, time flowing
right, each task drawn with a rotating glyph (task id mod 62 over
``[0-9a-zA-Z]``), idle time as ``.``, and segments killed by a
processor failure (fault-aware engine) as ``x``.  Good enough to *see*
KGreedy's phase serialization next to MQB's interleaving — or a fault
run's wasted work — without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["render_gantt"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_gantt(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    width: int = 80,
    type_names: list[str] | None = None,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    Parameters
    ----------
    width:
        Number of character columns for the time axis; each column is
        ``makespan / width`` time units, and a column shows the task
        occupying most of it (``.`` if mostly idle).
    type_names:
        Optional labels per resource type (default ``t0``, ``t1``, …).
    """
    if width < 10:
        raise ValidationError(f"width must be >= 10, got {width}")
    t_end = trace.makespan()
    if t_end <= 0:
        raise ValidationError("cannot render an empty trace")
    names = type_names or [f"t{a}" for a in range(resources.num_types)]
    if len(names) != resources.num_types:
        raise ValidationError(
            f"{len(names)} type names for K={resources.num_types}"
        )

    col_w = t_end / width
    lines: list[str] = []
    label_w = max(len(f"{n}[{p}]") for n, p in zip(names, resources.counts))

    # One pass over the trace groups segments by processor, instead of
    # re-scanning the whole trace for every processor row.
    by_proc: dict[tuple[int, int], list] = {}
    for seg in trace:
        by_proc.setdefault((seg.alpha, seg.proc), []).append(seg)

    for alpha in range(resources.num_types):
        for proc in range(resources.counts[alpha]):
            # Per column: total busy time decides busy-vs-idle; the
            # single task with the largest overlap supplies the glyph.
            busy = np.zeros(width)
            dominant = np.zeros(width)
            owner = np.full(width, -1, dtype=np.int64)
            killed = np.zeros(width, dtype=bool)
            for seg in by_proc.get((alpha, proc), ()):
                lo = int(seg.start // col_w)
                hi = min(width - 1, int((seg.end - 1e-12) // col_w))
                for c in range(lo, hi + 1):
                    overlap = min(seg.end, (c + 1) * col_w) - max(
                        seg.start, c * col_w
                    )
                    busy[c] += overlap
                    if overlap > dominant[c]:
                        dominant[c] = overlap
                        owner[c] = seg.task
                        killed[c] = seg.killed
            row = "".join(
                ("x" if killed[c] else _GLYPHS[owner[c] % len(_GLYPHS)])
                if busy[c] > 0.5 * col_w
                else "."
                for c in range(width)
            )
            label = f"{names[alpha]}[{proc}]".ljust(label_w)
            lines.append(f"{label} |{row}|")
        lines.append("")

    header = f"{'':{label_w}s}  0{'makespan = ' + format(t_end, 'g'):>{width}s}"
    return "\n".join([header, *lines[:-1]])
