"""Non-preemptive event-driven simulation of a K-DAG on an FHS.

Semantics (paper Section V-A, non-preemptive default):

* All processors run at unit speed; an ``alpha``-task with work ``w``
  occupies one ``alpha``-processor for exactly ``w`` time units.
* A task becomes ready the instant its last parent completes; sources
  are ready at time 0.
* Scheduling decisions happen whenever at least one processor is idle
  and at least one matching task is ready (i.e. at time 0 and at every
  completion instant).  Once started, a task runs to completion.
* Decision, dispatch and completion handling are free (no overhead),
  as in the paper's simulator.

The engine is event driven rather than tick driven: it advances
directly to the next completion instant, so the cost per run is
``O(n log n + n * selection_cost)`` independent of work magnitudes.
"""

from __future__ import annotations

import heapq
from time import perf_counter

import numpy as np

from repro.core.kdag import KDag
from repro.errors import SchedulingError
from repro.obs.events import COMPLETE, DECISION, SAMPLE, SLICE
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import Scheduler
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["simulate"]


def simulate(
    job: KDag,
    resources: ResourceConfig,
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> ScheduleResult:
    """Run ``scheduler`` on ``job`` non-preemptively; return the result.

    Parameters
    ----------
    job, resources:
        The K-DAG and the processor counts (must agree on K).
    scheduler:
        Any :class:`~repro.schedulers.base.Scheduler`; it is
        ``prepare()``-d here, so instances may be reused across runs.
    rng:
        Passed to ``scheduler.prepare`` for stochastic information
        models (MQB+Exp / MQB+Noise).  Deterministic schedulers ignore it.
    record_trace:
        When true, the result carries a full :class:`ScheduleTrace`
        (one segment per task).
    telemetry:
        Observability context (:mod:`repro.obs`).  ``None`` or a
        disabled context keeps the run bit-identical to an
        uninstrumented engine; an enabled one records phase timers,
        decision costs, heap stats and — when it carries an event
        stream — slice/decision/sample events.

    Raises
    ------
    SchedulingError
        If the scheduler starts an unready/duplicate task or stalls
        (no running tasks, pending work, but no assignment) — all six
        library schedulers are work conserving and never trigger this.
    """
    # Resolve observability once; the loops below never re-check it.
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    scheduler.attach_telemetry(obs)
    if obs is None:
        scheduler.prepare(job, resources, rng)
    else:
        _t0 = perf_counter()
        scheduler.prepare(job, resources, rng)
        obs.add_time("phase.prepare", perf_counter() - _t0)
    k = job.num_types
    n = job.n_tasks
    # The decision/completion loop is pure Python; bind the per-task
    # attributes as flat lists (and the child adjacency as flat CSR
    # lists) once, so the inner loops do list indexing instead of numpy
    # scalar extraction and per-node slice objects.
    types = job.types.tolist()
    work = job.work.tolist()
    child_ptr = job.child_ptr.tolist()
    child_idx = job.child_idx.tolist()

    indeg = job.in_degrees().tolist()
    state = [0] * n  # 0 pending, 1 ready, 2 running, 3 done
    free = list(resources.counts)
    free_procs: list[list[int]] = [list(range(c - 1, -1, -1)) for c in resources.counts]
    trace = ScheduleTrace() if record_trace else None

    # Completion events: (finish_time, seq, task, proc). seq keeps heap
    # comparisons away from task-id ties and makes pop order stable.
    events: list[tuple[float, int, int, int]] = []
    seq = 0
    n_ready = 0
    completed = 0
    decisions = 0
    now = 0.0
    makespan = 0.0

    for v in job.sources():
        vi = int(v)
        state[vi] = 1
        n_ready += 1
        scheduler.task_ready(vi, now, work[vi])

    # With observability on, decisions route through the timing wrapper
    # (chosen per run, not per round) and the loop tracks heap depth.
    assign = scheduler.assign if obs is None else scheduler.on_decision
    heap_peak = 0
    _t_loop = perf_counter() if obs is not None else 0.0

    heappush, heappop = heapq.heappush, heapq.heappop
    while completed < n:
        # ---- decision round at time `now` ----
        if n_ready and any(
            free[a] and scheduler.pending(a) for a in range(k)
        ):
            decisions += 1
            chosen = assign(free, now)
            counts_this_round = [0] * k
            for task in chosen:
                if state[task] != 1:
                    raise SchedulingError(
                        f"{scheduler.name} started task {task} in state "
                        f"{state[task]} (not ready)"
                    )
                alpha = types[task]
                counts_this_round[alpha] += 1
                if counts_this_round[alpha] > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name} oversubscribed type {alpha} "
                        f"({counts_this_round[alpha]} > {free[alpha]} free)"
                    )
                state[task] = 2
                n_ready -= 1
                proc = free_procs[alpha].pop()
                finish = now + work[task]
                heappush(events, (finish, seq, task, proc))
                seq += 1
                if trace is not None:
                    trace.add(task, alpha, proc, now, finish)
                if obs is not None:
                    obs.emit(SLICE, now, task=task, alpha=alpha, proc=proc,
                             end=finish)
            for alpha, c in enumerate(counts_this_round):
                free[alpha] -= c
            if obs is not None:
                obs.emit(DECISION, now, n=len(chosen))
                if len(events) > heap_peak:
                    heap_peak = len(events)

        if obs is not None:
            obs.emit(
                SAMPLE, now,
                ready=[scheduler.pending(a) for a in range(k)],
                free=list(free),
            )

        # `completed < n` guarantees unfinished work, so an empty event
        # heap here means the scheduler left ready tasks unassigned.
        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: {n_ready} ready, "
                f"{n - completed} unfinished, nothing running"
            )

        # ---- advance to the next completion instant ----
        now = events[0][0]
        while events and events[0][0] == now:
            _, _, task, proc = heappop(events)
            state[task] = 3
            completed += 1
            alpha = types[task]
            free[alpha] += 1
            free_procs[alpha].append(proc)
            makespan = now
            if obs is not None:
                obs.emit(COMPLETE, now, task=task, alpha=alpha, proc=proc)
            scheduler.task_finished(task, now)
            for ei in range(child_ptr[task], child_ptr[task + 1]):
                ci = child_idx[ei]
                left = indeg[ci] - 1
                indeg[ci] = left
                if left == 0:
                    state[ci] = 1
                    n_ready += 1
                    scheduler.task_ready(ci, now, work[ci])

    if obs is not None:
        obs.add_time("phase.engine_loop", perf_counter() - _t_loop)
        obs.inc("engine.runs")
        obs.inc("engine.tasks", n)
        obs.inc("engine.decisions", decisions)
        obs.inc("engine.events_pushed", seq)
        obs.observe("engine.heap_peak", heap_peak)

    return ScheduleResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        preemptive=False,
        trace=trace,
        decisions=decisions,
    )
