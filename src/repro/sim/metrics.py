"""Utilization metrics over execution traces.

The paper's core argument is that minimizing completion time on an FHS
is really a *utilization balancing* problem: a schedule is fast exactly
when it keeps every resource type busy.  These helpers quantify that
for a recorded trace — the examples use them to show MQB's balanced
profile next to KGreedy's serialized one.

All three metrics are vectorized over the trace's columnar view
(:meth:`~repro.sim.trace.ScheduleTrace.as_columns`): busy time is one
``np.add.at`` scatter and the binned profile is a clipped
segments-by-bins overlap matrix scattered by type, with no per-segment
Python loop.  Killed segments (fault-aware runs) count as busy time —
they occupied the processor even though their work was lost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["type_busy_time", "average_utilization", "utilization_profile"]


def type_busy_time(trace: ScheduleTrace, num_types: int) -> np.ndarray:
    """Total processor-busy time per resource type, shape ``(K,)``."""
    cols = trace.as_columns()
    alpha = cols["alpha"]
    bad = (alpha < 0) | (alpha >= num_types)
    if bad.any():
        offender = int(alpha[np.argmax(bad)])
        raise ValidationError(
            f"segment type {offender} out of range for K={num_types}"
        )
    out = np.zeros(num_types, dtype=np.float64)
    np.add.at(out, alpha, cols["end"] - cols["start"])
    return out


def average_utilization(
    trace: ScheduleTrace, resources: ResourceConfig, makespan: float | None = None
) -> np.ndarray:
    """Per-type average utilization over the schedule, in ``[0, 1]``.

    ``busy_time / (P_alpha * makespan)`` per type.  With ``makespan``
    omitted, the trace's own makespan is used.
    """
    t_end = trace.makespan() if makespan is None else float(makespan)
    if t_end <= 0:
        raise ValidationError("schedule has zero length")
    busy = type_busy_time(trace, resources.num_types)
    return busy / (resources.as_array() * t_end)


def utilization_profile(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    n_bins: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Time-binned per-type utilization, for timeline plots.

    Returns ``(edges, profile)`` where ``edges`` has ``n_bins + 1`` bin
    boundaries spanning ``[0, makespan]`` and ``profile[alpha, b]`` is
    the fraction of type-``alpha`` capacity busy during bin ``b``.
    """
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    t_end = trace.makespan()
    if t_end <= 0:
        raise ValidationError("schedule has zero length")
    edges = np.linspace(0.0, t_end, n_bins + 1)
    width = edges[1] - edges[0]
    cols = trace.as_columns()
    start, end, alpha = cols["start"], cols["end"], cols["alpha"]
    # Overlap of every segment with every bin, clipped at zero:
    # (n_segments, n_bins), then scattered onto the segment's type row.
    overlap = np.minimum(end[:, None], edges[None, 1:]) - np.maximum(
        start[:, None], edges[None, :-1]
    )
    np.clip(overlap, 0.0, None, out=overlap)
    profile = np.zeros((resources.num_types, n_bins), dtype=np.float64)
    np.add.at(profile, alpha, overlap)
    capacity = resources.as_array()[:, None] * width
    return edges, profile / capacity
