"""Utilization metrics over execution traces.

The paper's core argument is that minimizing completion time on an FHS
is really a *utilization balancing* problem: a schedule is fast exactly
when it keeps every resource type busy.  These helpers quantify that
for a recorded trace — the examples use them to show MQB's balanced
profile next to KGreedy's serialized one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["type_busy_time", "average_utilization", "utilization_profile"]


def type_busy_time(trace: ScheduleTrace, num_types: int) -> np.ndarray:
    """Total processor-busy time per resource type, shape ``(K,)``."""
    out = np.zeros(num_types, dtype=np.float64)
    for seg in trace:
        if not 0 <= seg.alpha < num_types:
            raise ValidationError(
                f"segment type {seg.alpha} out of range for K={num_types}"
            )
        out[seg.alpha] += seg.duration
    return out


def average_utilization(
    trace: ScheduleTrace, resources: ResourceConfig, makespan: float | None = None
) -> np.ndarray:
    """Per-type average utilization over the schedule, in ``[0, 1]``.

    ``busy_time / (P_alpha * makespan)`` per type.  With ``makespan``
    omitted, the trace's own makespan is used.
    """
    t_end = trace.makespan() if makespan is None else float(makespan)
    if t_end <= 0:
        raise ValidationError("schedule has zero length")
    busy = type_busy_time(trace, resources.num_types)
    return busy / (resources.as_array() * t_end)


def utilization_profile(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    n_bins: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Time-binned per-type utilization, for timeline plots.

    Returns ``(edges, profile)`` where ``edges`` has ``n_bins + 1`` bin
    boundaries spanning ``[0, makespan]`` and ``profile[alpha, b]`` is
    the fraction of type-``alpha`` capacity busy during bin ``b``.
    """
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    t_end = trace.makespan()
    if t_end <= 0:
        raise ValidationError("schedule has zero length")
    edges = np.linspace(0.0, t_end, n_bins + 1)
    width = edges[1] - edges[0]
    profile = np.zeros((resources.num_types, n_bins), dtype=np.float64)
    for seg in trace:
        lo = int(np.clip(seg.start // width, 0, n_bins - 1))
        hi = int(np.clip(-(-seg.end // width), 1, n_bins))
        for b in range(lo, hi):
            overlap = min(seg.end, edges[b + 1]) - max(seg.start, edges[b])
            if overlap > 0:
                profile[seg.alpha, b] += overlap
    capacity = resources.as_array()[:, None] * width
    return edges, profile / capacity
