"""Discrete-time simulation of K-DAG execution on an FHS.

The paper evaluates its algorithms with a discrete-time simulator (the
authors' was written in C#); this package is the Python equivalent:

* :func:`~repro.sim.engine.simulate` — non-preemptive, event-driven:
  scheduling decisions happen when processors go idle, and a started
  task runs to completion on its processor.
* :func:`~repro.sim.preemptive.simulate_preemptive` — quantum-stepped:
  at every quantum boundary all running tasks rejoin the candidate pool
  and the scheduler reassigns every processor; reallocation is free,
  matching the paper's assumption.
* :func:`~repro.sim.batch.simulate_batch` — the non-preemptive engine
  batched: N same-cell instances advance in lockstep through one
  vectorized event loop, bit-identical per instance to
  :func:`~repro.sim.engine.simulate`.
* :func:`~repro.sim.validate.validate_schedule` — legality checker used
  by the test suite: type matching, processor exclusivity, precedence,
  and work conservation.
"""

from repro.sim.batch import batch_supported, simulate_batch, simulate_batch_grid
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.io import load_run, save_run
from repro.sim.metrics import (
    average_utilization,
    type_busy_time,
    utilization_profile,
)
from repro.sim.preemptive import simulate_preemptive
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace, Segment
from repro.sim.validate import validate_schedule

__all__ = [
    "simulate",
    "simulate_batch",
    "simulate_batch_grid",
    "batch_supported",
    "simulate_preemptive",
    "ScheduleResult",
    "ScheduleTrace",
    "Segment",
    "validate_schedule",
    "type_busy_time",
    "average_utilization",
    "utilization_profile",
    "render_gantt",
    "save_run",
    "load_run",
]
