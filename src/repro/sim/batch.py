"""Batched lockstep simulation: many instances, one vectorized loop.

The scalar engine (:mod:`repro.sim.engine`) advances one instance per
Python event loop.  A paired-comparison sweep runs hundreds of
(instance, scheduler) pairs whose event loops are structurally
identical — only the numbers differ — so this module runs N of them
*in lockstep*: per round, every active row advances to its own next
completion instant, and each phase of the round (selection, dispatch,
completion, readiness propagation) is a handful of whole-batch array
operations instead of N interpreted loops.

Columnar state (one row per (job, system, scheduler) run):

* node tables — concatenated per-instance task arrays (``types``,
  ``work``, ``indeg``, packed priority keys) indexed by *global* task
  id, with a CSR child adjacency whose indices are global too;
* running state — ``(R, P_total)`` matrices of finish times, event
  push sequences and task ids, one column per processor (``+inf``
  marks an idle column), so "advance to the next completion" is a
  row-wise ``min``;
* per-type free-processor LIFO stacks — ``(R*K, P_max)`` arrays with
  stack pointers, replicating the scalar engine's processor identity
  assignment exactly;
* ready pools — for static-priority schedulers one *globally sorted*
  int64 array of packed ``(row, type, priority rank, FIFO seq, task)``
  keys, so per-round selection of every row's best ready tasks is a
  single ``searchsorted`` + slice plan; for MQB per-(row, type) pool
  arrays scored by the balance objective.

Bit-identity, not just statistical equivalence, with
:func:`repro.sim.engine.simulate` is the correctness contract: the
same floating-point operations run in the same order per row (task
start times, MQB's carry projection arithmetic, tie-breaks, processor
ids, event orderings), asserted per instance across schedulers and
cells by ``tests/sim/test_batch_identity.py``.

Fallback contract: rows the batch engine does not support — unknown
scheduler families, MQB on non-integer work amounts (where float
summation *order* in the balance bookkeeping could diverge), or
degenerate batches whose packed keys would overflow 62 bits — are
simulated by the scalar engine instead, and counted on the
``batch.fallback`` telemetry counter.  The batch path never silently
differs: it either reproduces the scalar engine exactly or delegates
to it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import native as _native
from repro.core.kdag import KDag
from repro.errors import SchedulingError
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import QueueScheduler, Scheduler
from repro.schedulers.kgreedy import KGreedy
from repro.schedulers.mqb import MQB
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["simulate_batch", "simulate_batch_grid", "batch_supported"]

_BIG_SEQ = np.iinfo(np.int64).max


class _BatchUnsupported(Exception):
    """Internal: this row set cannot run on the batch engine."""


def _excl_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


class _Row:
    """One (job, resources) run plus its scheduler-prepared state."""

    __slots__ = ("job", "resources", "name", "keys")

    def __init__(
        self,
        job: KDag,
        resources: ResourceConfig,
        name: str,
        keys: np.ndarray | None = None,
    ) -> None:
        self.job = job
        self.resources = resources
        self.name = name
        self.keys = keys


class _LockstepBase:
    """Shared round machinery: nodes, processors, events, completions."""

    def __init__(self, rows: Sequence[_Row], record_trace: bool) -> None:
        self.rows = list(rows)
        R = self.R = len(self.rows)
        K = self.K = max(r.job.num_types for r in self.rows)
        self.RK = R * K
        self.record_trace = record_trace

        n_arr = np.array([r.job.n_tasks for r in self.rows], dtype=np.int64)
        self.n_arr = n_arr
        self.n_max = int(n_arr.max())
        self.node_off = np.zeros(R + 1, dtype=np.int64)
        np.cumsum(n_arr, out=self.node_off[1:])
        total = self.total_nodes = int(self.node_off[-1])

        self.types_g = np.empty(total, dtype=np.int64)
        self.work_g = np.empty(total, dtype=np.float64)
        self.indeg_g = np.empty(total, dtype=np.int64)
        self.node_row = np.repeat(np.arange(R, dtype=np.int64), n_arr)
        self.child_ptr_g = np.zeros(total + 1, dtype=np.int64)
        child_parts: list[np.ndarray] = []
        edge_off = 0
        for ri, row in enumerate(self.rows):
            job = row.job
            off = self.node_off[ri]
            self.types_g[off : off + job.n_tasks] = job.types
            self.work_g[off : off + job.n_tasks] = job.work
            self.indeg_g[off : off + job.n_tasks] = job.in_degrees()
            self.child_ptr_g[off + 1 : off + job.n_tasks + 1] = (
                job.child_ptr[1:] + edge_off
            )
            child_parts.append(job.child_idx + off)
            edge_off += job.n_edges
        self.child_idx_g = (
            np.concatenate(child_parts) if child_parts else np.empty(0, np.int64)
        )
        self.posbuf = np.full(total, -1, dtype=np.int64)

        # Processor state.  Column c of the running matrices is
        # processor (c - proc_base[row, alpha]) of its type; the free
        # stacks replicate the scalar engine's LIFO pools, including
        # the initial [P-1 .. 0] fill (so processor 0 pops first).
        counts2 = np.zeros((R, K), dtype=np.int64)
        for ri, row in enumerate(self.rows):
            counts2[ri, : row.resources.num_types] = row.resources.counts
        self.p_max = int(counts2.max())
        self.proc_base2 = np.zeros(R * K, dtype=np.int64)
        cum = np.cumsum(counts2, axis=1)
        self.proc_base2.reshape(R, K)[:, 1:] = cum[:, :-1]
        self.p_total_max = int(cum[:, -1].max())
        self.free_flat = counts2.reshape(-1).copy()
        self.free2 = self.free_flat.reshape(R, K)
        self.sp_flat = counts2.reshape(-1).copy()
        self.stack2 = np.zeros((R * K, max(self.p_max, 1)), dtype=np.int64)
        ramp = np.arange(max(self.p_max, 1), dtype=np.int64)
        self.stack2[:, :] = counts2.reshape(-1)[:, None] - 1 - ramp

        self.fin = np.full((R, self.p_total_max), np.inf, dtype=np.float64)
        self.pseqb = np.zeros((R, self.p_total_max), dtype=np.int64)
        self.rtaskb = np.zeros((R, self.p_total_max), dtype=np.int64)

        self.now = np.zeros(R, dtype=np.float64)
        self.makespan = np.zeros(R, dtype=np.float64)
        self.completed = np.zeros(R, dtype=np.int64)
        self.decisions = np.zeros(R, dtype=np.int64)
        self.seq_counter = np.zeros(R, dtype=np.int64)
        self.pseq_counter = np.zeros(R, dtype=np.int64)
        self._pseq_stride = self.n_max + 1
        self._ncomp = 0

        self._tr: list[list[np.ndarray]] = [[] for _ in range(6)]

    # -- hooks ----------------------------------------------------------
    def _select(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_ready(
        self, tasks_g: np.ndarray, rows: np.ndarray, seqs: np.ndarray
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared machinery -----------------------------------------------
    def _seed_sources(self) -> None:
        """Announce every row's source tasks in ascending-id order."""
        parts_t, parts_r, parts_s = [], [], []
        for ri, row in enumerate(self.rows):
            src = row.job.sources() + self.node_off[ri]
            parts_t.append(src)
            parts_r.append(np.full(len(src), ri, dtype=np.int64))
            parts_s.append(np.arange(len(src), dtype=np.int64))
            self.seq_counter[ri] = len(src)
        self._on_ready(
            np.concatenate(parts_t),
            np.concatenate(parts_r),
            np.concatenate(parts_s),
        )

    def _trace_add(
        self,
        rows: np.ndarray,
        alphas: np.ndarray,
        tasks_g: np.ndarray,
        procs: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
    ) -> None:
        tr = self._tr
        tr[0].append(np.asarray(rows).reshape(-1).copy())
        tr[1].append(np.asarray(tasks_g).reshape(-1).copy())
        tr[2].append(np.asarray(alphas).reshape(-1).copy())
        tr[3].append(np.asarray(procs).reshape(-1).copy())
        tr[4].append(np.asarray(start, dtype=np.float64).reshape(-1).copy())
        tr[5].append(np.asarray(finish, dtype=np.float64).reshape(-1).copy())

    def _stall(self, act: np.ndarray, finite: np.ndarray) -> None:
        ri = int(np.flatnonzero(act & ~finite)[0])
        raise SchedulingError(
            f"{self.rows[ri].name} stalled at t={self.now[ri]}: "
            f"{int(self.n_arr[ri] - self.completed[ri])} unfinished, "
            "nothing running"
        )

    def _complete(self) -> None:
        """Advance every active row to its next completion instant."""
        fin = self.fin
        now_next = fin.min(axis=1)
        act = self.completed < self.n_arr
        finite = now_next != np.inf
        live = act & finite
        nlive = int(live.sum())
        if nlive != int(act.sum()):
            self._stall(act, finite)
        if nlive == 0:
            return
        # A -1 sentinel keeps done rows (all-inf columns) out of the
        # completion mask: inf == inf would select every idle column.
        nn = np.where(live, now_next, -1.0)
        crow, ccol = np.nonzero(fin == nn[:, None])
        # Pop order: (row, event push seq) — the scalar heap's order
        # among simultaneous completions.
        order = np.argsort(crow * self._pseq_stride + self.pseqb[crow, ccol])
        crow = crow[order]
        ccol = ccol[order]
        tasks_g = self.rtaskb[crow, ccol]
        alphas = self.types_g[tasks_g]
        fin[crow, ccol] = np.inf
        t = nn[crow]
        self.now[crow] = t
        self.makespan[crow] = t
        self.completed += np.bincount(crow, minlength=self.R)
        self._ncomp += len(crow)

        # Return processors to their LIFO stacks in pop order.
        g = crow * self.K + alphas
        procs = ccol - self.proc_base2[g]
        ord2 = np.argsort(g, kind="stable")
        g2 = g[ord2]
        cnt_g = np.bincount(g2, minlength=self.RK)
        off = np.arange(len(g2), dtype=np.int64) - _excl_cumsum(cnt_g)[g2]
        self.stack2[g2, self.sp_flat[g2] + off] = procs[ord2]
        self.sp_flat += cnt_g
        self.free_flat += cnt_g

        # Propagate readiness along the children of completed tasks,
        # scanning edges in pop order (the order the scalar engine
        # decrements them in — it fixes new tasks' FIFO seq ranks).
        cptr = self.child_ptr_g
        lo = cptr[tasks_g]
        ccounts = cptr[tasks_g + 1] - lo
        tot = int(ccounts.sum())
        if tot == 0:
            return
        epos = np.arange(tot, dtype=np.int64)
        pos = epos + np.repeat(lo - _excl_cumsum(ccounts), ccounts)
        children = self.child_idx_g[pos]
        np.subtract.at(self.indeg_g, children, 1)
        newly = self.indeg_g[children] == 0
        if not newly.any():
            return
        # A task is ready at its *last* decrementing edge: keep, per
        # child, the occurrence whose scan position is the per-child
        # max (posbuf entries are reset first — a child may be touched
        # across several rounds).  This both dedups multi-parent
        # children and fixes their announcement positions.
        self.posbuf[children] = -1
        np.maximum.at(self.posbuf, children, epos)
        cand = children[newly]
        cand = cand[self.posbuf[cand] == epos[newly]]
        rows_c = self.node_row[cand]
        # cand is in global scan order; a stable row sort yields the
        # (row, announcement) order that assigns FIFO seqs.
        ord3 = np.argsort(rows_c, kind="stable")
        cand = cand[ord3]
        rows_c = rows_c[ord3]
        cnt_r = np.bincount(rows_c, minlength=self.R)
        within = np.arange(len(cand), dtype=np.int64) - _excl_cumsum(cnt_r)[rows_c]
        seqs = self.seq_counter[rows_c] + within
        self.seq_counter += cnt_r
        self._on_ready(cand, rows_c, seqs)

    def run(self) -> int:
        """Drive all rows to completion; return the lockstep round count."""
        rounds = 0
        while self._ncomp < self.total_nodes:
            self._select()
            self._complete()
            rounds += 1
        return rounds

    def results(self) -> list[ScheduleResult]:
        traces = self._build_traces()
        out = []
        for ri, row in enumerate(self.rows):
            out.append(
                ScheduleResult(
                    makespan=float(self.makespan[ri]),
                    scheduler=row.name,
                    job=row.job,
                    resources=row.resources,
                    preemptive=False,
                    trace=traces[ri],
                    decisions=int(self.decisions[ri]),
                )
            )
        return out

    def _build_traces(self) -> list[ScheduleTrace | None]:
        if not self.record_trace:
            return [None] * self.R
        if self._tr[0]:
            rows = np.concatenate(self._tr[0])
            cols = [np.concatenate(p) for p in self._tr[1:]]
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = [np.empty(0) for _ in range(5)]
        # Stable by row keeps each row's (round, dispatch order), which
        # is exactly the scalar trace's append order.
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        tasks, alphas, procs, starts, ends = (c[order] for c in cols)
        bounds = np.searchsorted(rows, np.arange(self.R + 1))
        traces: list[ScheduleTrace | None] = []
        for ri in range(self.R):
            tr = ScheduleTrace()
            off = self.node_off[ri]
            for j in range(int(bounds[ri]), int(bounds[ri + 1])):
                tr.add(
                    int(tasks[j] - off),
                    int(alphas[j]),
                    int(procs[j]),
                    float(starts[j]),
                    float(ends[j]),
                )
            traces.append(tr)
        return traces


class _StaticLockstep(_LockstepBase):
    """Static-priority rows: KGreedy and every ``QueueScheduler``.

    The ready structure is one globally sorted int64 array of packed
    keys ``(row*K + alpha | priority rank | FIFO seq | global task)``;
    because the scalar per-type heaps pop in exact ``(key, seq)``
    order, slicing the first ``min(free, pending)`` entries of each
    (row, type) segment reproduces the scalar selection *and* its
    dispatch order (types ascending, priority order within a type).
    The static part of every task's key is precomputed, so announcing
    a ready task is one gather-add plus a sorted merge.
    """

    def __init__(self, rows: Sequence[_Row], record_trace: bool) -> None:
        super().__init__(rows, record_trace)
        tb_task = max(int(self.total_nodes).bit_length(), 1)
        tb_seq = max(int(self.n_max).bit_length(), 1)
        tb_rank = tb_seq
        tb_group = max(int(self.RK).bit_length(), 1)
        if tb_task + tb_seq + tb_rank + tb_group > 62:
            raise _BatchUnsupported("packed ready keys exceed 62 bits")
        self.tb_task = tb_task
        self._task_mask = (1 << tb_task) - 1
        self._gbounds = np.arange(self.RK + 1, dtype=np.int64) << (
            tb_rank + tb_seq + tb_task
        )
        self._grange = np.arange(self.RK, dtype=np.int64)
        # Packed static key part per global task: group | rank | 0 | task.
        # Dense per-row priority ranks stand in for the float keys —
        # the packed order only needs the keys' *order*.
        rank_g = np.empty(self.total_nodes, dtype=np.int64)
        for ri, row in enumerate(self.rows):
            keys = row.keys
            assert keys is not None
            off = self.node_off[ri]
            uniq = np.unique(keys)
            rank_g[off : off + len(keys)] = np.searchsorted(uniq, keys)
        group_g = self.node_row * self.K + self.types_g
        self.pack_base = (
            ((group_g << tb_rank | rank_g) << tb_seq) << tb_task
        ) | np.arange(self.total_nodes, dtype=np.int64)
        self.ready = np.empty(0, dtype=np.int64)
        self._seed_sources()

    def _on_ready(
        self, tasks_g: np.ndarray, rows: np.ndarray, seqs: np.ndarray
    ) -> None:
        packed = self.pack_base[tasks_g] + (seqs << self.tb_task)
        packed.sort()
        ready = self.ready
        idx = np.searchsorted(ready, packed) + np.arange(
            len(packed), dtype=np.int64
        )
        out = np.empty(ready.size + packed.size, dtype=np.int64)
        out[idx] = packed
        keep = np.ones(out.size, dtype=bool)
        keep[idx] = False
        out[keep] = ready
        self.ready = out

    def _select(self) -> None:
        ready = self.ready
        if ready.size == 0:
            return
        bounds = np.searchsorted(ready, self._gbounds)
        lo = bounds[:-1]
        ntake = np.minimum(bounds[1:] - lo, self.free_flat)
        total = int(ntake.sum())
        if total == 0:
            return
        g_rep = np.repeat(self._grange, ntake)
        ar = np.arange(total, dtype=np.int64)
        o = ar - _excl_cumsum(ntake)[g_rep]
        sel_pos = lo[g_rep] + o
        sel = ready[sel_pos]
        tasks_g = sel & self._task_mask
        rows = g_rep // self.K
        procs = self.stack2[g_rep, self.sp_flat[g_rep] - 1 - o]
        self.sp_flat -= ntake
        self.free_flat -= ntake
        cnt_r = np.bincount(rows, minlength=self.R)
        pseq = self.pseq_counter[rows] + (ar - _excl_cumsum(cnt_r)[rows])
        self.pseq_counter += cnt_r
        self.decisions += cnt_r > 0
        finish = self.now[rows] + self.work_g[tasks_g]
        col = self.proc_base2[g_rep] + procs
        self.fin[rows, col] = finish
        self.pseqb[rows, col] = pseq
        self.rtaskb[rows, col] = tasks_g
        if self.record_trace:
            self._trace_add(
                rows, g_rep - rows * self.K, tasks_g, procs,
                self.now[rows], finish,
            )
        keep = np.ones(ready.size, dtype=bool)
        keep[sel_pos] = False
        self.ready = ready[keep]


class _MQBLockstep(_LockstepBase):
    """MQB-family rows (one shared balance mode / carry / K).

    Selection replicates the scalar interleaved decision round in
    lockstep: per iteration every active row commits one (pass, type)
    step — its next actionable type in the scalar sweep's cyclic
    order — with all rows' pools scored in one flat computation
    (balance vectors, then a single segmented lexsort whose
    most-significant key is the segment id).  A lone remaining row
    drains through a scalar fast path over its pool slice.  Both
    paths commit exactly the scalar engine's pick (all comparisons
    are exact), carrying the projected descendant inflow ``extra``
    forward per row exactly as the scalar round does.
    """

    def __init__(
        self,
        rows: Sequence[_Row],
        record_trace: bool,
        d_rows: Sequence[np.ndarray],
        balance_mode: str,
        carry: bool,
        kernel=None,
    ) -> None:
        super().__init__(rows, record_trace)
        ks = {r.job.num_types for r in rows} | {r.resources.num_types for r in rows}
        if ks != {self.K}:
            raise _BatchUnsupported("MQB batch requires a uniform K")
        self.balance = balance_mode
        self.carry = carry
        self.d_g = np.empty((self.total_nodes, self.K), dtype=np.float64)
        self.parr = np.empty((self.R, self.K), dtype=np.float64)
        for ri, (row, d) in enumerate(zip(self.rows, d_rows)):
            off = self.node_off[ri]
            self.d_g[off : off + row.job.n_tasks] = d
            self.parr[ri] = row.resources.as_array().astype(np.float64)
        self.l = np.zeros((self.R, self.K), dtype=np.float64)
        self.l_flat = self.l.reshape(-1)
        self.extra = np.zeros((self.R, self.K), dtype=np.float64)
        M = 1
        for row in self.rows:
            M = max(M, int(np.bincount(row.job.types, minlength=self.K).max()))
        self.M = M
        self.pool_task = np.zeros(self.RK * M, dtype=np.int64)
        self.pool_seq = np.zeros(self.RK * M, dtype=np.int64)
        self.pool_len_flat = np.zeros(self.RK, dtype=np.int64)
        self.pool_len = self.pool_len_flat.reshape(self.R, self.K)
        self._arange_k = np.arange(self.K, dtype=np.int64)
        # Native kernel dispatch (see repro.native): the pick paths call
        # one C routine per commit batch instead of building/lexsorting
        # the score matrix in numpy.  All buffers it touches are
        # allocated above and never reallocated, so the raw pointers are
        # cached once; picks are bit-identical by the kernel's contract.
        self.native_picks = 0
        self.kernel = kernel
        if kernel is not None:
            from repro import native as _native

            self._kcommit = kernel.pick_commit
            self._mode_code = _native.MODE_CODES[balance_mode]
            self._carry_i = 1 if carry else 0
            self._kp = (
                self.d_g.ctypes.data,
                self.work_g.ctypes.data,
                self.pool_task.ctypes.data,
                self.pool_seq.ctypes.data,
                self.pool_len_flat.ctypes.data,
                self.l.ctypes.data,
                self.extra.ctypes.data,
                self.parr.ctypes.data,
            )
            self._kout = np.empty(self.R, dtype=np.int64)
            self._kout_ptr = self._kout.ctypes.data
            self._kpair = np.empty(2, dtype=np.int64)
            self._kpair_ptr = self._kpair.ctypes.data
        self._seed_sources()

    def _on_ready(
        self, tasks_g: np.ndarray, rows: np.ndarray, seqs: np.ndarray
    ) -> None:
        alphas = self.types_g[tasks_g]
        g = rows * self.K + alphas
        ord_ = np.argsort(g, kind="stable")
        g2 = g[ord_]
        t2 = tasks_g[ord_]
        cnt = np.bincount(g2, minlength=self.RK)
        within = np.arange(len(g2), dtype=np.int64) - _excl_cumsum(cnt)[g2]
        idx = g2 * self.M + self.pool_len_flat[g2] + within
        self.pool_task[idx] = t2
        self.pool_seq[idx] = seqs[ord_]
        self.pool_len_flat += cnt
        # Ready-queue loads; task works are integral (checked at batch
        # entry), so accumulation order cannot perturb the values.
        np.add.at(self.l_flat, g2, self.work_g[t2])

    # -- selection ------------------------------------------------------
    def _select(self) -> None:
        # The scalar assign() sweeps types 0..K-1 repeatedly, one
        # commit per actionable type per pass, until a full pass makes
        # no progress.  Per row that visits its actionable types in
        # ascending *cyclic* order — and since a commit on one type
        # never makes another type actionable, "next actionable type
        # cyclically after the last committed one" reproduces the
        # scalar commit sequence exactly.  The batch loop therefore
        # advances every active row by one commit step per iteration
        # (rows at different types mix in the same vectorized call); a
        # lone remaining row drains through the scalar fast path.
        mask2 = (self.free2 > 0) & (self.pool_len > 0)
        act = mask2.any(axis=1)
        if not act.any():
            return
        self.decisions += act
        self.extra[:] = 0.0
        ptr = np.zeros(self.R, dtype=np.int64)
        while True:
            rows = np.flatnonzero(act)
            if rows.size == 0:
                return
            if rows.size == 1:
                r = int(rows[0])
                m = mask2[r]
                p = int(ptr[r])
                while True:
                    nz = np.flatnonzero(m)
                    if nz.size == 0:
                        return
                    ge = nz[nz >= p]
                    alpha = int(ge[0]) if ge.size else int(nz[0])
                    self._step_one(r, alpha)
                    m[alpha] = bool(
                        self.free2[r, alpha] > 0 and self.pool_len[r, alpha] > 0
                    )
                    p = alpha + 1
            sub = mask2[rows]
            ge = sub & (self._arange_k[None, :] >= ptr[rows, None])
            has_ge = ge.any(axis=1)
            alphas = np.where(
                has_ge, np.argmax(ge, axis=1), np.argmax(sub, axis=1)
            )
            ptr[rows] = alphas + 1
            take_all = self.pool_len[rows, alphas] <= self.free2[rows, alphas]
            pr = rows[~take_all]
            pa = alphas[~take_all]
            tr = rows[take_all]
            ta = alphas[take_all]
            if pr.size == 1:
                self._pick_one(int(pr[0]), int(pa[0]))
            elif pr.size:
                self._pick_multi(pr, pa)
            if tr.size == 1:
                self._take_all_one(int(tr[0]), int(ta[0]))
            elif tr.size:
                self._take_all_multi(tr, ta)
            mask2[rows, alphas] = (self.free2[rows, alphas] > 0) & (
                self.pool_len[rows, alphas] > 0
            )
            act[rows] = mask2[rows].any(axis=1)

    # -- single-row fast paths ------------------------------------------
    def _step_one(self, r: int, alpha: int) -> None:
        if self.pool_len[r, alpha] <= self.free2[r, alpha]:
            self._take_all_one(r, alpha)
        else:
            self._pick_one(r, alpha)

    def _pick_one(self, r: int, alpha: int) -> None:
        g = r * self.K + alpha
        if self.kernel is not None:
            self._kpair[0] = r
            self._kpair[1] = alpha
            rc = self._kcommit(
                *self._kp, self._kpair_ptr, self._kpair_ptr + 8,
                1, self.K, self.M, self._mode_code, self._carry_i,
                self._kout_ptr,
            )
            if rc == 0:
                self.native_picks += 1
                task = int(self._kout[0])
                self.free2[r, alpha] -= 1
                self._dispatch_one(r, alpha, g, task)
                return
        b = int(self.pool_len_flat[g])
        base = g * self.M
        tasks_f = self.pool_task[base : base + b]
        seq_f = self.pool_seq[base : base + b]
        rmat = self.d_g[tasks_f] + (self.l[r] + self.extra[r])
        rmat[:, alpha] -= self.work_g[tasks_f]
        rmat /= self.parr[r]
        # Same comparison-only lexsort as the scalar MQB._pick_best:
        # most-significant key last, earliest FIFO seq wins ties.
        neg_seq = -seq_f
        if self.balance == "lex":
            rmat.sort(axis=1)
            keys = (
                neg_seq,
                *(rmat[:, j] for j in range(self.K - 1, 0, -1)),
                rmat[:, 0],
            )
        elif self.balance == "min":
            keys = (neg_seq, rmat.min(axis=1))
        else:
            keys = (neg_seq, rmat.sum(axis=1))
        slot = int(np.lexsort(keys)[-1])
        task = int(tasks_f[slot])
        if self.carry:
            self.extra[r] += self.d_g[task]
        self.l[r, alpha] -= self.work_g[task]
        last = b - 1
        tasks_f[slot] = tasks_f[last]
        seq_f[slot] = seq_f[last]
        self.pool_len_flat[g] = last
        self.free2[r, alpha] -= 1
        self._dispatch_one(r, alpha, g, task)

    def _take_all_one(self, r: int, alpha: int) -> None:
        g = r * self.K + alpha
        b = int(self.pool_len_flat[g])
        base = g * self.M
        # Commit in FIFO ready order (the scalar pool's insertion
        # order, recovered from the seq tags).
        order = np.argsort(self.pool_seq[base : base + b])
        tasks_s = self.pool_task[base : base + b][order]
        if self.carry:
            extra_r = self.extra[r]
            for t in tasks_s.tolist():  # scalar accumulation order
                extra_r += self.d_g[t]
        self.l[r, alpha] -= self.work_g[tasks_s].sum()
        self.pool_len_flat[g] = 0
        self.free2[r, alpha] -= b
        sp = int(self.sp_flat[g])
        procs = self.stack2[g, sp - b : sp][::-1].copy()
        self.sp_flat[g] = sp - b
        pq = int(self.pseq_counter[r])
        pseq = np.arange(pq, pq + b, dtype=np.int64)
        self.pseq_counter[r] = pq + b
        finish = self.now[r] + self.work_g[tasks_s]
        col = self.proc_base2[g] + procs
        self.fin[r, col] = finish
        self.pseqb[r, col] = pseq
        self.rtaskb[r, col] = tasks_s
        if self.record_trace:
            self._trace_add(
                np.full(b, r), np.full(b, alpha), tasks_s, procs,
                np.full(b, self.now[r]), finish,
            )

    def _dispatch_one(self, r: int, alpha: int, g: int, task: int) -> None:
        sp = int(self.sp_flat[g]) - 1
        proc = int(self.stack2[g, sp])
        self.sp_flat[g] = sp
        pseq = int(self.pseq_counter[r])
        self.pseq_counter[r] = pseq + 1
        finish = self.now[r] + self.work_g[task]
        col = self.proc_base2[g] + proc
        self.fin[r, col] = finish
        self.pseqb[r, col] = pseq
        self.rtaskb[r, col] = task
        if self.record_trace:
            self._trace_add(
                np.array([r]), np.array([alpha]),
                np.array([task]), np.array([proc]),
                np.array([self.now[r]]), np.array([finish]),
            )

    # -- multi-row vectorized paths (each row appears once per call) ----
    def _pick_multi_native(
        self, rows: np.ndarray, alphas: np.ndarray, g: np.ndarray
    ) -> bool:
        """One C call scores + commits every (row, alpha) pair's pick.

        The kernel walks the pairs sequentially, which is equivalent to
        the vectorized formulation because each row appears at most
        once per call — no pair reads another pair's ``l``/``extra``/
        pool updates.  Python keeps the vectorized dispatch tail
        (processor stacks, finish times, trace), which is untouched by
        the backend choice.  Returns False to fall through to the
        numpy path if the kernel rejects the arguments.
        """
        n = len(rows)
        rows_c = np.ascontiguousarray(rows, dtype=np.int64)
        alphas_c = np.ascontiguousarray(alphas, dtype=np.int64)
        rc = self._kcommit(
            *self._kp, rows_c.ctypes.data, alphas_c.ctypes.data,
            n, self.K, self.M, self._mode_code, self._carry_i,
            self._kout_ptr,
        )
        if rc != 0:
            return False
        self.native_picks += n
        wtasks = self._kout[:n]
        self.free2[rows, alphas] -= 1
        sp = self.sp_flat[g] - 1
        procs = self.stack2[g, sp]
        self.sp_flat[g] = sp
        pseq = self.pseq_counter[rows]
        self.pseq_counter[rows] = pseq + 1
        finish = self.now[rows] + self.work_g[wtasks]
        col = self.proc_base2[g] + procs
        self.fin[rows, col] = finish
        self.pseqb[rows, col] = pseq
        self.rtaskb[rows, col] = wtasks
        if self.record_trace:
            self._trace_add(rows, alphas, wtasks, procs, self.now[rows], finish)
        return True

    def _pick_multi(self, rows: np.ndarray, alphas: np.ndarray) -> None:
        g = rows * self.K + alphas
        if self.kernel is not None and self._pick_multi_native(
            rows, alphas, g
        ):
            return
        b = self.pool_len_flat[g]
        seg_starts = _excl_cumsum(b)
        nflat = int(b.sum())
        flat_ar = np.arange(nflat, dtype=np.int64)
        pos = flat_ar + np.repeat(g * self.M - seg_starts, b)
        srows = np.repeat(np.arange(len(rows), dtype=np.int64), b)
        tasks_f = self.pool_task[pos]
        seq_f = self.pool_seq[pos]
        # The balance vector per candidate, with the scalar operation
        # order: (l + extra) computed once per row, broadcast-added to
        # the descendant rows, own work removed from the own-type
        # entry, divided by the processor counts.
        s = self.l[rows] + self.extra[rows]
        rmat = self.d_g[tasks_f] + s[srows]
        rmat[flat_ar, np.repeat(alphas, b)] -= self.work_g[tasks_f]
        rmat /= self.parr[rows][srows]
        # One flat lexsort with the segment id as most-significant key:
        # the last element of each segment is that row's scalar
        # arg-max (earliest FIFO seq on full ties, via -seq).
        neg_seq = -seq_f
        if self.balance == "lex":
            rmat.sort(axis=1)
            keys = (
                neg_seq,
                *(rmat[:, j] for j in range(self.K - 1, 0, -1)),
                rmat[:, 0],
                srows,
            )
        elif self.balance == "min":
            keys = (neg_seq, rmat.min(axis=1), srows)
        else:
            keys = (neg_seq, rmat.sum(axis=1), srows)
        win = np.lexsort(keys)[np.cumsum(b) - 1]
        wtasks = tasks_f[win]
        wslot = pos[win]
        if self.carry:
            self.extra[rows] += self.d_g[wtasks]
        self.l[rows, alphas] -= self.work_g[wtasks]
        # Swap-remove the winners from their pools.
        last = b - 1
        last_flat = g * self.M + last
        self.pool_task[wslot] = self.pool_task[last_flat]
        self.pool_seq[wslot] = self.pool_seq[last_flat]
        self.pool_len_flat[g] = last
        self.free2[rows, alphas] -= 1
        # Dispatch the one winner per row.
        sp = self.sp_flat[g] - 1
        procs = self.stack2[g, sp]
        self.sp_flat[g] = sp
        pseq = self.pseq_counter[rows]
        self.pseq_counter[rows] = pseq + 1
        finish = self.now[rows] + self.work_g[wtasks]
        col = self.proc_base2[g] + procs
        self.fin[rows, col] = finish
        self.pseqb[rows, col] = pseq
        self.rtaskb[rows, col] = wtasks
        if self.record_trace:
            self._trace_add(rows, alphas, wtasks, procs, self.now[rows], finish)

    def _take_all_multi(self, rows: np.ndarray, alphas: np.ndarray) -> None:
        g = rows * self.K + alphas
        b = self.pool_len_flat[g]
        seg_starts = _excl_cumsum(b)
        nflat = int(b.sum())
        flat_ar = np.arange(nflat, dtype=np.int64)
        pos = flat_ar + np.repeat(g * self.M - seg_starts, b)
        srows = np.repeat(np.arange(len(rows), dtype=np.int64), b)
        seq_f = self.pool_seq[pos]
        # "Run them all" commits in FIFO ready order per row.
        ordk = np.argsort(srows * self._pseq_stride + seq_f)
        tasks_s = self.pool_task[pos][ordk]
        if self.carry:
            # extra = ((extra + d[v1]) + d[v2]) + ... — prepend each
            # row's running extra to its segment so the segmented
            # left-to-right reduce reproduces the scalar accumulation
            # order exactly.
            nseg = len(rows)
            arr = np.empty((nflat + nseg, self.K), dtype=np.float64)
            ins = seg_starts + np.arange(nseg, dtype=np.int64)
            arr[ins] = self.extra[rows]
            dmask = np.ones(len(arr), dtype=bool)
            dmask[ins] = False
            arr[dmask] = self.d_g[tasks_s]
            self.extra[rows] = np.add.reduceat(arr, ins, axis=0)
        self.l[rows, alphas] -= np.add.reduceat(self.work_g[tasks_s], seg_starts)
        self.pool_len_flat[g] = 0
        self.free2[rows, alphas] -= b
        # Dispatch all b tasks per row in commit order.
        o = flat_ar - seg_starts[srows]
        g_rep = np.repeat(g, b)
        procs = self.stack2[g_rep, self.sp_flat[g_rep] - 1 - o]
        self.sp_flat[g] -= b
        pseq = np.repeat(self.pseq_counter[rows], b) + o
        self.pseq_counter[rows] += b
        rows_rep = np.repeat(rows, b)
        finish = self.now[rows_rep] + self.work_g[tasks_s]
        col = self.proc_base2[g_rep] + procs
        self.fin[rows_rep, col] = finish
        self.pseqb[rows_rep, col] = pseq
        self.rtaskb[rows_rep, col] = tasks_s
        if self.record_trace:
            self._trace_add(
                rows_rep, np.repeat(alphas, b), tasks_s, procs,
                self.now[rows_rep], finish,
            )


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def _is_decentral(scheduler: Scheduler) -> bool:
    # Lazy import: repro.decentral imports this package at load time.
    from repro.decentral.schedulers import DecentralScheduler

    return isinstance(scheduler, DecentralScheduler)


def _is_energy(scheduler: Scheduler) -> bool:
    # Lazy import: repro.energy.schedulers imports the scheduler
    # package, whose registry this module imports at load time.
    from repro.energy.schedulers import is_energy_scheduler

    return is_energy_scheduler(scheduler)


def _is_static(scheduler: Scheduler) -> bool:
    # DKGreedy subclasses KGreedy but must not stack into the static
    # lockstep rows — it runs under the decentralized engine.  The
    # energy variants subclass KGreedy/MQB but override assignment, so
    # lockstep rows would silently run their bases.
    if _is_decentral(scheduler) or _is_energy(scheduler):
        return False
    return isinstance(scheduler, (QueueScheduler, KGreedy))


def batch_supported(scheduler: Scheduler, job: KDag) -> bool:
    """Whether the batch engine can run ``scheduler`` on ``job``.

    Static-priority schedulers (KGreedy and every
    :class:`~repro.schedulers.base.QueueScheduler`) always qualify;
    the MQB family qualifies on integral work amounts (every library
    workload), where the balance bookkeeping is exact in any
    summation order.  Everything else — e.g. the random control, whose
    per-decision draws are inherently sequential, or the energy
    variants, whose assignment differs from their base classes — falls
    back to the scalar engine.
    """
    if _is_decentral(scheduler) or _is_energy(scheduler):
        return False
    if _is_static(scheduler):
        return True
    if isinstance(scheduler, MQB):
        cls = type(scheduler)
        if cls._pick_best is not MQB._pick_best or cls.assign is not MQB.assign:
            # A subclass with its own scoring or assignment (e.g. a
            # third-party variant not caught by the energy/decentral
            # family checks) would silently run its base class here.
            return False
        work = job.work
        return bool(np.all(work == np.floor(work)))
    return False


def _static_row(sch: Scheduler, job: KDag, resources: ResourceConfig) -> _Row:
    keys = (
        np.zeros(job.n_tasks, dtype=np.float64)
        if isinstance(sch, KGreedy)
        else np.asarray(sch._keys, dtype=np.float64)  # type: ignore[attr-defined]
    )
    return _Row(job, resources, sch.name, keys)


def simulate_batch(
    instances: Sequence[tuple[KDag, ResourceConfig]],
    scheduler: Scheduler | str,
    rngs: Sequence[np.random.Generator | None] | None = None,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> list[ScheduleResult]:
    """Simulate ``scheduler`` on every instance, batched in lockstep.

    Parameters
    ----------
    instances:
        ``(job, resources)`` pairs; cells may be ragged (different
        task counts, different K).
    scheduler:
        A registry name or a scheduler instance.  It is ``prepare()``-d
        once per instance (consuming ``rngs[i]`` exactly as a scalar
        run would), then its prepared state is read into the columnar
        engine.
    rngs:
        Optional per-instance generators for ``prepare`` (stochastic
        information models); ``None`` entries are fine.
    record_trace:
        When true every result carries a full :class:`ScheduleTrace`,
        bit-identical to the scalar engine's.
    telemetry:
        Observability context; counts ``batch.instances``,
        ``batch.rounds`` and ``batch.fallback``.  Disabled or absent
        telemetry costs nothing (counters are recorded once per batch,
        not per round).

    Returns
    -------
    list[ScheduleResult]
        One result per instance, in input order — each bit-identical
        to ``simulate(job, resources, scheduler, ...)`` on the same
        inputs (rows the engine cannot handle are transparently run
        on the scalar engine; see the module docstring's fallback
        contract).
    """
    grid = simulate_batch_grid(
        instances,
        [scheduler],
        rngs=None if rngs is None else [list(rngs)],
        record_trace=record_trace,
        telemetry=telemetry,
    )
    return grid[0]


def simulate_batch_grid(
    instances: Sequence[tuple[KDag, ResourceConfig]],
    schedulers: Sequence[Scheduler | str],
    rngs: Sequence[Sequence[np.random.Generator | None]] | None = None,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> list[list[ScheduleResult]]:
    """Simulate a whole (scheduler × instance) grid in lockstep.

    The sweep-shaped entry point: *all* static-priority rows of the
    grid stack into one lockstep engine regardless of which scheduler
    they belong to (a paired comparison of 5 static algorithms over 16
    instances becomes one 80-row engine whose event rounds amortize
    across the whole grid), MQB rows group by (balance mode, carry
    flag, K) — the engine parameters, so all seven MQB information
    variants of Figure 8 share engines — and unsupported pairs fall
    back to the scalar engine per the module's fallback contract.

    ``rngs`` is indexed ``[scheduler][instance]``; each generator is
    consumed by that pair's ``prepare`` exactly as a scalar run would
    consume it, so results are bit-identical to the scalar engine's
    per pair.  Returns ``results[scheduler][instance]``.
    """
    sch_list = [
        make_scheduler(s) if isinstance(s, str) else s for s in schedulers
    ]
    A = len(sch_list)
    N = len(instances)
    if rngs is None:
        rng_grid: list[list[np.random.Generator | None]] = [
            [None] * N for _ in range(A)
        ]
    else:
        rng_grid = [list(r) for r in rngs]
        if len(rng_grid) != A or any(len(r) != N for r in rng_grid):
            raise SchedulingError(
                f"rngs must be a {A}x{N} grid matching (schedulers, instances)"
            )
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    results: list[list[ScheduleResult | None]] = [
        [None] * N for _ in range(A)
    ]

    static_pairs: list[tuple[int, int]] = []
    mqb_groups: dict[tuple[str, bool, int], list[tuple[int, int]]] = {}
    fallback_pairs: list[tuple[int, int]] = []
    for a, sch in enumerate(sch_list):
        for i, (job, _resources) in enumerate(instances):
            if _is_static(sch):
                static_pairs.append((a, i))
            elif isinstance(sch, MQB) and batch_supported(sch, job):
                key = (sch._balance_mode, sch._carry, job.num_types)
                mqb_groups.setdefault(key, []).append((a, i))
            else:
                fallback_pairs.append((a, i))

    def _run_fallback(pairs: list[tuple[int, int]]) -> None:
        # dispatch_simulate routes decentralized schedulers to their
        # engine; everything else goes to the scalar engine as before.
        from repro.decentral.engine import dispatch_simulate

        for a, i in pairs:
            job, resources = instances[i]
            results[a][i] = dispatch_simulate(
                job,
                resources,
                sch_list[a],
                rng=rng_grid[a][i],
                record_trace=record_trace,
                telemetry=telemetry,
            )
        if obs is not None and pairs:
            obs.inc("batch.fallback", len(pairs))

    rounds = 0
    batched = 0
    if static_pairs:
        rows = []
        for a, i in static_pairs:
            job, resources = instances[i]
            sch = sch_list[a]
            sch.prepare(job, resources, rng_grid[a][i])
            rows.append(_static_row(sch, job, resources))
        try:
            engine: _LockstepBase = _StaticLockstep(rows, record_trace)
        except _BatchUnsupported:
            _run_fallback(static_pairs)
        else:
            rounds += engine.run()
            batched += len(static_pairs)
            for (a, i), res in zip(static_pairs, engine.results()):
                results[a][i] = res

    native_picks = 0
    for (balance_mode, carry, k), pairs in mqb_groups.items():
        rows = []
        d_rows = []
        for a, i in pairs:
            job, resources = instances[i]
            sch = sch_list[a]
            # The prepared scheduler only donates its descendant matrix
            # here; detach any stale telemetry so its own (unused)
            # native dispatch does not count fallbacks for this batch.
            sch.attach_telemetry(None)
            sch.prepare(job, resources, rng_grid[a][i])
            rows.append(_Row(job, resources, sch.name))
            d_rows.append(np.asarray(sch._d, dtype=np.float64))  # type: ignore[attr-defined]
        kernel = None
        if _native.requested() and _native.supported(balance_mode, k):
            kernel = _native.load_kernel()
            if kernel is None:
                _native.note_fallback(obs)
        try:
            engine = _MQBLockstep(
                rows, record_trace, d_rows, balance_mode, carry, kernel=kernel
            )
        except _BatchUnsupported:
            _run_fallback(pairs)
        else:
            rounds += engine.run()
            batched += len(pairs)
            native_picks += engine.native_picks
            for (a, i), res in zip(pairs, engine.results()):
                results[a][i] = res

    _run_fallback(fallback_pairs)

    if obs is not None and batched:
        obs.inc("batch.instances", batched)
        obs.inc("batch.rounds", rounds)
        if native_picks:
            obs.inc("native.calls", native_picks)
    return results  # type: ignore[return-value]
