"""Result record of one simulated schedule."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import cached_lower_bound
from repro.core.kdag import KDag
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["ScheduleResult"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one scheduler on one job/system pair.

    Attributes
    ----------
    makespan:
        Completion time ``T(J)`` of the job under the schedule.
    scheduler:
        Registry name of the algorithm that produced it.
    job, resources:
        The inputs (kept so the ratio can be computed lazily).
    preemptive:
        Whether the preemptive engine produced this result.
    trace:
        Optional full execution trace (``None`` unless requested —
        traces are sizeable and the sweeps only need makespans).
    decisions:
        Number of scheduler decision rounds taken (an effort metric).
    """

    makespan: float
    scheduler: str
    job: KDag
    resources: ResourceConfig
    preemptive: bool = False
    trace: ScheduleTrace | None = None
    decisions: int = 0

    def lower_bound(self) -> float:
        """The paper's makespan lower bound ``L(J)`` for this job/system."""
        return cached_lower_bound(
            self.job, tuple(int(c) for c in self.resources.as_array())
        )

    def completion_time_ratio(self) -> float:
        """``T(J) / L(J)`` — the paper's headline metric (>= 1 - eps)."""
        return self.makespan / self.lower_bound()
