"""Legality checking of produced schedules.

Given a job, a system and a :class:`~repro.sim.trace.ScheduleTrace`,
:func:`validate_schedule` verifies every property a legal K-DAG
schedule must satisfy:

1. **Coverage** — every task executes exactly its work amount (within
   tolerance), in one segment for non-preemptive traces.
2. **Type matching** — every segment of an ``alpha``-task runs on an
   ``alpha``-processor with index below ``P_alpha``.
3. **Exclusivity** — no processor runs two segments at once, which with
   valid processor indices also implies the ``P_alpha`` capacity limit.
4. **No intra-task parallelism** — a task's own segments never overlap.
5. **Precedence** — a task's first start is at or after every parent's
   last end.
6. **Makespan consistency** — the reported makespan equals the latest
   segment end.

The property-based test suite runs this on every engine × scheduler ×
workload combination it generates.  The fault-aware validator
(:func:`repro.faults.validate.validate_fault_schedule`) reuses the
``check_*`` helpers below and adds failure-specific checks (no
execution inside a processor's down interval, policy-aware work
conservation over killed segments).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace, Segment
from repro.system.resources import ResourceConfig

__all__ = [
    "validate_schedule",
    "group_segments",
    "check_membership",
    "check_exclusivity",
    "check_intra_task",
    "check_precedence",
    "check_makespan",
]

_EPS = 1e-9


def group_segments(
    job: KDag, resources: ResourceConfig, trace: ScheduleTrace
) -> tuple[dict[int, list[Segment]], dict[tuple[int, int], list[Segment]]]:
    """Bucket a trace by task and by processor, checking membership.

    Returns ``(per_task, per_proc)`` after running
    :func:`check_membership` on every segment.
    """
    n = job.n_tasks
    per_task: dict[int, list[Segment]] = defaultdict(list)
    per_proc: dict[tuple[int, int], list[Segment]] = defaultdict(list)
    for seg in trace:
        check_membership(job, resources, seg, n)
        per_task[seg.task].append(seg)
        per_proc[(seg.alpha, seg.proc)].append(seg)
    return per_task, per_proc


def check_membership(
    job: KDag, resources: ResourceConfig, seg: Segment, n: int
) -> None:
    """Check 2: segment references a known task, right type, valid proc."""
    if not 0 <= seg.task < n:
        raise ValidationError(f"segment references unknown task {seg.task}")
    alpha = int(job.types[seg.task])
    if seg.alpha != alpha:
        raise ValidationError(
            f"task {seg.task} of type {alpha} ran on type {seg.alpha}"
        )
    if not 0 <= seg.proc < resources.counts[alpha]:
        raise ValidationError(
            f"task {seg.task} ran on processor {seg.proc} but type "
            f"{alpha} has only {resources.counts[alpha]} processors"
        )


def check_exclusivity(per_proc: dict[tuple[int, int], list[Segment]]) -> None:
    """Check 3: no processor runs two segments at once (sorts in place)."""
    for (alpha, proc), segs in per_proc.items():
        segs.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end - _EPS:
                raise ValidationError(
                    f"processor ({alpha}, {proc}) overlaps tasks "
                    f"{a.task} [{a.start}, {a.end}) and "
                    f"{b.task} [{b.start}, {b.end})"
                )


def check_intra_task(per_task: dict[int, list[Segment]]) -> None:
    """Check 4: a task's own segments never overlap (sorts in place)."""
    for task, segs in per_task.items():
        segs.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end - _EPS:
                raise ValidationError(
                    f"task {task} executes in parallel with itself: "
                    f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                )


def check_precedence(
    job: KDag,
    first_start: np.ndarray,
    last_end: np.ndarray,
    tol: float,
) -> None:
    """Check 5: no task starts before any parent's completion."""
    for u, v in job.edges:
        if first_start[v] < last_end[u] - tol:
            raise ValidationError(
                f"task {int(v)} started at {first_start[v]:g} before its "
                f"parent {int(u)} finished at {last_end[u]:g}"
            )


def check_makespan(trace: ScheduleTrace, makespan: float, tol: float) -> None:
    """Check 6: the reported makespan equals the trace's latest end."""
    observed = trace.makespan()
    if abs(observed - makespan) > tol:
        raise ValidationError(
            f"reported makespan {makespan:g} != trace makespan {observed:g}"
        )


def validate_schedule(
    job: KDag,
    resources: ResourceConfig,
    trace: ScheduleTrace,
    makespan: float | None = None,
    preemptive: bool = False,
    tol: float = 1e-6,
) -> None:
    """Raise :class:`ValidationError` unless ``trace`` is a legal schedule.

    Parameters
    ----------
    makespan:
        When given, must equal the trace's latest segment end.
    preemptive:
        When false, additionally require one segment per task.
    tol:
        Absolute tolerance for work-conservation and timing checks.
    """
    if job.num_types != resources.num_types:
        raise ValidationError("job and resources disagree on K")

    n = job.n_tasks
    per_task, per_proc = group_segments(job, resources, trace)

    # 1. coverage / work conservation
    executed = trace.executed_work(n)
    bad = np.flatnonzero(np.abs(executed - job.work) > tol)
    if bad.size:
        v = int(bad[0])
        raise ValidationError(
            f"task {v} executed {executed[v]:g} units of its "
            f"{job.work[v]:g} work"
        )
    if not preemptive:
        for task, segs in per_task.items():
            if len(segs) != 1:
                raise ValidationError(
                    f"non-preemptive schedule split task {task} into "
                    f"{len(segs)} segments"
                )

    check_exclusivity(per_proc)
    check_intra_task(per_task)

    # 5. precedence
    first_start = np.full(n, np.inf)
    last_end = np.full(n, -np.inf)
    for task, segs in per_task.items():
        first_start[task] = min(s.start for s in segs)
        last_end[task] = max(s.end for s in segs)
    check_precedence(job, first_start, last_end, tol)

    # 6. makespan consistency
    if makespan is not None:
        check_makespan(trace, makespan, tol)
