"""Quantum-stepped preemptive simulation of a K-DAG on an FHS.

The paper's preemptive mode (Section IV, last paragraph; Section V-F):
"a preemptive scheduler makes decisions for each processor at the
beginning of every scheduling quantum, and a task can be preempted at
one processor and reallocated to another", with reallocation overhead
ignored.

Implementation: at every quantum boundary each running task is returned
to the scheduler's ready pool carrying its *remaining* work, and the
scheduler reassigns all ``P_alpha`` processors of every type from the
merged pool.  A task whose remaining work is below one quantum
completes mid-quantum; its processor stays idle until the next boundary
(with the default integer work and quantum 1 this never loses time).

Because selections repeat every quantum the cost per run is
``O((makespan / quantum) * selection_cost)`` — fine for the paper's
job sizes, and the honest price of modeling preemption faithfully.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.kdag import KDag
from repro.errors import SchedulingError
from repro.obs.events import SLICE
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import Scheduler
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["simulate_preemptive"]

#: Safety valve: quanta per run before declaring the scheduler stuck.
_MAX_QUANTA_FACTOR = 64


def simulate_preemptive(
    job: KDag,
    resources: ResourceConfig,
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    quantum: float = 1.0,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> ScheduleResult:
    """Run ``scheduler`` on ``job`` with quantum-based preemption.

    See the module docstring for semantics; parameters mirror
    :func:`repro.sim.engine.simulate` plus ``quantum``.
    """
    if quantum <= 0 or not np.isfinite(quantum):
        raise SchedulingError(f"quantum must be positive and finite, got {quantum}")
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    scheduler.attach_telemetry(obs)
    if obs is None:
        scheduler.prepare(job, resources, rng)
    else:
        _t0 = perf_counter()
        scheduler.prepare(job, resources, rng)
        obs.add_time("phase.prepare", perf_counter() - _t0)
    k = job.num_types
    n = job.n_tasks
    types = job.types

    indeg = job.in_degrees()
    remaining = job.work.copy()
    state = np.zeros(n, dtype=np.int8)  # 0 pending, 1 queued, 3 done
    trace = ScheduleTrace() if record_trace else None

    completed = 0
    decisions = 0
    now = 0.0
    makespan = 0.0

    for v in job.sources():
        vi = int(v)
        state[vi] = 1
        scheduler.task_ready(vi, now, float(remaining[vi]))

    # Upper bound on quanta: serializing all work on one processor per
    # type is at most total_work / quantum rounds; multiply for slack.
    budget = int(_MAX_QUANTA_FACTOR * (float(job.work.sum()) / quantum + n + 1))

    assign = scheduler.assign if obs is None else scheduler.on_decision
    _t_loop = perf_counter() if obs is not None else 0.0

    free_template = list(resources.counts)
    while completed < n:
        if budget <= 0:
            raise SchedulingError(
                f"{scheduler.name} exceeded the quantum budget — "
                "scheduler is not work conserving"
            )
        budget -= 1

        if not any(scheduler.pending(a) for a in range(k)):
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: "
                f"{n - completed} unfinished, empty queues"
            )

        decisions += 1
        chosen = assign(list(free_template), now)
        if not chosen:
            raise SchedulingError(
                f"{scheduler.name} assigned nothing at t={now} with "
                "work pending"
            )
        counts = [0] * k
        newly_done: list[int] = []
        seen_round: set[int] = set()
        for task in chosen:
            if task in seen_round:
                raise SchedulingError(
                    f"{scheduler.name} started task {task} twice in one round"
                )
            seen_round.add(task)
            if state[task] != 1:
                raise SchedulingError(
                    f"{scheduler.name} started task {task} in state "
                    f"{int(state[task])} (not queued)"
                )
            alpha = int(types[task])
            proc = counts[alpha]
            counts[alpha] += 1
            if counts[alpha] > resources.counts[alpha]:
                raise SchedulingError(
                    f"{scheduler.name} oversubscribed type {alpha} in "
                    f"preemptive round at t={now}"
                )
            run = min(quantum, float(remaining[task]))
            if trace is not None:
                trace.add(task, alpha, proc, now, now + run)
            if obs is not None:
                obs.emit(SLICE, now, task=task, alpha=alpha, proc=proc,
                         end=now + run)
            remaining[task] -= run
            if remaining[task] <= 1e-12:
                state[task] = 3
                newly_done.append(task)
                if now + run > makespan:
                    makespan = now + run
            else:
                # Stays queued; re-announce with updated remaining work so
                # queue-length-tracking schedulers (MQB) stay accurate.
                scheduler.task_ready(task, now + run, float(remaining[task]))

        now += quantum
        for task in newly_done:
            completed += 1
            scheduler.task_finished(task, now)
            for c in job.children(task):
                ci = int(c)
                indeg[ci] -= 1
                if indeg[ci] == 0:
                    state[ci] = 1
                    scheduler.task_ready(ci, now, float(remaining[ci]))

    if obs is not None:
        obs.add_time("phase.engine_loop", perf_counter() - _t_loop)
        obs.inc("engine.runs")
        obs.inc("engine.tasks", n)
        obs.inc("engine.decisions", decisions)

    return ScheduleResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        preemptive=True,
        trace=trace,
        decisions=decisions,
    )
