"""Serialization of jobs, traces and results.

JSON round-tripping for everything a simulation consumes or produces,
so runs can be archived, diffed and replayed: a saved
:class:`~repro.sim.result.ScheduleResult` can be re-validated against
its job later (``validate_schedule``), and a saved job re-scheduled
under a different policy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.kdag import KDag
from repro.errors import ValidationError
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = [
    "job_to_dict",
    "job_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_run",
    "load_run",
]

_SCHEMA = 1


def job_to_dict(job: KDag) -> dict[str, Any]:
    """A JSON-ready description of a K-DAG."""
    return {
        "schema": _SCHEMA,
        "num_types": job.num_types,
        "types": job.types.tolist(),
        "work": job.work.tolist(),
        "edges": [[int(u), int(v)] for u, v in job.edges],
    }


def job_from_dict(data: dict[str, Any]) -> KDag:
    """Inverse of :func:`job_to_dict`."""
    _check_schema(data)
    return KDag(
        types=data["types"],
        work=data["work"],
        edges=[tuple(e) for e in data["edges"]],
        num_types=data["num_types"],
    )


def trace_to_dict(trace: ScheduleTrace) -> dict[str, Any]:
    """A JSON-ready description of a trace (columnar for compactness).

    The ``killed`` column (fault-aware runs) is emitted only when some
    segment was actually killed, so fault-free archives are unchanged;
    :func:`trace_from_dict` treats a missing column as all-surviving.
    """
    out = {
        "schema": _SCHEMA,
        "task": [s.task for s in trace],
        "alpha": [s.alpha for s in trace],
        "proc": [s.proc for s in trace],
        "start": [s.start for s in trace],
        "end": [s.end for s in trace],
    }
    if any(s.killed for s in trace):
        out["killed"] = [bool(s.killed) for s in trace]
    return out


def trace_from_dict(data: dict[str, Any]) -> ScheduleTrace:
    """Inverse of :func:`trace_to_dict`."""
    _check_schema(data)
    trace = ScheduleTrace()
    killed = data.get("killed") or [False] * len(data["task"])
    for task, alpha, proc, start, end, dead in zip(
        data["task"], data["alpha"], data["proc"], data["start"], data["end"],
        killed,
    ):
        trace.add(task, alpha, proc, start, end, killed=bool(dead))
    return trace


def result_to_dict(result: ScheduleResult) -> dict[str, Any]:
    """A JSON-ready description of a full run (job + system + outcome)."""
    return {
        "schema": _SCHEMA,
        "makespan": result.makespan,
        "scheduler": result.scheduler,
        "preemptive": result.preemptive,
        "decisions": result.decisions,
        "resources": list(result.resources.counts),
        "job": job_to_dict(result.job),
        "trace": trace_to_dict(result.trace) if result.trace is not None else None,
    }


def result_from_dict(data: dict[str, Any]) -> ScheduleResult:
    """Inverse of :func:`result_to_dict`."""
    _check_schema(data)
    return ScheduleResult(
        makespan=float(data["makespan"]),
        scheduler=str(data["scheduler"]),
        job=job_from_dict(data["job"]),
        resources=ResourceConfig(tuple(data["resources"])),
        preemptive=bool(data["preemptive"]),
        trace=trace_from_dict(data["trace"]) if data["trace"] is not None else None,
        decisions=int(data["decisions"]),
    )


def save_run(result: ScheduleResult, path: str | Path) -> Path:
    """Write one run to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result)))
    return path


def load_run(path: str | Path) -> ScheduleResult:
    """Load a run saved by :func:`save_run`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no run file at {path}")
    return result_from_dict(json.loads(path.read_text()))


def _check_schema(data: dict[str, Any]) -> None:
    if data.get("schema") != _SCHEMA:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; expected {_SCHEMA}"
        )
