"""Execution traces: who ran what, where, and when.

A trace is a list of :class:`Segment` records.  Non-preemptive runs
produce exactly one segment per task; preemptive runs may split a task
into several segments (possibly on different processors of its type —
the paper allows free reallocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ValidationError

__all__ = ["Segment", "ScheduleTrace"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous execution interval of a task on a processor.

    Attributes
    ----------
    task:
        Task id.
    alpha:
        Resource type the segment ran on.
    proc:
        Processor index within the type's pool, ``0 <= proc < P_alpha``.
    start, end:
        Interval ``[start, end)`` with ``end > start``.
    """

    task: int
    alpha: int
    proc: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"segment for task {self.task} has non-positive duration "
                f"[{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start


@dataclass
class ScheduleTrace:
    """An ordered collection of execution segments for one run."""

    segments: list[Segment] = field(default_factory=list)

    def add(self, task: int, alpha: int, proc: int, start: float, end: float) -> None:
        """Append one segment."""
        self.segments.append(Segment(task, alpha, proc, start, end))

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def makespan(self) -> float:
        """Latest segment end (0.0 for an empty trace)."""
        return max((s.end for s in self.segments), default=0.0)

    def segments_of(self, task: int) -> list[Segment]:
        """All segments of one task, sorted by start time."""
        return sorted(
            (s for s in self.segments if s.task == task), key=lambda s: s.start
        )

    def executed_work(self, n_tasks: int) -> np.ndarray:
        """Total executed duration per task, shape ``(n_tasks,)``."""
        out = np.zeros(n_tasks, dtype=np.float64)
        for s in self.segments:
            if not 0 <= s.task < n_tasks:
                raise ValidationError(f"trace references unknown task {s.task}")
            out[s.task] += s.duration
        return out

    def first_start(self, task: int) -> float:
        """Earliest start of ``task`` (raises if it never ran)."""
        segs = self.segments_of(task)
        if not segs:
            raise ValidationError(f"task {task} never executed")
        return segs[0].start

    def last_end(self, task: int) -> float:
        """Latest end of ``task`` (raises if it never ran)."""
        segs = self.segments_of(task)
        if not segs:
            raise ValidationError(f"task {task} never executed")
        return segs[-1].end
