"""Execution traces: who ran what, where, and when.

A trace is a list of :class:`Segment` records.  Non-preemptive runs
produce exactly one segment per task; preemptive runs may split a task
into several segments (possibly on different processors of its type —
the paper allows free reallocation).  Fault-aware runs
(:mod:`repro.faults.engine`) additionally record *killed* segments:
intervals a task occupied a processor before a failure cut it short.

Per-task lookups (:meth:`ScheduleTrace.segments_of`,
:meth:`~ScheduleTrace.first_start`, :meth:`~ScheduleTrace.last_end`)
and the columnar accessors used by the vectorized metrics are served
from lazily built caches that are invalidated on every :meth:`add`, so
building a trace stays O(1) per segment while analysis passes stop
re-scanning the whole segment list per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ValidationError

__all__ = ["Segment", "ScheduleTrace"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous execution interval of a task on a processor.

    Attributes
    ----------
    task:
        Task id.
    alpha:
        Resource type the segment ran on.
    proc:
        Processor index within the type's pool, ``0 <= proc < P_alpha``.
    start, end:
        Interval ``[start, end)`` with ``end > start``.
    killed:
        True when a processor failure terminated the segment before the
        task completed (fault-aware engine only).  Under the fail-stop
        *restart* policy a killed segment is wasted work; under the
        *checkpoint* policy its progress survives.
    """

    task: int
    alpha: int
    proc: int
    start: float
    end: float
    killed: bool = False

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"segment for task {self.task} has non-positive duration "
                f"[{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start


@dataclass
class ScheduleTrace:
    """An ordered collection of execution segments for one run."""

    segments: list[Segment] = field(default_factory=list)
    #: Lazy per-task index (task -> segments sorted by start); None when stale.
    _by_task: dict[int, list[Segment]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazy columnar view (task/alpha/proc/start/end/killed arrays).
    _columns: dict[str, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(
        self,
        task: int,
        alpha: int,
        proc: int,
        start: float,
        end: float,
        killed: bool = False,
    ) -> None:
        """Append one segment (invalidates the lazy caches)."""
        self.segments.append(Segment(task, alpha, proc, start, end, killed))
        self._by_task = None
        self._columns = None

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    # -- lazy caches ----------------------------------------------------
    def _task_index(self) -> dict[int, list[Segment]]:
        """Per-task segment lists sorted by (start, end), built once."""
        if self._by_task is None:
            index: dict[int, list[Segment]] = {}
            for s in self.segments:
                index.setdefault(s.task, []).append(s)
            for segs in index.values():
                segs.sort(key=lambda s: (s.start, s.end))
            self._by_task = index
        return self._by_task

    def as_columns(self) -> dict[str, np.ndarray]:
        """Columnar view of the trace, cached until the next :meth:`add`.

        Returns arrays ``task`` (int64), ``alpha`` (int64), ``proc``
        (int64), ``start``/``end`` (float64) and ``killed`` (bool), all
        of length ``len(self)`` in segment insertion order.
        """
        if self._columns is None:
            segs = self.segments
            self._columns = {
                "task": np.fromiter(
                    (s.task for s in segs), dtype=np.int64, count=len(segs)
                ),
                "alpha": np.fromiter(
                    (s.alpha for s in segs), dtype=np.int64, count=len(segs)
                ),
                "proc": np.fromiter(
                    (s.proc for s in segs), dtype=np.int64, count=len(segs)
                ),
                "start": np.fromiter(
                    (s.start for s in segs), dtype=np.float64, count=len(segs)
                ),
                "end": np.fromiter(
                    (s.end for s in segs), dtype=np.float64, count=len(segs)
                ),
                "killed": np.fromiter(
                    (s.killed for s in segs), dtype=bool, count=len(segs)
                ),
            }
        return self._columns

    # -- queries --------------------------------------------------------
    def makespan(self) -> float:
        """Latest segment end (0.0 for an empty trace)."""
        return max((s.end for s in self.segments), default=0.0)

    def segments_of(self, task: int) -> list[Segment]:
        """All segments of one task, sorted by start time."""
        return list(self._task_index().get(task, []))

    def killed_segments(self) -> list[Segment]:
        """All segments terminated by a processor failure."""
        return [s for s in self.segments if s.killed]

    def executed_work(self, n_tasks: int) -> np.ndarray:
        """Total executed duration per task, shape ``(n_tasks,)``.

        Counts every segment, killed or not — under the checkpoint
        fault policy killed progress is real work; for fail-stop
        accounting use :meth:`surviving_work`.
        """
        cols = self.as_columns()
        task = cols["task"]
        bad = (task < 0) | (task >= n_tasks)
        if bad.any():
            offender = int(task[np.argmax(bad)])
            raise ValidationError(f"trace references unknown task {offender}")
        out = np.zeros(n_tasks, dtype=np.float64)
        np.add.at(out, task, cols["end"] - cols["start"])
        return out

    def surviving_work(self, n_tasks: int) -> np.ndarray:
        """Per-task executed duration of non-killed segments only."""
        cols = self.as_columns()
        task = cols["task"]
        bad = (task < 0) | (task >= n_tasks)
        if bad.any():
            offender = int(task[np.argmax(bad)])
            raise ValidationError(f"trace references unknown task {offender}")
        alive = ~cols["killed"]
        out = np.zeros(n_tasks, dtype=np.float64)
        np.add.at(out, task[alive], cols["end"][alive] - cols["start"][alive])
        return out

    def first_start(self, task: int) -> float:
        """Earliest start of ``task`` (raises if it never ran)."""
        segs = self._task_index().get(task)
        if not segs:
            raise ValidationError(f"task {task} never executed")
        return segs[0].start

    def last_end(self, task: int) -> float:
        """Latest end of ``task`` (raises if it never ran)."""
        segs = self._task_index().get(task)
        if not segs:
            raise ValidationError(f"task {task} never executed")
        return max(s.end for s in segs)
