"""Vectorized energy / busy-time / profit metrics over schedule traces.

Everything here is pure accounting over a recorded
:class:`~repro.sim.trace.ScheduleTrace` and a
:class:`~repro.energy.models.PowerModel` — no metric alters a schedule,
so w=0 scheduler variants stay bit-identical to their bases no matter
which power model is applied afterwards.

The computations reuse the columnar idioms of :mod:`repro.sim.metrics`:
per-type busy time is one ``np.add.at`` scatter, idle gaps come from a
single ``np.lexsort`` over (processor, start) plus adjacent
differences, and per-processor active intervals are
``np.minimum.at``/``np.maximum.at`` scatters — no per-segment Python
loop anywhere.

Metrics:

* :func:`idle_gaps` — the per-processor idle-gap decomposition of the
  horizon (leading, between-segment, trailing and whole-horizon gaps),
  the substrate for shutdown accounting;
* :func:`energy_breakdown` / :func:`total_energy` — energy split into
  busy/idle/sleep/wake parts under the model's shutdown-window
  semantics (see :mod:`repro.energy.models`);
* :func:`energy_delay_product` — ``energy * makespan``;
* :func:`active_interval_time` — per-type sum of per-processor
  ``last_end - first_start`` spans: the busy-time objective on typed
  machines ("Analysis of Busy-Time Scheduling on Heterogeneous
  Machines", arXiv:2105.06287), where a machine costs for the whole
  interval it must be powered on;
* :func:`task_completion_times` / :func:`schedule_profit` — profit
  under per-task values with deadlines minus priced energy ("A
  Task-Type-Based Algorithm for the Energy-Aware Profit Maximizing
  Scheduling Problem", arXiv:1501.05414).

Killed segments (fault-aware traces) count as busy time — they occupied
the processor even though their work was lost — matching
:func:`repro.sim.metrics.type_busy_time`.
"""

from __future__ import annotations

import numpy as np

from repro.energy.models import PowerModel
from repro.errors import ValidationError
from repro.sim.metrics import type_busy_time
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = [
    "idle_gaps",
    "energy_breakdown",
    "total_energy",
    "energy_delay_product",
    "active_interval_time",
    "task_completion_times",
    "schedule_profit",
    "type_busy_time",
]


def _resolve_horizon(trace: ScheduleTrace, makespan: float | None) -> float:
    horizon = trace.makespan() if makespan is None else float(makespan)
    if horizon < 0.0:
        raise ValidationError(f"makespan must be >= 0, got {horizon}")
    return horizon


def idle_gaps(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    makespan: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Idle-gap decomposition of ``[0, makespan]`` per processor.

    Returns ``(lengths, types)``: one entry per idle gap on any
    processor — the interval before its first segment, the intervals
    between consecutive segments, the interval after its last segment,
    and the whole horizon for processors that never ran anything.
    Zero-length gaps are dropped.  The gap lengths of each type sum to
    ``P_alpha * makespan - busy_alpha`` exactly (the invariant the
    energy tests pin).
    """
    horizon = _resolve_horizon(trace, makespan)
    counts = resources.as_array()
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    pid_type = np.repeat(
        np.arange(resources.num_types, dtype=np.int64), counts
    )

    cols = trace.as_columns()
    alpha, proc = cols["alpha"], cols["proc"]
    start, end = cols["start"], cols["end"]
    if len(alpha):
        bad = (alpha < 0) | (alpha >= resources.num_types)
        if bad.any():
            offender = int(alpha[np.argmax(bad)])
            raise ValidationError(
                f"segment type {offender} out of range for K={resources.num_types}"
            )
        bad = (proc < 0) | (proc >= counts[alpha])
        if bad.any():
            offender = int(np.argmax(bad))
            raise ValidationError(
                f"segment processor {int(proc[offender])} out of range for "
                f"type {int(alpha[offender])}"
            )
        if end.max() > horizon + 1e-9:
            raise ValidationError(
                f"segment ends at {end.max()} beyond makespan {horizon}"
            )

    if not len(alpha):
        if horizon <= 0.0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        return np.full(total, horizon, dtype=np.float64), pid_type

    pid = offsets[alpha] + proc
    order = np.lexsort((start, pid))
    ps, pe, pp = start[order], end[order], pid[order]

    # Per-processor first start / last end (never-used stay at the
    # sentinels and are handled as whole-horizon gaps below).
    first = np.full(total, np.inf, dtype=np.float64)
    last = np.zeros(total, dtype=np.float64)
    np.minimum.at(first, pid, start)
    np.maximum.at(last, pid, end)
    used = np.isfinite(first)

    # Gaps between consecutive segments of the same processor.  The
    # engines never overlap segments on one processor; the clip guards
    # against float fuzz only.
    same = pp[1:] == pp[:-1]
    mid_len = np.clip(ps[1:] - pe[:-1], 0.0, None)[same]
    mid_type = pid_type[pp[1:][same]]

    lead_len = first[used]
    lead_type = pid_type[used]
    trail_len = np.clip(horizon - last[used], 0.0, None)
    unused_len = np.full(int((~used).sum()), horizon, dtype=np.float64)
    unused_type = pid_type[~used]

    lengths = np.concatenate([lead_len, mid_len, trail_len, unused_len])
    types = np.concatenate([lead_type, mid_type, lead_type, unused_type])
    keep = lengths > 0.0
    return lengths[keep], types[keep]


def energy_breakdown(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    power: PowerModel,
    makespan: float | None = None,
) -> dict:
    """Integrate ``power`` over the trace; return the full energy split.

    Returns a dict with scalar ``busy`` / ``idle`` / ``sleep`` /
    ``wake`` / ``total`` energies, per-type ``busy_time`` and
    ``busy_energy`` arrays, and the gap statistics ``n_gaps`` /
    ``n_shutdowns`` (idle gaps long enough to engage the shutdown
    window) the experiment surfaces as ``energy.*`` telemetry.

    A gap of length ``g`` on a type with shutdown window ``W`` and
    wake latency ``w`` sleeps iff ``g >= W + w``; its energy is then
    ``W * idle + (g - W - w) * sleep + w * busy``, otherwise
    ``g * idle`` (see :mod:`repro.energy.models`).
    """
    power.check_types(resources.num_types)
    horizon = _resolve_horizon(trace, makespan)
    busy_time = type_busy_time(trace, resources.num_types)
    busy_arr = power.busy_array()
    idle_arr = power.idle_array()
    busy_energy = busy_arr * busy_time

    lengths, types = idle_gaps(trace, resources, horizon)
    n_gaps = int(len(lengths))
    if n_gaps:
        window = power.window_array()[types]
        wake = power.wake_array()[types]
        threshold = window + wake
        sleeps = lengths >= threshold
        idle_part = np.where(sleeps, window, lengths)
        sleep_part = np.where(sleeps, lengths - threshold, 0.0)
        wake_part = np.where(sleeps, wake, 0.0)
        idle_energy = float(np.sum(idle_arr[types] * idle_part))
        sleep_energy = float(np.sum(power.sleep_array()[types] * sleep_part))
        wake_energy = float(np.sum(busy_arr[types] * wake_part))
        n_shutdowns = int(sleeps.sum())
    else:
        idle_energy = sleep_energy = wake_energy = 0.0
        n_shutdowns = 0

    busy_total = float(busy_energy.sum())
    return {
        "busy": busy_total,
        "idle": idle_energy,
        "sleep": sleep_energy,
        "wake": wake_energy,
        "total": busy_total + idle_energy + sleep_energy + wake_energy,
        "busy_time": busy_time,
        "busy_energy": busy_energy,
        "makespan": horizon,
        "n_gaps": n_gaps,
        "n_shutdowns": n_shutdowns,
    }


def total_energy(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    power: PowerModel,
    makespan: float | None = None,
) -> float:
    """Total energy of the schedule under ``power``."""
    return energy_breakdown(trace, resources, power, makespan)["total"]


def energy_delay_product(
    trace: ScheduleTrace,
    resources: ResourceConfig,
    power: PowerModel,
    makespan: float | None = None,
) -> float:
    """``total_energy * makespan`` — the classic EDP trade-off scalar."""
    breakdown = energy_breakdown(trace, resources, power, makespan)
    return breakdown["total"] * breakdown["makespan"]


def active_interval_time(
    trace: ScheduleTrace,
    resources: ResourceConfig,
) -> np.ndarray:
    """Per-type busy-time cost: sum of per-processor active intervals.

    The busy-time objective of arXiv:2105.06287 on typed machines: a
    processor must be powered on from its first segment start to its
    last segment end, so its cost is that whole span (idle holes
    included); never-used processors cost nothing.  Shape ``(K,)``.
    """
    counts = resources.as_array()
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    cols = trace.as_columns()
    alpha, proc = cols["alpha"], cols["proc"]
    out = np.zeros(resources.num_types, dtype=np.float64)
    if not len(alpha):
        return out
    bad = (alpha < 0) | (alpha >= resources.num_types)
    if bad.any():
        offender = int(alpha[np.argmax(bad)])
        raise ValidationError(
            f"segment type {offender} out of range for K={resources.num_types}"
        )
    pid = offsets[alpha] + proc
    first = np.full(total, np.inf, dtype=np.float64)
    last = np.full(total, -np.inf, dtype=np.float64)
    np.minimum.at(first, pid, cols["start"])
    np.maximum.at(last, pid, cols["end"])
    used = np.isfinite(first)
    pid_type = np.repeat(np.arange(resources.num_types, dtype=np.int64), counts)
    np.add.at(out, pid_type[used], last[used] - first[used])
    return out


def task_completion_times(trace: ScheduleTrace, n_tasks: int) -> np.ndarray:
    """Per-task latest segment end, ``+inf`` for tasks that never ran.

    ``+inf`` (rather than an error) lets profit accounting treat tasks
    a fault-aware run never finished as missed deadlines.
    """
    cols = trace.as_columns()
    task = cols["task"]
    if len(task):
        bad = (task < 0) | (task >= n_tasks)
        if bad.any():
            offender = int(task[np.argmax(bad)])
            raise ValidationError(f"trace references unknown task {offender}")
    out = np.full(n_tasks, np.inf, dtype=np.float64)
    np.minimum.at(out, task, 0.0)  # mark executed tasks finite
    out[np.isfinite(out)] = 0.0
    np.maximum.at(out, task, cols["end"])
    return out


def schedule_profit(
    trace: ScheduleTrace,
    values: np.ndarray,
    deadlines: np.ndarray,
    energy: float,
    energy_price: float = 0.0,
) -> float:
    """Revenue of deadline-met tasks minus priced energy.

    The energy-aware profit objective of arXiv:1501.05414: each task
    ``v`` earns ``values[v]`` iff it completes by ``deadlines[v]``;
    the schedule pays ``energy_price`` per unit of energy.  ``values``
    and ``deadlines`` are per-task arrays (broadcast against each
    other); pass a scalar deadline via ``np.full``/broadcasting.
    """
    values = np.asarray(values, dtype=np.float64)
    deadlines = np.asarray(deadlines, dtype=np.float64)
    values, deadlines = np.broadcast_arrays(values, deadlines)
    if float(energy_price) < 0.0:
        raise ValidationError(
            f"energy price must be >= 0, got {energy_price}"
        )
    completion = task_completion_times(trace, len(values))
    revenue = float(values[completion <= deadlines].sum())
    return revenue - float(energy_price) * float(energy)
