"""Energy-aware scheduler variants.

Two families, both thin layers over the paper's algorithms so that the
energy knob degenerates to the base scheduler *bit-for-bit* when turned
off (the correctness anchor CI asserts via
``scripts/check_energy_identity.py``):

* :class:`EMQB` (``emqb[w=0.5]``, optionally ``power=<config>``) —
  MQB's lexicographic utilization balancing with each type's
  x-utilization rescaled by an idle-power weight.  Types that are
  expensive to leave idle (high ``idle_power * P_alpha``) get weight
  ``> 1``, so their queues look *more* starved and MQB feeds them
  first; cheap types get weight ``< 1`` and may be left to drain.  At
  ``w=0`` — or under any uniform power model — every weight is exactly
  ``1.0`` and the multiply is a bitwise no-op, so EMQB runs MQB's exact
  arithmetic through the same code path (the same trick the telemetry
  on/off contract uses).
* :class:`KGreedyConsolidate` (``kgreedy-consolidate[r=0.5]``) —
  KGreedy with per-type concurrency capped at ``ceil(r * P_alpha)``:
  work consolidates onto fewer processors, lengthening the idle gaps on
  the rest so shutdown windows can engage (arXiv:2105.06287's
  busy-time lever).  ``r=1`` caps at ``P_alpha``, which never binds, so
  it is bit-identical to plain KGreedy including decision counts.

Both names flow through the scheduler registry's bracket-suffix
parsing (:func:`make_energy_scheduler`), so sweeps, the result cache,
and the service pick them up unchanged.  The batch engine excludes
them explicitly (they subclass MQB/KGreedy and would otherwise be
lockstep-run as their bases) and falls back to the scalar engine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.kdag import KDag
from repro.energy.models import PowerModel, power_config
from repro.errors import ConfigurationError
from repro.schedulers.kgreedy import KGreedy
from repro.schedulers.mqb import MQB
from repro.system.resources import ResourceConfig

__all__ = [
    "EMQB",
    "KGreedyConsolidate",
    "make_energy_scheduler",
    "is_energy_scheduler",
    "DEFAULT_EMQB_POWER",
]

#: Power config EMQB weights against when none is named.  ``hetero``
#: is the only named config whose idle draws differ across types —
#: under uniform draws the weights collapse to 1.0 and EMQB is MQB.
DEFAULT_EMQB_POWER = "hetero"


class EMQB(MQB):
    """MQB scoring idle-power-weighted x-utilizations.

    Parameters
    ----------
    w:
        Energy weight in ``[0, 1]``.  ``0`` disables the rescaling
        (bit-identical to ``mqb``); ``1`` applies the full idle-cost
        spread.
    power:
        A named power config (see
        :func:`repro.energy.models.power_config`) or a
        :class:`~repro.energy.models.PowerModel` instance; resolved
        against the system's K in :meth:`prepare`.
    """

    requires_offline = True

    def __init__(self, w: float = 0.5, power: str | PowerModel = DEFAULT_EMQB_POWER) -> None:
        super().__init__(balance_mode="lex", carry_projection=True)
        w = float(w)
        if not math.isfinite(w) or not 0.0 <= w <= 1.0:
            raise ConfigurationError(
                f"emqb energy weight must be in [0, 1], got {w!r}"
            )
        if isinstance(power, str):
            power_name = power.strip().lower()
        elif isinstance(power, PowerModel):
            power_name = power.name
        else:
            raise ConfigurationError(
                f"emqb power must be a config name or PowerModel, got {power!r}"
            )
        self._w = w
        self._power = power
        parts = [f"w={w:g}"]
        if power_name != DEFAULT_EMQB_POWER:
            parts.append(f"power={power_name}")
        self.name = f"emqb[{','.join(parts)}]"
        self._eweights: np.ndarray | None = None

    @property
    def w(self) -> float:
        return self._w

    def prepare(
        self,
        job: KDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        if isinstance(self._power, PowerModel):
            power = self._power.check_types(resources.num_types)
        else:
            power = power_config(self._power, resources.num_types)
        assert self._parr is not None
        # Idle cost of keeping each type's whole pool powered on.  The
        # uniform-cost case short-circuits to exact ones (rather than
        # relying on ``cost/mean - 1`` cancelling in floating point), so
        # uniform power — like w=0 — is bitwise MQB.
        cost = power.idle_array() * self._parr
        mean = float(cost.mean())
        if self._w == 0.0 or mean <= 0.0 or bool(np.all(cost == cost[0])):
            self._eweights = np.ones(resources.num_types, dtype=np.float64)
        else:
            self._eweights = 1.0 + self._w * (cost / mean - 1.0)

    def _pick_best(self, alpha: int, extra: np.ndarray) -> int:
        """MQB's scoring with one insertion: ``r *= eweights``.

        The replicated arithmetic must stay in lockstep with
        :meth:`MQB._pick_best` (lex mode); when every weight is exactly
        ``1.0`` the extra multiply changes no bits, so the pick — and
        therefore the whole schedule — is identical to MQB's.
        """
        assert self._l is not None and self._parr is not None
        assert self._eweights is not None
        tasks = self._ptasks[alpha]
        m = len(tasks)
        r = self._dpool[alpha][:m] + (self._l + extra)
        r[:, alpha] -= self._wpool[alpha][:m]
        r /= self._parr
        r *= self._eweights
        neg_seq = -self._spool[alpha][:m]
        r.sort(axis=1)
        sort_keys = (neg_seq, *(r[:, j] for j in range(r.shape[1] - 1, 0, -1)), r[:, 0])
        return tasks[int(np.lexsort(sort_keys)[-1])]


class KGreedyConsolidate(KGreedy):
    """KGreedy with per-type concurrency capped at ``ceil(r * P_alpha)``.

    The cap is enforced in :meth:`assign` by clamping each type's slot
    count to ``cap - running``; a capped type simply contributes no
    picks this round (never a stall: ``cap >= 1`` means a capped type
    always has a running task, so the event heap is never empty while
    work remains).  Running counts track the engines' start/finish
    events, including the preemptive engine's quantum-boundary
    re-announcements (a returned task is no longer running).
    """

    requires_offline = False

    def __init__(self, ratio: float = 0.5) -> None:
        super().__init__()
        ratio = float(ratio)
        if not math.isfinite(ratio) or not 0.0 < ratio <= 1.0:
            raise ConfigurationError(
                f"consolidation ratio must be in (0, 1], got {ratio!r}"
            )
        self._ratio = ratio
        self.name = f"kgreedy-consolidate[r={ratio:g}]"
        self._cap: np.ndarray | None = None
        self._running: list[int] = []
        self._started: set[int] = set()

    @property
    def ratio(self) -> float:
        return self._ratio

    def prepare(
        self,
        job: KDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        parr = resources.as_array()
        self._cap = np.maximum(
            1, np.ceil(self._ratio * parr).astype(np.int64)
        )
        self._running = [0] * job.num_types
        self._started = set()

    def task_ready(self, task: int, time: float, work: float) -> None:
        # A preemptive engine returns running tasks to the pool at
        # quantum boundaries via task_ready (no task_finished), so a
        # re-announced started task stops counting against the cap.
        if task in self._started:
            self._started.discard(task)
            self._running[int(self.job.types[task])] -= 1
        super().task_ready(task, time, work)

    def assign(self, free: list[int], time: float) -> list[int]:
        assert self._cap is not None
        chosen: list[int] = []
        for alpha, slots in enumerate(free):
            slots = min(int(slots), int(self._cap[alpha]) - self._running[alpha])
            if slots <= 0 or self.pending(alpha) == 0:
                continue
            picked = self.select(alpha, slots, time)
            self._started.update(picked)
            self._running[alpha] += len(picked)
            chosen.extend(picked)
        return chosen

    def task_finished(self, task: int, time: float) -> None:
        if task in self._started:
            self._started.discard(task)
            self._running[int(self.job.types[task])] -= 1


# ----------------------------------------------------------------------
# registry glue
# ----------------------------------------------------------------------
def is_energy_scheduler(scheduler: object) -> bool:
    """True for the energy variants (batch router exclusion hook).

    They subclass MQB/KGreedy, so ``isinstance`` checks against the
    bases would silently run them as their bases in the lockstep
    engine; the batch router calls this first and falls back to the
    scalar engine instead.
    """
    return isinstance(scheduler, (EMQB, KGreedyConsolidate))


def _parse_options(text: str, name: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for raw in text.split(","):
        opt = raw.strip()
        if not opt:
            continue
        key, sep, value = opt.partition("=")
        if not sep or not value:
            raise ConfigurationError(
                f"bad {name} option {opt!r} (expected key=value)"
            )
        out[key.strip()] = value.strip()
    return out


def _parse_float(value: str, label: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(
            f"bad {label} {value!r} (expected a number)"
        ) from None


def make_energy_scheduler(name: str):
    """Construct an energy scheduler from its registry name.

    Accepted: ``emqb``, ``emqb[w=<float>]``,
    ``emqb[w=<float>,power=<config>]``, ``kgreedy-consolidate``,
    ``kgreedy-consolidate[r=<float>]``.
    """
    key = name.strip().lower()
    base, sep, rest = key.partition("[")
    options = ""
    if sep:
        if not rest.endswith("]"):
            raise ConfigurationError(f"unterminated options in {name!r}")
        options = rest[:-1]
    if base == "emqb":
        opts = _parse_options(options, "emqb")
        kwargs: dict[str, object] = {}
        if "w" in opts:
            kwargs["w"] = _parse_float(opts.pop("w"), "emqb weight")
        if "power" in opts:
            kwargs["power"] = opts.pop("power")
        if opts:
            raise ConfigurationError(
                f"unknown emqb option(s) {sorted(opts)}; known: ['power', 'w']"
            )
        return EMQB(**kwargs)  # type: ignore[arg-type]
    if base == "kgreedy-consolidate":
        opts = _parse_options(options, "kgreedy-consolidate")
        kwargs = {}
        if "r" in opts:
            kwargs["ratio"] = _parse_float(opts.pop("r"), "consolidation ratio")
        if opts:
            raise ConfigurationError(
                f"unknown kgreedy-consolidate option(s) {sorted(opts)}; known: ['r']"
            )
        return KGreedyConsolidate(**kwargs)  # type: ignore[arg-type]
    raise ConfigurationError(f"unknown energy scheduler {name!r}")
