"""Energy- and busy-time-aware scheduling subsystem.

Layers:

* :mod:`repro.energy.models` — per-type :class:`PowerModel` declarations
  (busy/idle/sleep draws, idle-shutdown windows with wake latency) and
  the named configs the experiment sweeps;
* :mod:`repro.energy.metrics` — vectorized energy / busy-time / profit
  accounting over recorded schedule traces;
* :mod:`repro.energy.schedulers` — ``emqb[w=...]`` and
  ``kgreedy-consolidate[r=...]`` variants that trade makespan for
  energy, bit-identical to their bases when the knob is off.

The ``repro run energy`` experiment (:mod:`repro.experiments.energy`)
sweeps the paper's six algorithms plus the variants across power
configs and emits the energy/makespan Pareto front.
"""

from repro.energy.metrics import (
    active_interval_time,
    energy_breakdown,
    energy_delay_product,
    idle_gaps,
    schedule_profit,
    task_completion_times,
    total_energy,
)
from repro.energy.models import (
    POWER_CONFIGS,
    PowerModel,
    TypePower,
    available_power_configs,
    power_config,
)
from repro.energy.schedulers import (
    EMQB,
    KGreedyConsolidate,
    is_energy_scheduler,
    make_energy_scheduler,
)

__all__ = [
    "TypePower",
    "PowerModel",
    "POWER_CONFIGS",
    "power_config",
    "available_power_configs",
    "idle_gaps",
    "energy_breakdown",
    "total_energy",
    "energy_delay_product",
    "active_interval_time",
    "task_completion_times",
    "schedule_profit",
    "EMQB",
    "KGreedyConsolidate",
    "make_energy_scheduler",
    "is_energy_scheduler",
]
