"""Power models for functionally heterogeneous systems.

A :class:`PowerModel` attaches per-type electrical behaviour to a
:class:`~repro.system.resources.ResourceConfig`: each resource type has
a busy draw (while executing a task), an idle draw (powered on but not
executing), a sleep draw (shut down), and an optional *idle-shutdown
window* with a wake latency.  The model is pure accounting — it never
alters a schedule; the energy metrics (:mod:`repro.energy.metrics`)
integrate it over a recorded :class:`~repro.sim.trace.ScheduleTrace`.

Shutdown semantics (the contract the metrics and tests pin):

* A processor sleeps through an idle gap only when the gap is at least
  ``shutdown_window + wake_latency`` long.  The first
  ``shutdown_window`` units are charged at **idle** power (the
  processor waits out the window before powering down), the middle
  ``gap - shutdown_window - wake_latency`` units at **sleep** power,
  and the final ``wake_latency`` units at **busy** power (the wake
  cost).  ``shutdown_window=None`` means the type never shuts down and
  every gap is charged at idle power.
* Draws are ordered ``busy >= idle >= sleep >= 0`` per type, so total
  energy is monotone in busy time and bounded below by the busy-only
  floor (asserted by the property tests).

Models are frozen, hashable, and serialize to a canonical fingerprint
dict (:meth:`PowerModel.fingerprint`) covering **every** field that can
change an energy number, so cached energy sweeps can never serve stale
results (the key-flip matrix in ``tests/resultcache/test_keys.py``).

:func:`power_config` resolves the named configurations the energy
experiment sweeps — uniform draws, heterogeneous per-type idle draws
(the regime where the energy-weighted EMQB rescoring differs from
plain MQB), and a shutdown-window config.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TypePower",
    "PowerModel",
    "POWER_CONFIGS",
    "power_config",
    "available_power_configs",
]


@dataclass(frozen=True)
class TypePower:
    """Electrical behaviour of one resource type's processors.

    Attributes
    ----------
    busy:
        Draw while executing a task (also charged during wake-up).
    idle:
        Draw while powered on with no task.
    sleep:
        Draw while shut down (usually ~0).
    shutdown_window:
        Idle time a processor waits before powering down; ``None``
        disables shutdown for the type.
    wake_latency:
        Time (charged at busy draw) to power back up.
    """

    busy: float = 1.0
    idle: float = 0.3
    sleep: float = 0.0
    shutdown_window: float | None = None
    wake_latency: float = 0.0

    def __post_init__(self) -> None:
        busy, idle, sleep = float(self.busy), float(self.idle), float(self.sleep)
        wake = float(self.wake_latency)
        for label, value in (("busy", busy), ("idle", idle), ("sleep", sleep)):
            if not math.isfinite(value) or value < 0.0:
                raise ConfigurationError(
                    f"{label} power must be finite and >= 0, got {value!r}"
                )
        if not busy >= idle >= sleep:
            raise ConfigurationError(
                f"power draws must satisfy busy >= idle >= sleep, got "
                f"busy={busy}, idle={idle}, sleep={sleep}"
            )
        if not math.isfinite(wake) or wake < 0.0:
            raise ConfigurationError(
                f"wake latency must be finite and >= 0, got {self.wake_latency!r}"
            )
        window = self.shutdown_window
        if window is not None:
            window = float(window)
            if not math.isfinite(window) or window < 0.0:
                raise ConfigurationError(
                    f"shutdown window must be finite and >= 0 (or None), "
                    f"got {self.shutdown_window!r}"
                )
        object.__setattr__(self, "busy", busy)
        object.__setattr__(self, "idle", idle)
        object.__setattr__(self, "sleep", sleep)
        object.__setattr__(self, "shutdown_window", window)
        object.__setattr__(self, "wake_latency", wake)

    def fingerprint(self) -> dict:
        """Canonical dict for result-cache keys (every field)."""
        return {
            "busy": self.busy,
            "idle": self.idle,
            "sleep": self.sleep,
            "shutdown_window": self.shutdown_window,
            "wake_latency": self.wake_latency,
        }


@dataclass(frozen=True)
class PowerModel:
    """Per-type power declaration for a K-type system.

    ``types[alpha]`` is the :class:`TypePower` of every type-``alpha``
    processor; ``name`` labels the model in reports and the service
    response (it is presentation only and deliberately *not* part of
    the fingerprint — two models with identical physics share cache
    entries soundly).
    """

    types: tuple[TypePower, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.types:
            raise ConfigurationError("a power model needs at least one type")
        object.__setattr__(self, "types", tuple(self.types))

    @property
    def num_types(self) -> int:
        return len(self.types)

    @classmethod
    def uniform(
        cls,
        num_types: int,
        busy: float = 1.0,
        idle: float = 0.3,
        sleep: float = 0.0,
        shutdown_window: float | None = None,
        wake_latency: float = 0.0,
        name: str = "custom",
    ) -> "PowerModel":
        """One shared :class:`TypePower` across all ``num_types`` types."""
        if num_types < 1:
            raise ConfigurationError(f"num_types must be >= 1, got {num_types}")
        tp = TypePower(busy, idle, sleep, shutdown_window, wake_latency)
        return cls(types=(tp,) * num_types, name=name)

    def check_types(self, num_types: int) -> "PowerModel":
        """Validate the model against a system's K; returns self."""
        if self.num_types != num_types:
            raise ConfigurationError(
                f"power model {self.name!r} declares {self.num_types} types "
                f"but the system has K={num_types}"
            )
        return self

    # -- vectorized views (metrics hot path) ---------------------------
    def busy_array(self) -> np.ndarray:
        return np.array([t.busy for t in self.types], dtype=np.float64)

    def idle_array(self) -> np.ndarray:
        return np.array([t.idle for t in self.types], dtype=np.float64)

    def sleep_array(self) -> np.ndarray:
        return np.array([t.sleep for t in self.types], dtype=np.float64)

    def window_array(self) -> np.ndarray:
        """Shutdown windows with ``None`` mapped to ``+inf`` (never sleeps)."""
        return np.array(
            [
                np.inf if t.shutdown_window is None else t.shutdown_window
                for t in self.types
            ],
            dtype=np.float64,
        )

    def wake_array(self) -> np.ndarray:
        return np.array([t.wake_latency for t in self.types], dtype=np.float64)

    def fingerprint(self) -> dict:
        """Canonical dict for result-cache keys.

        Covers every :class:`TypePower` field of every type; the
        presentation ``name`` is excluded (identical physics must share
        cache entries).
        """
        return {"types": [t.fingerprint() for t in self.types]}


# ----------------------------------------------------------------------
# named configurations (the energy experiment's power sweep)
# ----------------------------------------------------------------------
#: Idle draws cycled across types by the ``hetero`` config — spread wide
#: enough that idle-power-weighted utilization balancing (EMQB) orders
#: types differently from plain utilization balancing.
_HETERO_IDLE = (0.55, 0.15, 0.4, 0.25, 0.5, 0.2)


def _baseline(k: int) -> PowerModel:
    return PowerModel.uniform(k, busy=1.0, idle=0.3, name="baseline")


def _idle_heavy(k: int) -> PowerModel:
    return PowerModel.uniform(k, busy=1.0, idle=0.6, name="idle-heavy")


def _hetero(k: int) -> PowerModel:
    return PowerModel(
        types=tuple(
            TypePower(busy=1.0, idle=_HETERO_IDLE[a % len(_HETERO_IDLE)])
            for a in range(k)
        ),
        name="hetero",
    )


def _shutdown(k: int) -> PowerModel:
    return PowerModel.uniform(
        k, busy=1.0, idle=0.3, sleep=0.02, shutdown_window=4.0,
        wake_latency=1.0, name="shutdown",
    )


#: Named power configurations, resolvable for any K.
POWER_CONFIGS: dict[str, object] = {
    "baseline": _baseline,
    "idle-heavy": _idle_heavy,
    "hetero": _hetero,
    "shutdown": _shutdown,
}


def power_config(name: str, num_types: int) -> PowerModel:
    """Resolve a named power configuration for a K-type system."""
    key = str(name).strip().lower()
    factory = POWER_CONFIGS.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown power config {name!r}; known: {available_power_configs()}"
        )
    if num_types < 1:
        raise ConfigurationError(f"num_types must be >= 1, got {num_types}")
    return factory(num_types)  # type: ignore[operator]


def available_power_configs() -> list[str]:
    """All names accepted by :func:`power_config`."""
    return sorted(POWER_CONFIGS)
