"""Fault-aware non-preemptive simulation: FAIL/REPAIR events.

This engine extends the event-heap structure of
:mod:`repro.sim.engine` with two new event kinds driven by a
:class:`~repro.faults.models.FaultTimeline`:

* **FAIL(alpha, proc)** — the processor goes down.  If it was running
  a segment, the segment is *killed*: it is recorded in the trace with
  ``killed=True`` and the victim task re-enters the ready pool at the
  failure instant.  Under the default fail-stop ``"restart"`` policy
  the victim restarts from scratch (the killed interval is wasted
  work); under ``"checkpoint"`` it resumes with only its remaining
  work (lost-in-flight state is assumed checkpointed).
* **REPAIR(alpha, proc)** — the processor comes back and immediately
  rejoins the free pool.

Schedulers observe failures two ways: the free counts passed to
:meth:`~repro.schedulers.base.Scheduler.assign` only ever include *up*
processors, and every FAIL/REPAIR triggers the
:meth:`~repro.schedulers.base.Scheduler.capacity_changed` hook with
the type's new up-count.  Event ordering at one instant is completions
first, then repairs, then failures — a task finishing exactly when its
processor dies has completed, and back-to-back outages net out before
the next decision round.

**λ=0 guarantee**: with an empty (or ``None``) timeline this engine
performs exactly the same sequence of scheduler calls, float
operations and heap pops as :func:`repro.sim.engine.simulate`, so
makespans and decision counts are bit-for-bit identical (asserted by
``tests/faults/test_engine_equivalence.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError, SchedulingError
from repro.faults.models import FaultTimeline
from repro.obs.events import (
    COMPLETE,
    DECISION,
    FAIL,
    KILL,
    REPAIR,
    SAMPLE,
    SLICE,
)
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import Scheduler
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["FaultScheduleResult", "simulate_with_faults", "POLICIES"]

#: Recovery policies for killed tasks.
POLICIES = ("restart", "checkpoint")

# Event kinds, ordered within one instant: completions resolve before
# repairs so a task finishing as its processor is repaired elsewhere
# frees capacity first, and failures come last so a completion at the
# failure instant counts as finished, not killed.
_COMPLETE, _REPAIR, _FAIL = 0, 1, 2


@dataclass(frozen=True)
class FaultScheduleResult(ScheduleResult):
    """A :class:`~repro.sim.result.ScheduleResult` plus fault accounting.

    Attributes
    ----------
    timeline:
        The injected failure timeline the run executed against.
    policy:
        ``"restart"`` or ``"checkpoint"``.
    kills:
        Number of segments killed by failures.
    wasted_work:
        Total work destroyed by kills (0 under ``"checkpoint"``).
    """

    timeline: FaultTimeline | None = None
    policy: str = "restart"
    kills: int = 0
    wasted_work: float = 0.0


def simulate_with_faults(
    job: KDag,
    resources: ResourceConfig,
    scheduler: Scheduler,
    timeline: FaultTimeline | None = None,
    policy: str = "restart",
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
    max_kills: int | None = None,
    telemetry: Telemetry | None = None,
) -> FaultScheduleResult:
    """Run ``scheduler`` on ``job`` under injected processor failures.

    Parameters
    ----------
    timeline:
        Down intervals per processor (``None`` or empty: fault-free,
        bit-identical to :func:`repro.sim.engine.simulate`).
    policy:
        ``"restart"`` (fail-stop re-execution, the default) or
        ``"checkpoint"`` (resume with remaining work).
    max_kills:
        Livelock guard: abort with :class:`SchedulingError` after this
        many kills (default ``10 * n_tasks + 1000``) — deterministic
        maintenance windows shorter than a task's work would otherwise
        restart it forever.
    telemetry:
        Observability context (:mod:`repro.obs`); ``None`` or disabled
        keeps the run bit-identical to an uninstrumented engine.
        Enabled runs additionally record FAIL/REPAIR/KILL events and
        kill/wasted-work counters.

    Raises
    ------
    SchedulingError
        On scheduler protocol violations (as the fault-free engine),
        on permanent starvation (tasks pending, every capable
        processor down forever), or when ``max_kills`` is exceeded.
    """
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown fault policy {policy!r}; known: {list(POLICIES)}"
        )
    if timeline is not None:
        timeline.check_procs(resources)
    kill_budget = max_kills if max_kills is not None else 10 * job.n_tasks + 1000

    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    scheduler.attach_telemetry(obs)
    if obs is None:
        scheduler.prepare(job, resources, rng)
    else:
        _t0 = perf_counter()
        scheduler.prepare(job, resources, rng)
        obs.add_time("phase.prepare", perf_counter() - _t0)
    k = job.num_types
    n = job.n_tasks
    types = job.types.tolist()
    work = job.work.tolist()
    child_ptr = job.child_ptr.tolist()
    child_idx = job.child_idx.tolist()

    indeg = job.in_degrees().tolist()
    state = [0] * n  # 0 pending, 1 ready, 2 running, 3 done
    remaining = list(work)  # work left per task (changes only on checkpoint)
    free = list(resources.counts)
    free_procs: list[list[int]] = [list(range(c - 1, -1, -1)) for c in resources.counts]
    up = list(resources.counts)
    # Per-processor run state; token pairs a completion event with the
    # dispatch that scheduled it, so completions of killed segments are
    # recognized as stale and skipped.
    run_task: list[list[int]] = [[-1] * c for c in resources.counts]
    run_start: list[list[float]] = [[0.0] * c for c in resources.counts]
    run_token: list[list[int]] = [[-1] * c for c in resources.counts]
    trace = ScheduleTrace() if record_trace else None

    # Events: (time, kind, seq, a, b) — completions carry (task, proc),
    # FAIL/REPAIR carry (alpha, proc).  kind orders same-instant events;
    # seq keeps comparisons away from payload ties and pop order stable.
    events: list[tuple[float, int, int, int, int]] = []
    seq = 0
    if timeline is not None:
        for time, kind, alpha, proc in timeline.events():
            code = _FAIL if kind == "fail" else _REPAIR
            events.append((time, code, seq, alpha, proc))
            seq += 1
    heapq.heapify(events)

    n_ready = 0
    completed = 0
    decisions = 0
    kills = 0
    wasted = 0.0
    now = 0.0
    makespan = 0.0

    for v in job.sources():
        vi = int(v)
        state[vi] = 1
        n_ready += 1
        scheduler.task_ready(vi, now, remaining[vi])

    # Outages starting exactly at t=0 take their processors down before
    # the first decision round (nothing is running yet, so these can
    # only be FAIL events on idle processors).
    while events and events[0][0] == 0.0:
        _, kind, _, alpha, proc = heapq.heappop(events)
        assert kind == _FAIL
        up[alpha] -= 1
        free_procs[alpha].remove(proc)
        free[alpha] -= 1
        scheduler.capacity_changed(alpha, up[alpha], now)
        if obs is not None:
            obs.emit(FAIL, now, alpha=alpha, proc=proc)

    assign = scheduler.assign if obs is None else scheduler.on_decision
    heap_peak = 0
    _t_loop = perf_counter() if obs is not None else 0.0

    heappush, heappop = heapq.heappush, heapq.heappop
    while completed < n:
        # ---- decision round at time `now` ----
        if n_ready and any(
            free[a] and scheduler.pending(a) for a in range(k)
        ):
            decisions += 1
            chosen = assign(free, now)
            counts_this_round = [0] * k
            for task in chosen:
                if state[task] != 1:
                    raise SchedulingError(
                        f"{scheduler.name} started task {task} in state "
                        f"{state[task]} (not ready)"
                    )
                alpha = types[task]
                counts_this_round[alpha] += 1
                if counts_this_round[alpha] > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name} oversubscribed type {alpha} "
                        f"({counts_this_round[alpha]} > {free[alpha]} free)"
                    )
                state[task] = 2
                n_ready -= 1
                proc = free_procs[alpha].pop()
                finish = now + remaining[task]
                heappush(events, (finish, _COMPLETE, seq, task, proc))
                run_task[alpha][proc] = task
                run_start[alpha][proc] = now
                run_token[alpha][proc] = seq
                seq += 1
            for alpha, c in enumerate(counts_this_round):
                free[alpha] -= c
            if obs is not None:
                obs.emit(DECISION, now, n=len(chosen))
                if len(events) > heap_peak:
                    heap_peak = len(events)

        if obs is not None:
            obs.emit(
                SAMPLE, now,
                ready=[scheduler.pending(a) for a in range(k)],
                free=list(free),
                up=list(up),
            )

        # `completed < n` guarantees unfinished work; with no events at
        # all there is neither running work nor any future repair, so
        # the run can never finish.
        if not events:
            down = [resources.counts[a] - up[a] for a in range(k)]
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: {n_ready} ready, "
                f"{n - completed} unfinished, nothing running "
                f"(down processors per type: {down})"
            )

        # ---- advance to the next event instant ----
        now = events[0][0]
        while events and events[0][0] == now:
            _, kind, token, a, b = heappop(events)

            if kind == _COMPLETE:
                task, proc = a, b
                alpha = types[task]
                if run_token[alpha][proc] != token:
                    continue  # stale completion of a killed segment
                run_task[alpha][proc] = -1
                run_token[alpha][proc] = -1
                state[task] = 3
                completed += 1
                free[alpha] += 1
                free_procs[alpha].append(proc)
                makespan = now
                if trace is not None:
                    trace.add(task, alpha, proc, run_start[alpha][proc], now)
                if obs is not None:
                    obs.emit(SLICE, run_start[alpha][proc], task=task,
                             alpha=alpha, proc=proc, end=now)
                    obs.emit(COMPLETE, now, task=task, alpha=alpha, proc=proc)
                scheduler.task_finished(task, now)
                for ei in range(child_ptr[task], child_ptr[task + 1]):
                    ci = child_idx[ei]
                    left = indeg[ci] - 1
                    indeg[ci] = left
                    if left == 0:
                        state[ci] = 1
                        n_ready += 1
                        scheduler.task_ready(ci, now, remaining[ci])

            elif kind == _REPAIR:
                alpha, proc = a, b
                up[alpha] += 1
                free[alpha] += 1
                free_procs[alpha].append(proc)
                scheduler.capacity_changed(alpha, up[alpha], now)
                if obs is not None:
                    obs.emit(REPAIR, now, alpha=alpha, proc=proc)

            else:  # _FAIL
                alpha, proc = a, b
                up[alpha] -= 1
                if obs is not None:
                    obs.emit(FAIL, now, alpha=alpha, proc=proc)
                victim = run_task[alpha][proc]
                if victim >= 0:
                    start = run_start[alpha][proc]
                    run_task[alpha][proc] = -1
                    run_token[alpha][proc] = -1
                    kills += 1
                    if kills > kill_budget:
                        raise SchedulingError(
                            f"{scheduler.name}: {kills} kills exceed the "
                            f"livelock guard ({kill_budget}); the fault "
                            f"timeline likely never leaves task {victim} "
                            f"a window long enough to finish"
                        )
                    if now > start:
                        if trace is not None:
                            trace.add(
                                victim, alpha, proc, start, now, killed=True
                            )
                        if obs is not None:
                            obs.emit(SLICE, start, task=victim, alpha=alpha,
                                     proc=proc, end=now, killed=True)
                            obs.emit(KILL, now, task=victim, alpha=alpha,
                                     proc=proc, start=start,
                                     lost=(now - start if policy != "checkpoint"
                                           else 0.0))
                        if policy == "checkpoint":
                            # finish - now of the killed dispatch:
                            remaining[victim] = (start + remaining[victim]) - now
                        else:
                            wasted += now - start
                    state[victim] = 1
                    n_ready += 1
                    scheduler.task_ready(victim, now, remaining[victim])
                else:
                    free_procs[alpha].remove(proc)
                    free[alpha] -= 1
                scheduler.capacity_changed(alpha, up[alpha], now)

    if obs is not None:
        obs.add_time("phase.engine_loop", perf_counter() - _t_loop)
        obs.inc("engine.runs")
        obs.inc("engine.tasks", n)
        obs.inc("engine.decisions", decisions)
        obs.inc("engine.events_pushed", seq)
        obs.inc("engine.kills", kills)
        obs.observe("engine.heap_peak", heap_peak)
        obs.observe("engine.wasted_work", wasted)

    return FaultScheduleResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        preemptive=False,
        trace=trace,
        decisions=decisions,
        timeline=timeline if timeline is not None else FaultTimeline(),
        policy=policy,
        kills=kills,
        wasted_work=wasted,
    )
