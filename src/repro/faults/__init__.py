"""Fault tolerance: failure injection, fault-aware simulation, metrics.

The paper (and the fault-free engines in :mod:`repro.sim`) assume a
fixed processor pool; this package makes per-type capacity ``P_alpha``
a function of time.  :mod:`~repro.faults.models` generates seeded
failure/repair timelines, :mod:`~repro.faults.engine` executes a
scheduler against one (killing in-flight segments and re-enqueueing
victims), :mod:`~repro.faults.metrics` quantifies the damage, and
:mod:`~repro.faults.validate` checks fault-run traces for legality.
The robustness experiment sweeping failure rate × workload cell over
all six paper schedulers lives in
:mod:`repro.experiments.robustness`.
"""

from repro.faults.engine import (
    POLICIES,
    FaultScheduleResult,
    simulate_with_faults,
)
from repro.faults.metrics import (
    goodput,
    makespan_inflation,
    waste_fraction,
    wasted_work,
)
from repro.faults.models import (
    FAULT_MODELS,
    CorrelatedRackFaults,
    ExponentialFaults,
    FaultModel,
    FaultTimeline,
    MaintenanceWindows,
    NoFaults,
    Outage,
    make_fault_model,
)
from repro.faults.validate import (
    check_no_downtime_overlap,
    validate_fault_schedule,
)

__all__ = [
    "Outage",
    "FaultTimeline",
    "FaultModel",
    "NoFaults",
    "ExponentialFaults",
    "MaintenanceWindows",
    "CorrelatedRackFaults",
    "FAULT_MODELS",
    "make_fault_model",
    "FaultScheduleResult",
    "simulate_with_faults",
    "POLICIES",
    "wasted_work",
    "goodput",
    "waste_fraction",
    "makespan_inflation",
    "validate_fault_schedule",
    "check_no_downtime_overlap",
]
