"""Failure/repair timeline generation for fault injection.

A :class:`FaultTimeline` is the ground truth the fault-aware engine
executes against: per processor ``(alpha, proc)``, a sorted list of
disjoint *down intervals* ``[start, end)`` during which the processor
can run nothing.  Timelines are produced by :class:`FaultModel`
implementations from a seeded ``np.random.Generator``, so fault runs
are exactly reproducible and shard across worker processes like every
other sweep in this repository:

* :class:`NoFaults` — the empty timeline (the λ=0 control; the engine
  is bit-identical to :func:`repro.sim.engine.simulate` on it).
* :class:`ExponentialFaults` — the classic MTBF/MTTR renewal process:
  per processor, exponential up-times (mean ``mtbf``) alternate with
  exponential down-times (mean ``mttr``) until the horizon.
* :class:`MaintenanceWindows` — deterministic periodic windows
  (staggered per processor), modelling planned maintenance.
* :class:`CorrelatedRackFaults` — processors are grouped into "racks"
  of consecutive global indices; each rack fails as a unit, modelling
  shared power/network domains.  This is the stress case for
  utilization balancing: a rack outage can wipe out most of one type's
  capacity at once.

Machine availability as a first-class scheduling concern follows the
busy-time literature on heterogeneous machines (arXiv:2105.06287) and
the robustness motivation of decentralized list scheduling
(arXiv:1107.3734).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, ValidationError
from repro.system.resources import ResourceConfig

__all__ = [
    "Outage",
    "FaultTimeline",
    "FaultModel",
    "NoFaults",
    "ExponentialFaults",
    "MaintenanceWindows",
    "CorrelatedRackFaults",
    "FAULT_MODELS",
    "make_fault_model",
]


@dataclass(frozen=True, slots=True)
class Outage:
    """One down interval ``[start, end)`` of one processor."""

    alpha: int
    proc: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValidationError(
                f"outage starts at negative time {self.start}"
            )
        if self.end <= self.start:
            raise ValidationError(
                f"outage for ({self.alpha}, {self.proc}) has non-positive "
                f"duration [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class FaultTimeline:
    """Sorted, disjoint down intervals per processor.

    Overlapping or touching intervals of the same processor are merged
    at construction, so consumers can rely on a strictly increasing
    ``... end_i < start_{i+1} ...`` sequence per processor.
    """

    def __init__(self, outages: Iterable[Outage] = ()) -> None:
        by_proc: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for o in outages:
            by_proc.setdefault((o.alpha, o.proc), []).append((o.start, o.end))
        merged: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for key, intervals in by_proc.items():
            intervals.sort()
            out: list[tuple[float, float]] = []
            for s, e in intervals:
                if out and s <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], e))
                else:
                    out.append((s, e))
            merged[key] = out
        self._by_proc = merged

    # -- queries --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._by_proc

    @property
    def n_outages(self) -> int:
        return sum(len(v) for v in self._by_proc.values())

    def down_intervals(self, alpha: int, proc: int) -> list[tuple[float, float]]:
        """Sorted disjoint down intervals of one processor."""
        return list(self._by_proc.get((alpha, proc), ()))

    def __iter__(self) -> Iterator[Outage]:
        for (alpha, proc), intervals in sorted(self._by_proc.items()):
            for s, e in intervals:
                yield Outage(alpha, proc, s, e)

    def events(self) -> list[tuple[float, str, int, int]]:
        """All ``(time, "fail"|"repair", alpha, proc)`` events, sorted."""
        out: list[tuple[float, str, int, int]] = []
        for (alpha, proc), intervals in self._by_proc.items():
            for s, e in intervals:
                out.append((s, "fail", alpha, proc))
                out.append((e, "repair", alpha, proc))
        out.sort(key=lambda t: (t[0], t[1] != "repair", t[2], t[3]))
        return out

    def total_downtime(self, alpha: int | None = None) -> float:
        """Summed down-interval length (optionally for one type)."""
        return sum(
            e - s
            for (a, _), intervals in self._by_proc.items()
            if alpha is None or a == alpha
            for s, e in intervals
        )

    def is_down(self, alpha: int, proc: int, time: float) -> bool:
        """Whether the processor is down at ``time``."""
        return any(
            s <= time < e for s, e in self._by_proc.get((alpha, proc), ())
        )

    def check_procs(self, resources: ResourceConfig) -> None:
        """Raise unless every referenced processor exists in ``resources``."""
        for alpha, proc in self._by_proc:
            if not 0 <= alpha < resources.num_types:
                raise ValidationError(
                    f"timeline references type {alpha} but K={resources.num_types}"
                )
            if not 0 <= proc < resources.counts[alpha]:
                raise ValidationError(
                    f"timeline references processor ({alpha}, {proc}) but "
                    f"type {alpha} has only {resources.counts[alpha]} processors"
                )


class FaultModel(ABC):
    """A distribution over failure/repair timelines."""

    @abstractmethod
    def sample(
        self,
        resources: ResourceConfig,
        horizon: float,
        rng: np.random.Generator,
    ) -> FaultTimeline:
        """Draw one timeline covering ``[0, horizon)``.

        No *new* failures start at or after ``horizon``; a repair may
        extend past it.  Sampling iterates processors in type-major
        order with a single generator, so one seed fully determines the
        timeline.
        """


def _check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def _renewal_outages(
    alpha: int,
    proc: int,
    mtbf: float,
    mttr: float,
    horizon: float,
    rng: np.random.Generator,
) -> list[Outage]:
    """Alternating exponential up/down intervals for one processor."""
    out: list[Outage] = []
    if not math.isfinite(mtbf):
        return out
    t = 0.0
    while True:
        t += float(rng.exponential(mtbf))
        if t >= horizon:
            return out
        down = float(rng.exponential(mttr))
        if down > 0.0:
            out.append(Outage(alpha, proc, t, t + down))
        t += down


@dataclass(frozen=True)
class NoFaults(FaultModel):
    """The empty timeline — the λ=0 control."""

    def sample(
        self,
        resources: ResourceConfig,
        horizon: float,
        rng: np.random.Generator,
    ) -> FaultTimeline:
        return FaultTimeline()


@dataclass(frozen=True)
class ExponentialFaults(FaultModel):
    """Independent per-processor MTBF/MTTR renewal processes.

    ``mtbf`` is the mean up-time between a repair and the next failure
    (``math.inf`` disables failures entirely); ``mttr`` the mean repair
    time.  Both in the same time unit as task work.
    """

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ConfigurationError(f"mtbf must be > 0, got {self.mtbf}")
        _check_positive("mttr", self.mttr)

    def sample(
        self,
        resources: ResourceConfig,
        horizon: float,
        rng: np.random.Generator,
    ) -> FaultTimeline:
        _check_positive("horizon", horizon)
        outages: list[Outage] = []
        for alpha in range(resources.num_types):
            for proc in range(resources.counts[alpha]):
                outages.extend(
                    _renewal_outages(
                        alpha, proc, self.mtbf, self.mttr, horizon, rng
                    )
                )
        return FaultTimeline(outages)


@dataclass(frozen=True)
class MaintenanceWindows(FaultModel):
    """Deterministic periodic maintenance windows.

    Every processor goes down for ``duration`` every ``period`` time
    units, its first window starting at ``offset + stagger * g`` where
    ``g`` is the processor's global (type-major) index.  ``stagger > 0``
    staggers windows so capacity never drops to zero at once;
    ``stagger = 0`` models a synchronized full-system maintenance.
    The sampled timeline ignores ``rng`` — it is deterministic.
    """

    period: float
    duration: float
    offset: float = 0.0
    stagger: float = 0.0

    def __post_init__(self) -> None:
        _check_positive("period", self.period)
        _check_positive("duration", self.duration)
        if self.duration >= self.period:
            raise ConfigurationError(
                f"duration {self.duration} must be < period {self.period}"
            )
        if self.offset < 0 or self.stagger < 0:
            raise ConfigurationError("offset and stagger must be >= 0")

    def sample(
        self,
        resources: ResourceConfig,
        horizon: float,
        rng: np.random.Generator,
    ) -> FaultTimeline:
        _check_positive("horizon", horizon)
        outages: list[Outage] = []
        g = 0
        for alpha in range(resources.num_types):
            for proc in range(resources.counts[alpha]):
                first = self.offset + self.stagger * g
                start = first
                while start < horizon:
                    if start + self.duration > 0:
                        outages.append(
                            Outage(
                                alpha, proc, max(start, 0.0),
                                start + self.duration,
                            )
                        )
                    start += self.period
                g += 1
        return FaultTimeline(outages)


@dataclass(frozen=True)
class CorrelatedRackFaults(FaultModel):
    """Rack-level outages: groups of processors fail together.

    Processors are numbered globally in type-major order and grouped
    into racks of ``rack_size`` consecutive indices (so a rack can span
    a type boundary, as physical racks mix machine roles).  Each rack
    follows one MTBF/MTTR renewal process; all of its processors share
    the rack's down intervals.
    """

    rack_size: int
    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if self.rack_size < 1:
            raise ConfigurationError(
                f"rack_size must be >= 1, got {self.rack_size}"
            )
        if not self.mtbf > 0:
            raise ConfigurationError(f"mtbf must be > 0, got {self.mtbf}")
        _check_positive("mttr", self.mttr)

    def sample(
        self,
        resources: ResourceConfig,
        horizon: float,
        rng: np.random.Generator,
    ) -> FaultTimeline:
        _check_positive("horizon", horizon)
        procs = [
            (alpha, proc)
            for alpha in range(resources.num_types)
            for proc in range(resources.counts[alpha])
        ]
        outages: list[Outage] = []
        for lo in range(0, len(procs), self.rack_size):
            rack = procs[lo : lo + self.rack_size]
            rack_outages = _renewal_outages(
                0, 0, self.mtbf, self.mttr, horizon, rng
            )
            for o in rack_outages:
                for alpha, proc in rack:
                    outages.append(Outage(alpha, proc, o.start, o.end))
        return FaultTimeline(outages)


#: Registry names for CLI/experiment construction.
FAULT_MODELS = ("none", "exponential", "maintenance", "rack")


def make_fault_model(name: str, **kwargs) -> FaultModel:
    """Construct a fault model from its registry name."""
    key = name.strip().lower()
    if key == "none":
        return NoFaults()
    if key == "exponential":
        return ExponentialFaults(**kwargs)
    if key == "maintenance":
        return MaintenanceWindows(**kwargs)
    if key == "rack":
        return CorrelatedRackFaults(**kwargs)
    raise ConfigurationError(
        f"unknown fault model {name!r}; known: {sorted(FAULT_MODELS)}"
    )
