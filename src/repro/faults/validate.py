"""Legality checking of fault-run schedules.

:func:`validate_fault_schedule` extends
:func:`repro.sim.validate.validate_schedule` (whose ``check_*``
helpers it reuses) to traces produced by
:func:`repro.faults.engine.simulate_with_faults`:

1. Type matching and processor-index membership (as fault-free).
2. Processor exclusivity and no intra-task parallelism over **all**
   segments — a killed segment occupied its processor too.
3. **No execution during downtime** — no segment may overlap a down
   interval of its processor.  A killed segment ending exactly at the
   failure instant, or a segment starting exactly at a repair, is
   legal (half-open intervals).
4. **Completion structure** — every task has exactly one surviving
   (non-killed) segment: the run that completed it (the engine is
   non-preemptive).
5. **Work conservation, policy-aware** — under ``"restart"`` the
   surviving segments alone carry each task's work (killed work is
   wasted); under ``"checkpoint"`` killed progress counts, so *all*
   segments together must sum to the work vector.
6. Precedence against the parent's *completion* (surviving end) and
   makespan consistency, as fault-free.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ValidationError
from repro.faults.models import FaultTimeline
from repro.sim.trace import ScheduleTrace
from repro.sim.validate import (
    check_exclusivity,
    check_intra_task,
    check_makespan,
    check_precedence,
    group_segments,
)
from repro.system.resources import ResourceConfig

__all__ = ["validate_fault_schedule", "check_no_downtime_overlap"]

_EPS = 1e-9


def check_no_downtime_overlap(
    trace: ScheduleTrace, timeline: FaultTimeline
) -> None:
    """Check 3: no segment overlaps a down interval of its processor."""
    down_cache: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for seg in trace:
        key = (seg.alpha, seg.proc)
        intervals = down_cache.get(key)
        if intervals is None:
            intervals = down_cache[key] = timeline.down_intervals(*key)
        for s, e in intervals:
            if seg.start < e - _EPS and s < seg.end - _EPS:
                raise ValidationError(
                    f"task {seg.task} executed on ({seg.alpha}, {seg.proc}) "
                    f"during its down interval: segment "
                    f"[{seg.start}, {seg.end}) vs outage [{s}, {e})"
                )


def validate_fault_schedule(
    job: KDag,
    resources: ResourceConfig,
    trace: ScheduleTrace,
    timeline: FaultTimeline,
    makespan: float | None = None,
    policy: str = "restart",
    tol: float = 1e-6,
) -> None:
    """Raise :class:`ValidationError` unless ``trace`` is a legal fault run.

    Parameters
    ----------
    timeline:
        The injected failure timeline the run executed against.
    policy:
        The recovery policy the engine ran with — decides whether
        killed segments count toward work conservation.
    """
    if job.num_types != resources.num_types:
        raise ValidationError("job and resources disagree on K")
    if policy not in ("restart", "checkpoint"):
        raise ValidationError(f"unknown fault policy {policy!r}")
    timeline.check_procs(resources)

    n = job.n_tasks
    per_task, per_proc = group_segments(job, resources, trace)

    # Completion structure: exactly one surviving segment per task.
    for task, segs in per_task.items():
        survivors = [s for s in segs if not s.killed]
        if len(survivors) != 1:
            raise ValidationError(
                f"task {task} has {len(survivors)} surviving segments "
                f"(fault runs are non-preemptive: expected exactly 1)"
            )

    # Work conservation, policy-aware.
    credited = (
        trace.executed_work(n)
        if policy == "checkpoint"
        else trace.surviving_work(n)
    )
    bad = np.flatnonzero(np.abs(credited - job.work) > tol)
    if bad.size:
        v = int(bad[0])
        raise ValidationError(
            f"task {v} was credited {credited[v]:g} units of its "
            f"{job.work[v]:g} work under the {policy!r} policy"
        )

    check_exclusivity(per_proc)
    check_intra_task(per_task)
    check_no_downtime_overlap(trace, timeline)

    # Precedence: a child may start only after the parent *completed* —
    # the end of its unique surviving segment.
    first_start = np.full(n, np.inf)
    completion = np.full(n, -np.inf)
    for task, segs in per_task.items():
        first_start[task] = min(s.start for s in segs)
        completion[task] = next(s.end for s in segs if not s.killed)
    check_precedence(job, first_start, completion, tol)

    if makespan is not None:
        check_makespan(trace, makespan, tol)
