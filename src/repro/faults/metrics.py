"""Robustness metrics for fault-run schedules.

Layered on the extended :class:`~repro.sim.trace.ScheduleTrace` (killed
segments) and :class:`~repro.faults.engine.FaultScheduleResult`:

* :func:`wasted_work` — total duration of killed segments, the work a
  fail-stop policy throws away.
* :func:`goodput` — surviving (useful) work per unit of schedule time;
  the fault analogue of average utilization.
* :func:`waste_fraction` — killed / (killed + surviving) executed
  time, in ``[0, 1]``.
* :func:`makespan_inflation` — ``T_faulty / T_fault_free`` for the
  same (job, system, scheduler); 1.0 means failures cost nothing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace

__all__ = [
    "wasted_work",
    "goodput",
    "waste_fraction",
    "makespan_inflation",
]


def wasted_work(trace: ScheduleTrace) -> float:
    """Total executed duration of killed segments."""
    cols = trace.as_columns()
    killed = cols["killed"]
    return float(np.sum((cols["end"] - cols["start"])[killed]))


def goodput(trace: ScheduleTrace, makespan: float | None = None) -> float:
    """Surviving work per unit time over the schedule.

    With ``makespan`` omitted the trace's own makespan is used.  For a
    fault-free single-job run this equals ``total_work / makespan``.
    """
    t_end = trace.makespan() if makespan is None else float(makespan)
    if t_end <= 0:
        raise ValidationError("schedule has zero length")
    cols = trace.as_columns()
    alive = ~cols["killed"]
    surviving = float(np.sum((cols["end"] - cols["start"])[alive]))
    return surviving / t_end


def waste_fraction(trace: ScheduleTrace) -> float:
    """Killed fraction of all executed processor time, in ``[0, 1]``."""
    cols = trace.as_columns()
    durations = cols["end"] - cols["start"]
    total = float(durations.sum())
    if total <= 0:
        return 0.0
    return float(durations[cols["killed"]].sum()) / total


def makespan_inflation(faulty_makespan: float, fault_free_makespan: float) -> float:
    """``T_faulty / T_fault_free`` — how much failures stretched the run."""
    if fault_free_makespan <= 0:
        raise ValidationError(
            f"fault-free makespan must be > 0, got {fault_free_makespan}"
        )
    return faulty_makespan / fault_free_makespan
