"""Telemetry context: counters, timers and histograms for one run.

The observability layer follows one rule everywhere: **pay only when
enabled**.  Engines resolve the telemetry argument once, before their
event loop::

    obs = telemetry if (telemetry is not None and telemetry.enabled) else None

and every instrumented site is either selected up front (e.g. the
decision-timing wrapper :meth:`repro.schedulers.base.Scheduler.on_decision`
replaces ``assign`` only when ``obs`` is not ``None``) or guarded by a
single ``obs is not None`` check, so the disabled path performs the
exact same arithmetic, scheduler calls and heap operations as an
uninstrumented engine — results are bit-identical and the wall-clock
cost is within noise (asserted by ``tests/obs/test_overhead.py``).

Three aggregate families, all mergeable across processes:

* **counters** — monotonically increasing integers (``inc``); merges
  by summation, so totals are independent of how a sweep was sharded.
* **timers** — accumulated wall seconds plus a call count
  (``add_time`` / the ``timer`` context manager); keyed by convention
  as ``phase.<name>`` for engine phases and ``decision.<scheduler>``
  for per-scheduler decision costs.
* **histograms** — running ``(count, sum, min, max)`` summaries of a
  sampled value (``observe``), e.g. the event-heap peak size.

:meth:`Telemetry.snapshot` freezes the aggregates into a picklable
:class:`TelemetrySnapshot`; snapshots merge associatively, which is
what lets :mod:`repro.experiments.parallel` profile a sharded sweep —
each worker chunk returns its own snapshot and the parent folds them
in instance order.  Counter merges are exact for any worker count;
timer totals are float sums whose last bits may depend on chunking
(documented, not asserted).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.events import EventStream

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "merge_snapshots",
]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Frozen, picklable aggregate state of one :class:`Telemetry`.

    Attributes
    ----------
    counters:
        ``name -> int`` monotone counts.
    timers:
        ``name -> (total_seconds, calls)``.
    histograms:
        ``name -> (count, sum, min, max)`` of the observed values.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, tuple[float, int]] = field(default_factory=dict)
    histograms: dict[str, tuple[int, float, float, float]] = field(
        default_factory=dict
    )

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots (associative, identity = empty snapshot)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        timers = dict(self.timers)
        for name, (total, calls) in other.timers.items():
            t, c = timers.get(name, (0.0, 0))
            timers[name] = (t + total, c + calls)
        hists = dict(self.histograms)
        for name, (count, total, lo, hi) in other.histograms.items():
            if name in hists:
                c0, t0, lo0, hi0 = hists[name]
                hists[name] = (c0 + count, t0 + total, min(lo0, lo), max(hi0, hi))
            else:
                hists[name] = (count, total, lo, hi)
        return TelemetrySnapshot(counters, timers, hists)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON persistence."""
        return {
            "counters": dict(self.counters),
            "timers": {k: list(v) for k, v in self.timers.items()},
            "histograms": {k: list(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySnapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            timers={
                k: (float(v[0]), int(v[1]))
                for k, v in data.get("timers", {}).items()
            },
            histograms={
                k: (int(v[0]), float(v[1]), float(v[2]), float(v[3]))
                for k, v in data.get("histograms", {}).items()
            },
        )


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]) -> TelemetrySnapshot:
    """Fold any number of snapshots into one (empty input → empty snapshot)."""
    out = TelemetrySnapshot()
    for snap in snapshots:
        out = out.merge(snap)
    return out


class Telemetry:
    """Mutable observability context for one (or many merged) runs.

    Optionally carries an :class:`~repro.obs.events.EventStream`;
    :meth:`emit` forwards to it and is a no-op without one, so engines
    can always emit through the telemetry object they were handed.
    """

    #: Engines skip all instrumentation when this is False.
    enabled: bool = True

    __slots__ = ("counters", "timers", "histograms", "events")

    def __init__(self, events: "EventStream | None" = None) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list] = {}  # name -> [total_seconds, calls]
        self.histograms: dict[str, list] = {}  # name -> [count, sum, min, max]
        self.events = events

    # -- aggregates -----------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed interval under ``name``."""
        t = self.timers.get(name)
        if t is None:
            self.timers[name] = [seconds, 1]
        else:
            t[0] += seconds
            t[1] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """``with telemetry.timer("phase.x"):`` — wall-time the block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # -- events ---------------------------------------------------------
    def emit(self, kind: str, ts: float, **data) -> None:
        """Forward a structured event to the attached stream, if any."""
        if self.events is not None:
            self.events.emit(kind, ts, **data)

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current aggregates (events are *not* included)."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            timers={k: (v[0], v[1]) for k, v in self.timers.items()},
            histograms={
                k: (v[0], v[1], v[2], v[3]) for k, v in self.histograms.items()
            },
        )

    def merge_snapshot(self, snap: TelemetrySnapshot | dict) -> None:
        """Fold a worker snapshot (or its dict form) into this context."""
        if isinstance(snap, dict):
            snap = TelemetrySnapshot.from_dict(snap)
        for name, value in snap.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, (total, calls) in snap.timers.items():
            t = self.timers.get(name)
            if t is None:
                self.timers[name] = [total, calls]
            else:
                t[0] += total
                t[1] += calls
        for name, (count, total, lo, hi) in snap.histograms.items():
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = [count, total, lo, hi]
            else:
                h[0] += count
                h[1] += total
                if lo < h[2]:
                    h[2] = lo
                if hi > h[3]:
                    h[3] = hi


class NullTelemetry(Telemetry):
    """Disabled telemetry: every hook is a no-op.

    Engines treat it exactly like ``telemetry=None`` (the ``enabled``
    flag is resolved once, before the event loop), so passing it
    changes neither results nor — beyond one attribute check — running
    time.  A process-wide singleton is exported as
    :data:`NULL_TELEMETRY`.
    """

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:  # pragma: no cover
        pass

    def add_time(self, name: str, seconds: float) -> None:  # pragma: no cover
        pass

    def observe(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def emit(self, kind: str, ts: float, **data) -> None:  # pragma: no cover
        pass


#: Shared no-op instance — safe default anywhere a Telemetry is expected.
NULL_TELEMETRY = NullTelemetry()
