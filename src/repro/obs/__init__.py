"""Observability: telemetry, structured events, exporters, profiling.

A zero-overhead-when-disabled layer wired into every engine
(:mod:`repro.sim.engine`, :mod:`repro.sim.preemptive`,
:mod:`repro.faults.engine`, :mod:`repro.multijob.engine`) and the
experiment pipeline.  Pass a :class:`Telemetry` (optionally carrying an
:class:`EventStream`) as the ``telemetry=`` argument; pass ``None`` (the
default) or :data:`NULL_TELEMETRY` for bit-identical untraced runs.
"""

from repro.obs.events import (
    ARRIVAL,
    COMPLETE,
    DECISION,
    EVENT_KINDS,
    Event,
    EventStream,
    FAIL,
    JOB_DONE,
    KILL,
    READY,
    REPAIR,
    SAMPLE,
    SLICE,
)
from repro.obs.export import (
    chrome_trace,
    read_events_jsonl,
    render_summary,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.profile import PhaseProfiler, render_profile
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
)

__all__ = [
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "merge_snapshots",
    # events
    "Event",
    "EventStream",
    "EVENT_KINDS",
    "DECISION",
    "SLICE",
    "COMPLETE",
    "READY",
    "SAMPLE",
    "FAIL",
    "REPAIR",
    "KILL",
    "ARRIVAL",
    "JOB_DONE",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "read_events_jsonl",
    "render_summary",
    # profiling
    "PhaseProfiler",
    "render_profile",
]
