"""Structured event stream with a bounded ring buffer.

Engines emit one :class:`Event` per interesting instant; the stream
keeps the most recent ``capacity`` of them in a ring buffer so tracing
a long run has bounded memory (the totals that must stay exact —
decision counts, dispatch counts, busy time — live in
:class:`~repro.obs.telemetry.Telemetry` counters, not here).

Event taxonomy (``kind`` / payload fields):

=============  ==========================================================
``slice``      one execution interval: ``task``, ``alpha``, ``proc``,
               ``end`` (``ts`` is the start); fault-aware runs add
               ``killed=True`` for intervals cut short by a failure,
               stream runs add ``jid`` and use ``proc=-1`` (the stream
               engine tracks counts, not processor identities)
``decision``   one scheduler decision round: ``n`` tasks started
``complete``   a task finished: ``task``, ``alpha``, ``proc`` (+ ``jid``)
``ready``      a task entered the ready pool: ``task``, ``alpha``
``sample``     per-type state at an event instant: ``ready`` and
               ``free`` counts per type (+ ``up`` under faults) — the
               live utilization-balancing view
``fail``       processor failure: ``alpha``, ``proc``
``repair``     processor repair: ``alpha``, ``proc``
``kill``       a running segment destroyed by a failure: ``task``,
               ``alpha``, ``proc``, ``start``, ``lost`` (wasted work)
``arrival``    stream engine: job ``jid`` arrived
``job_done``   stream engine: job ``jid`` fully completed
``steal``      decentralized engine: one steal attempt resolved —
               ``alpha``, ``thief``, ``victim`` (processor ids),
               ``n`` tasks moved (0 on a miss), ``ok`` (bool)
=============  ==========================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "Event",
    "EventStream",
    "DECISION",
    "SLICE",
    "COMPLETE",
    "READY",
    "SAMPLE",
    "FAIL",
    "REPAIR",
    "KILL",
    "ARRIVAL",
    "JOB_DONE",
    "STEAL",
    "EVENT_KINDS",
]

DECISION = "decision"
SLICE = "slice"
COMPLETE = "complete"
READY = "ready"
SAMPLE = "sample"
FAIL = "fail"
REPAIR = "repair"
KILL = "kill"
ARRIVAL = "arrival"
JOB_DONE = "job_done"
STEAL = "steal"

#: Every kind an engine may emit (exporters accept unknown kinds too).
EVENT_KINDS = (
    DECISION,
    SLICE,
    COMPLETE,
    READY,
    SAMPLE,
    FAIL,
    REPAIR,
    KILL,
    ARRIVAL,
    JOB_DONE,
    STEAL,
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured simulation event.

    Attributes
    ----------
    ts:
        Simulation time of the event (seconds of schedule time, not
        wall time).
    kind:
        One of :data:`EVENT_KINDS`.
    data:
        Kind-specific payload fields (see the module docstring).
    """

    ts: float
    kind: str
    data: Mapping

    def to_dict(self) -> dict:
        """Flat dict form (``ts``/``kind`` + payload), for JSON lines."""
        return {"ts": self.ts, "kind": self.kind, **self.data}

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Inverse of :meth:`to_dict`."""
        payload = {k: v for k, v in data.items() if k not in ("ts", "kind")}
        return cls(ts=float(data["ts"]), kind=str(data["kind"]), data=payload)


class EventStream:
    """Bounded ring buffer of :class:`Event` records.

    When more than ``capacity`` events are emitted the oldest are
    dropped (FIFO); :attr:`dropped` says how many.  Emission order is
    preserved.  Engines emit in *event-processing* order; a ``slice``
    emitted when its interval closes (fault-aware engine) carries the
    interval's start as ``ts``, so consumers that need a time-sorted
    view must sort — :func:`repro.obs.export.chrome_trace` does.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, kind: str, ts: float, **data) -> None:
        """Append one event (drops the oldest when full)."""
        self._buffer.append(Event(float(ts), kind, data))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events evicted by the ring-buffer bound."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)

    def of_kind(self, kind: str) -> list[Event]:
        """Retained events of one kind, in emission order."""
        return [e for e in self._buffer if e.kind == kind]

    def to_dicts(self) -> list[dict]:
        """All retained events as flat dicts (see :meth:`Event.to_dict`)."""
        return [e.to_dict() for e in self._buffer]
