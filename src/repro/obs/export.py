"""Exporters: Chrome trace-event JSON, JSON lines, and text summaries.

Three consumers of the observability data:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``chrome://tracing`` / Perfetto trace-event format.  Each resource
  type becomes a *process* (pid = type index) and each processor of
  the type a *thread* (tid = processor index), so the trace opens as a
  Gantt chart with one lane per processor; execution intervals are
  complete ``"X"`` events, decisions are instant events on a synthetic
  "scheduler" process, and the per-type ready/free samples become
  counter tracks.
* :func:`write_events_jsonl` / :func:`read_events_jsonl` — one event
  per line, round-trippable (asserted by ``tests/obs/test_export.py``).
* :func:`render_summary` — a text report: engine phase times, top-N
  per-scheduler decision costs, remaining counters, event-heap stats,
  and (when the event stream and resources are supplied) a per-type
  busy/idle/blocked wall-clock breakdown, where *blocked* is idle
  capacity that had matching ready work — the utilization-balancing
  failure mode the paper is about.

Simulation time is unitless; Chrome traces use microsecond ``ts``
fields, so one simulated time unit is exported as ``scale``
microseconds (default 1000, i.e. 1 unit = 1 ms on screen).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.events import (
    ARRIVAL,
    COMPLETE,
    DECISION,
    Event,
    EventStream,
    FAIL,
    JOB_DONE,
    KILL,
    REPAIR,
    SAMPLE,
    SLICE,
    STEAL,
)
from repro.obs.telemetry import TelemetrySnapshot

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "read_events_jsonl",
    "render_summary",
]


# --------------------------------------------------------------------------
# JSON lines
# --------------------------------------------------------------------------


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> int:
    """Write one event per line; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_events_jsonl(path: str | Path) -> list[Event]:
    """Read a JSON-lines event file back into :class:`Event` records."""
    out: list[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Event.from_dict(json.loads(line)))
    return out


# --------------------------------------------------------------------------
# Chrome trace-event format
# --------------------------------------------------------------------------


def _slice_lane(data: dict) -> int:
    """Thread id for a slice: the processor, or the job for stream runs."""
    proc = int(data.get("proc", 0))
    return proc if proc >= 0 else int(data.get("jid", 0))


def chrome_trace(
    events: Iterable[Event],
    resources=None,
    scale: float = 1000.0,
) -> dict:
    """Convert an event stream to a Chrome trace-event document.

    ``resources`` (a :class:`~repro.system.resources.ResourceConfig`)
    labels the process/thread metadata with per-type processor counts;
    without it the lane structure is inferred from the slices.
    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
    """
    events = list(events)
    slices = [e for e in events if e.kind == SLICE]

    # Lane inventory: pid = resource type, tid = processor (or job lane).
    lanes: dict[int, set[int]] = {}
    for e in slices:
        alpha = int(e.data["alpha"])
        lanes.setdefault(alpha, set()).add(_slice_lane(e.data))
    if resources is not None:
        for alpha, count in enumerate(resources.counts):
            lanes.setdefault(alpha, set()).update(range(count))
    sched_pid = (
        resources.num_types if resources is not None
        else (max(lanes) + 1 if lanes else 0)
    )

    meta: list[dict] = []
    for alpha in sorted(lanes):
        label = f"type {alpha}"
        if resources is not None:
            label += f" (P={resources.counts[alpha]})"
        meta.append(
            {"ph": "M", "name": "process_name", "pid": alpha, "tid": 0,
             "args": {"name": label}}
        )
        meta.append(
            {"ph": "M", "name": "process_sort_index", "pid": alpha, "tid": 0,
             "args": {"sort_index": alpha}}
        )
        for tid in sorted(lanes[alpha]):
            meta.append(
                {"ph": "M", "name": "thread_name", "pid": alpha, "tid": tid,
                 "args": {"name": f"proc {tid}"}}
            )
    meta.append(
        {"ph": "M", "name": "process_name", "pid": sched_pid, "tid": 0,
         "args": {"name": "scheduler"}}
    )
    meta.append(
        {"ph": "M", "name": "process_sort_index", "pid": sched_pid, "tid": 0,
         "args": {"sort_index": sched_pid}}
    )

    body: list[dict] = []
    for e in events:
        ts = e.ts * scale
        data = e.data
        if e.kind == SLICE:
            name = f"task {data['task']}"
            if "jid" in data:
                name = f"J{data['jid']} {name}"
            body.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "killed" if data.get("killed") else "task",
                    "ts": ts,
                    "dur": (float(data["end"]) - e.ts) * scale,
                    "pid": int(data["alpha"]),
                    "tid": _slice_lane(data),
                    "args": dict(data),
                }
            )
        elif e.kind == DECISION:
            body.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": f"decision (+{data.get('n', 0)})",
                    "cat": "decision",
                    "ts": ts,
                    "pid": sched_pid,
                    "tid": 0,
                    "args": dict(data),
                }
            )
        elif e.kind == SAMPLE:
            ready = data.get("ready", ())
            free = data.get("free", ())
            body.append(
                {
                    "ph": "C",
                    "name": "ready",
                    "ts": ts,
                    "pid": sched_pid,
                    "args": {f"type{a}": int(r) for a, r in enumerate(ready)},
                }
            )
            body.append(
                {
                    "ph": "C",
                    "name": "free",
                    "ts": ts,
                    "pid": sched_pid,
                    "args": {f"type{a}": int(f) for a, f in enumerate(free)},
                }
            )
        elif e.kind in (FAIL, REPAIR, KILL):
            body.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": e.kind.upper(),
                    "cat": "fault",
                    "ts": ts,
                    "pid": int(data["alpha"]),
                    "tid": _slice_lane(data),
                    "args": dict(data),
                }
            )
        elif e.kind == STEAL:
            # An instant on the thief's lane: a steal storm shows up as
            # a burst of marks across a type's processors.
            hit = data.get("ok", bool(data.get("n", 0)))
            body.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": (
                        f"steal +{data.get('n', 0)} from p{data.get('victim', '?')}"
                        if hit else f"steal miss p{data.get('victim', '?')}"
                    ),
                    "cat": "steal",
                    "ts": ts,
                    "pid": int(data["alpha"]),
                    "tid": int(data.get("thief", 0)),
                    "args": dict(data),
                }
            )
        elif e.kind in (ARRIVAL, JOB_DONE, COMPLETE):
            # Lightweight instants; completions already end an X slice,
            # so only job-level events get their own marks.
            if e.kind == COMPLETE:
                continue
            body.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": f"{e.kind} J{data.get('jid', '?')}",
                    "cat": "job",
                    "ts": ts,
                    "pid": sched_pid,
                    "tid": 0,
                    "args": dict(data),
                }
            )
        # Unknown kinds (forward compatibility) are skipped silently.

    body.sort(key=lambda ev: ev["ts"])
    return {"traceEvents": meta + body, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[Event],
    path: str | Path,
    resources=None,
    scale: float = 1000.0,
) -> Path:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, resources, scale)))
    return path


# --------------------------------------------------------------------------
# Text summary
# --------------------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _busy_idle_blocked(events: list[Event], resources, makespan: float):
    """Per-type (busy, idle, blocked) seconds from slices and samples.

    ``blocked`` integrates ``min(free, ready)`` over the piecewise-
    constant sample timeline: capacity that sat idle while matching
    work was queued.  Work-conserving schedulers keep it at zero in
    fault-free runs; capacity drops and type mismatches make it
    visible.
    """
    k = resources.num_types
    busy = [0.0] * k
    for e in events:
        if e.kind == SLICE:
            busy[int(e.data["alpha"])] += float(e.data["end"]) - e.ts
    blocked = [0.0] * k
    samples = [e for e in events if e.kind == SAMPLE]
    for i, e in enumerate(samples):
        t_next = samples[i + 1].ts if i + 1 < len(samples) else makespan
        dt = max(0.0, t_next - e.ts)
        ready = e.data.get("ready", ())
        free = e.data.get("free", ())
        for a in range(min(k, len(ready), len(free))):
            blocked[a] += dt * min(int(free[a]), int(ready[a]))
    idle = [
        max(0.0, resources.counts[a] * makespan - busy[a] - blocked[a])
        for a in range(k)
    ]
    return busy, idle, blocked


def render_summary(
    snapshot: TelemetrySnapshot,
    events: "EventStream | list[Event] | None" = None,
    resources=None,
    makespan: float | None = None,
    top_n: int = 10,
) -> str:
    """Human-readable observability report (see the module docstring)."""
    lines: list[str] = []

    phases = sorted(
        (name, total, calls)
        for name, (total, calls) in snapshot.timers.items()
        if name.startswith("phase.")
    )
    if phases:
        lines.append("engine phases:")
        lines.append(f"  {'phase':<24s} {'calls':>8s} {'total':>11s} {'mean':>11s}")
        for name, total, calls in phases:
            lines.append(
                f"  {name[len('phase.'):]:<24s} {calls:>8d}"
                f" {_fmt_s(total):>11s} {_fmt_s(total / max(1, calls)):>11s}"
            )

    decisions = sorted(
        (
            (name[len("decision."):], total, calls)
            for name, (total, calls) in snapshot.timers.items()
            if name.startswith("decision.")
        ),
        key=lambda row: -row[1],
    )
    if decisions:
        if lines:
            lines.append("")
        lines.append(f"scheduler decision costs (top {min(top_n, len(decisions))}):")
        lines.append(
            f"  {'scheduler':<16s} {'rounds':>8s} {'started':>8s}"
            f" {'total':>11s} {'mean/round':>11s}"
        )
        for name, total, calls in decisions[:top_n]:
            started = snapshot.counters.get(f"dispatched.{name}", 0)
            lines.append(
                f"  {name:<16s} {calls:>8d} {started:>8d}"
                f" {_fmt_s(total):>11s} {_fmt_s(total / max(1, calls)):>11s}"
            )

    if events is not None and resources is not None:
        event_list = list(events)
        if makespan is None:
            makespan = max(
                (float(e.data["end"]) for e in event_list if e.kind == SLICE),
                default=0.0,
            )
        if makespan > 0:
            busy, idle, blocked = _busy_idle_blocked(
                event_list, resources, makespan
            )
            if lines:
                lines.append("")
            lines.append(
                f"per-type utilization over [0, {makespan:g}] "
                "(schedule-time units):"
            )
            lines.append(
                f"  {'type':<6s} {'procs':>5s} {'busy':>12s} {'idle':>12s}"
                f" {'blocked':>12s} {'util':>7s}"
            )
            for a in range(resources.num_types):
                cap = resources.counts[a] * makespan
                util = busy[a] / cap if cap > 0 else 0.0
                lines.append(
                    f"  t{a:<5d} {resources.counts[a]:>5d} {busy[a]:>12.2f}"
                    f" {idle[a]:>12.2f} {blocked[a]:>12.2f} {util:>6.1%}"
                )
        if isinstance(events, EventStream) and events.dropped:
            lines.append(
                f"  (ring buffer dropped {events.dropped} of "
                f"{events.emitted} events; interval stats are partial)"
            )

    heap_hists = sorted(
        (name, vals)
        for name, vals in snapshot.histograms.items()
        if name.startswith("engine.")
    )
    if heap_hists:
        if lines:
            lines.append("")
        lines.append("event-loop stats:")
        for name, (count, total, lo, hi) in heap_hists:
            mean = total / max(1, count)
            lines.append(
                f"  {name:<24s} n={count:<6d} min={lo:<8g} "
                f"mean={mean:<10.2f} max={hi:g}"
            )

    counters = sorted(
        (name, value)
        for name, value in snapshot.counters.items()
        if not name.startswith(("decisions.", "dispatched."))
    )
    if counters:
        if lines:
            lines.append("")
        lines.append("counters:")
        for name, value in counters:
            lines.append(f"  {name:<32s} {value}")

    return "\n".join(lines) if lines else "(no telemetry recorded)"
