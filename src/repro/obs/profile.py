"""Lightweight named-phase wall-clock profiler.

:class:`PhaseProfiler` wraps a :class:`~repro.obs.telemetry.Telemetry`
and records ``perf_counter`` intervals under ``phase.<name>`` timer
keys — the same convention the engines use for ``prepare``, the
decision loop and the event loop, so profiler output and engine
telemetry aggregate into one table.  Snapshots are mergeable
(:meth:`~repro.obs.telemetry.TelemetrySnapshot.merge`), which is how
sharded sweeps in :mod:`repro.experiments.parallel` combine per-worker
profiles into one report regardless of the worker count.

:func:`render_profile` is the compact text table used by
``repro profile``; for the full report (decision costs, counters,
per-type breakdown) see :func:`repro.obs.export.render_summary`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.telemetry import Telemetry, TelemetrySnapshot

__all__ = [
    "PhaseProfiler",
    "render_cache_line",
    "render_steal_line",
    "render_energy_line",
    "render_native_line",
    "render_profile",
]


class PhaseProfiler:
    """Accumulate wall time per named phase into a telemetry context."""

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """``with profiler.phase("select"):`` — time the block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.telemetry.add_time(f"phase.{name}", time.perf_counter() - t0)

    def time(self, name: str, fn, *args, **kwargs):
        """Call ``fn(*args, **kwargs)`` inside :meth:`phase`."""
        with self.phase(name):
            return fn(*args, **kwargs)

    def snapshot(self) -> TelemetrySnapshot:
        """Mergeable frozen view of everything recorded so far."""
        return self.telemetry.snapshot()


def render_cache_line(snapshot: TelemetrySnapshot) -> str | None:
    """One-line result-cache summary, or ``None`` if no cache traffic.

    Reads the ``cache.*`` counters :mod:`repro.resultcache` maintains
    during sweeps — hits, misses (recomputed), invalidated (corrupt
    record replaced) and writes — so ``repro profile`` shows how much
    of a sweep was served from the persistent store.
    """
    hits = snapshot.counters.get("cache.hits", 0)
    misses = snapshot.counters.get("cache.misses", 0)
    invalid = snapshot.counters.get("cache.invalidated", 0)
    lookups = hits + misses + invalid
    if lookups == 0:
        return None
    return (
        f"result cache: {hits}/{lookups} hits ({hits / lookups:.0%}), "
        f"{misses} misses, {invalid} invalidated, "
        f"{snapshot.counters.get('cache.writes', 0)} written"
    )


def render_batch_line(snapshot: TelemetrySnapshot) -> str | None:
    """One-line batch-engine summary, or ``None`` if it never ran.

    Reads the ``batch.*`` counters :mod:`repro.sim.batch` maintains —
    rows simulated in lockstep, vectorized event rounds, and rows that
    fell back to the scalar engine — so ``repro profile`` shows how
    much of a sweep the batch engine actually carried.
    """
    instances = snapshot.counters.get("batch.instances", 0)
    fallback = snapshot.counters.get("batch.fallback", 0)
    if instances + fallback == 0:
        return None
    return (
        f"batch engine: {instances} rows in lockstep, "
        f"{snapshot.counters.get('batch.rounds', 0)} rounds, "
        f"{fallback} scalar fallbacks"
    )


def render_steal_line(snapshot: TelemetrySnapshot) -> str | None:
    """One-line work-stealing summary, or ``None`` without steal traffic.

    Reads the ``steal.*`` counters the decentralized engine
    (:mod:`repro.decentral.engine`) maintains — attempts, successful
    steals, empty-victim misses and tasks moved — so
    ``repro profile decentral`` surfaces the steal protocol's hit rate
    without needing the full ``--full`` report.
    """
    attempts = snapshot.counters.get("steal.attempts", 0)
    if attempts == 0:
        return None
    hits = snapshot.counters.get("steal.successes", 0)
    return (
        f"work stealing: {hits}/{attempts} steals hit "
        f"({hits / attempts:.0%}), "
        f"{snapshot.counters.get('steal.failed_empty', 0)} empty victims, "
        f"{snapshot.counters.get('steal.tasks_moved', 0)} tasks moved"
    )


def render_energy_line(snapshot: TelemetrySnapshot) -> str | None:
    """One-line energy-accounting summary, or ``None`` without traffic.

    Reads the ``energy.*`` counters the energy sweep
    (:mod:`repro.experiments.energy`) maintains — traced runs
    accounted, idle gaps decomposed, gaps long enough to engage a
    shutdown window, and rejected configurations — so
    ``repro profile energy`` surfaces how much shutdown actually
    happened without the full ``--full`` report.
    """
    runs = snapshot.counters.get("energy.runs", 0)
    rejected = snapshot.counters.get(
        "energy.rejected.engine", 0
    ) + snapshot.counters.get("energy.rejected.decentral", 0)
    if runs + rejected == 0:
        return None
    gaps = snapshot.counters.get("energy.gaps", 0)
    slept = snapshot.counters.get("energy.shutdowns", 0)
    frac = f" ({slept / gaps:.0%} slept)" if gaps else ""
    line = (
        f"energy accounting: {runs} runs, {gaps} idle gaps, "
        f"{slept} shutdowns{frac}"
    )
    if rejected:
        line += f", {rejected} rejected requests"
    return line


def render_native_line(snapshot: TelemetrySnapshot) -> str | None:
    """One-line native-kernel summary, or ``None`` without native traffic.

    Reads the ``native.*`` counters the MQB schedulers and the batch
    engine maintain — selection picks committed by the compiled kernel
    (:mod:`repro.native`) and runs that requested the kernel but fell
    back to numpy — so ``repro profile`` shows which backend actually
    carried the MQB selection work.
    """
    calls = snapshot.counters.get("native.calls", 0)
    fallbacks = snapshot.counters.get("native.fallbacks", 0)
    if calls + fallbacks == 0:
        return None
    line = f"native kernel: {calls} picks in C"
    if fallbacks:
        line += f", {fallbacks} numpy fallbacks"
    return line


def render_profile(snapshot: TelemetrySnapshot, top_n: int = 20) -> str:
    """Text table of all timers in ``snapshot``, sorted by total time."""
    rows = sorted(
        ((name, total, calls) for name, (total, calls) in snapshot.timers.items()),
        key=lambda row: -row[1],
    )
    cache_line = render_cache_line(snapshot)
    for extra in (
        render_batch_line(snapshot),
        render_native_line(snapshot),
        render_steal_line(snapshot),
        render_energy_line(snapshot),
    ):
        if extra:
            cache_line = f"{cache_line}\n{extra}" if cache_line else extra
    if not rows:
        return cache_line if cache_line else "(no timers recorded)"
    lines = [f"{'timer':<32s} {'calls':>10s} {'total':>12s} {'mean':>12s}"]
    for name, total, calls in rows[:top_n]:
        mean = total / max(1, calls)
        if total >= 1.0:
            total_s, mean_s = f"{total:10.3f} s", f"{mean * 1e6:9.1f} us"
        else:
            total_s, mean_s = f"{total * 1e3:9.3f} ms", f"{mean * 1e6:9.1f} us"
        lines.append(f"{name:<32s} {calls:>10d} {total_s:>12s} {mean_s:>12s}")
    if len(rows) > top_n:
        lines.append(f"... and {len(rows) - top_n} more timers")
    if cache_line:
        lines.append(cache_line)
    return "\n".join(lines)
