"""Speed-annotated systems and their makespan lower bound."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ResourceError
from repro.system.resources import ResourceConfig

__all__ = ["SpeedSystem", "speed_lower_bound"]


@dataclass(frozen=True)
class SpeedSystem:
    """Per-type tuples of processor speeds.

    ``speeds[alpha][i]`` is the speed of type-``alpha``'s processor
    ``i``: a task of work ``w`` takes ``w / speed`` on it.  The plain
    K-DAG model is the special case of all speeds 1.
    """

    speeds: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if not self.speeds:
            raise ResourceError("a system needs at least one resource type")
        norm = []
        for alpha, pool in enumerate(self.speeds):
            pool = tuple(float(s) for s in pool)
            if not pool:
                raise ResourceError(f"type {alpha} has no processors")
            if any(not np.isfinite(s) or s <= 0 for s in pool):
                raise ResourceError(
                    f"type {alpha} has a non-positive/non-finite speed"
                )
            # Descending order: the engine dispatches fastest-free-first
            # and identifies processors by index.
            norm.append(tuple(sorted(pool, reverse=True)))
        object.__setattr__(self, "speeds", tuple(norm))

    @property
    def num_types(self) -> int:
        """Number of resource types K."""
        return len(self.speeds)

    @property
    def counts(self) -> tuple[int, ...]:
        """Processor counts per type."""
        return tuple(len(pool) for pool in self.speeds)

    def total_speed(self, alpha: int) -> float:
        """Aggregate speed ``S_alpha`` of type ``alpha``'s pool."""
        return float(sum(self.speeds[alpha]))

    def max_speed(self, alpha: int) -> float:
        """Fastest processor speed of type ``alpha``."""
        return float(self.speeds[alpha][0])

    def as_resource_config(self) -> ResourceConfig:
        """The counts-only view (drops speeds)."""
        return ResourceConfig(self.counts)

    @classmethod
    def uniform(cls, counts: Sequence[int], speed: float = 1.0) -> "SpeedSystem":
        """All processors at one speed — the plain K-DAG system."""
        return cls(tuple((float(speed),) * int(c) for c in counts))

    @classmethod
    def sample(
        cls,
        counts: Sequence[int],
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (0.5, 2.0),
    ) -> "SpeedSystem":
        """Uniformly random speeds per processor within ``speed_range``."""
        lo, hi = speed_range
        if not (0 < lo <= hi) or not np.isfinite(hi):
            raise ResourceError(f"invalid speed_range {speed_range}")
        return cls(
            tuple(
                tuple(float(s) for s in rng.uniform(lo, hi, int(c)))
                for c in counts
            )
        )


def speed_lower_bound(job: KDag, system: SpeedSystem) -> float:
    """Makespan lower bound on a speed-heterogeneous FHS.

    ``max( speed-aware span , max_alpha T1(J, alpha) / S_alpha )``:
    the critical path can at best run every task on its type's fastest
    processor, and type ``alpha``'s work can at best spread over the
    pool's total speed.
    """
    if job.num_types != system.num_types:
        raise ResourceError("job and system disagree on K")
    fastest = np.array([system.max_speed(a) for a in range(system.num_types)])
    scaled = job.work / fastest[job.types]
    # Speed-aware bottom levels (same sweep as core.properties).
    bottom = scaled.copy()
    for v in job.topological_order[::-1]:
        vi = int(v)
        best = 0.0
        for c in job.children(vi):
            if bottom[c] > best:
                best = float(bottom[c])
        bottom[vi] += best
    span_term = float(bottom.max())
    from repro.core.properties import type_work

    tw = type_work(job)
    work_term = max(
        float(tw[a]) / system.total_speed(a) for a in range(system.num_types)
    )
    return max(span_term, work_term)
