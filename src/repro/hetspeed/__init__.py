"""Performance heterogeneity: per-processor speeds within each type.

The paper's introduction distinguishes two heterogeneity axes and
studies only the second:

* *performance heterogeneity* — any processor can run any task, just
  at different speeds (the uniformly-related-machines literature);
* *functional heterogeneity* — typed processors, typed tasks (the
  K-DAG model).

Real clusters mix both: a server class (functional type) contains
machine generations of different speeds.  This subpackage composes the
two — a K-DAG on typed pools whose processors have individual speeds:

* :class:`~repro.hetspeed.config.SpeedSystem` — per-type tuples of
  processor speeds;
* :func:`~repro.hetspeed.engine.simulate_speeds` — the event-driven
  engine with fastest-free-processor dispatch; any
  :class:`~repro.schedulers.base.Scheduler` plugs in unchanged (the
  policy picks tasks, the engine picks processors);
* :func:`~repro.hetspeed.config.speed_lower_bound` — the composed
  lower bound ``max(speed-aware span, max_a T1(J,a)/S_a)`` where
  ``S_a`` is type-``a``'s total speed.
"""

from repro.hetspeed.config import SpeedSystem, speed_lower_bound
from repro.hetspeed.engine import SpeedResult, simulate_speeds

__all__ = ["SpeedSystem", "speed_lower_bound", "simulate_speeds", "SpeedResult"]
