"""Event-driven engine for speed-heterogeneous typed pools.

Identical decision protocol to :func:`repro.sim.engine.simulate`; the
one new mechanism is processor dispatch: the engine always places a
started task on the *fastest free* processor of its type.  (Within the
non-preemptive, policy-picks-tasks protocol this is the canonical
rule — any schedule that puts a task on a slower free processor can be
improved by swapping, because pools are type-dedicated and speeds only
scale durations.)

Schedulers are reused unchanged; they are prepared against the
counts-only :class:`~repro.system.resources.ResourceConfig` view.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.kdag import KDag
from repro.errors import SchedulingError
from repro.hetspeed.config import SpeedSystem, speed_lower_bound
from repro.schedulers.base import Scheduler
from repro.sim.trace import ScheduleTrace

__all__ = ["SpeedResult", "simulate_speeds"]


@dataclass(frozen=True)
class SpeedResult:
    """Outcome of one speed-heterogeneous simulation."""

    makespan: float
    scheduler: str
    job: KDag
    system: SpeedSystem
    trace: ScheduleTrace | None = None

    def lower_bound(self) -> float:
        """The composed bound of :func:`speed_lower_bound`."""
        return speed_lower_bound(self.job, self.system)

    def completion_time_ratio(self) -> float:
        """Makespan over the speed-aware lower bound."""
        return self.makespan / self.lower_bound()


def simulate_speeds(
    job: KDag,
    system: SpeedSystem,
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
) -> SpeedResult:
    """Run ``scheduler`` on ``job`` over speed-annotated pools."""
    scheduler.prepare(job, system.as_resource_config(), rng)
    k = job.num_types
    n = job.n_tasks
    types = job.types
    work = job.work

    indeg = job.in_degrees()
    state = np.zeros(n, dtype=np.int8)
    free = list(system.counts)
    # Free processors per type as max-heaps on speed: (-speed, index).
    free_procs: list[list[tuple[float, int]]] = [
        [(-s, i) for i, s in enumerate(pool)] for pool in system.speeds
    ]
    for heap in free_procs:
        heapq.heapify(heap)
    trace = ScheduleTrace() if record_trace else None

    events: list[tuple[float, int, int, int]] = []
    seq = 0
    completed = 0
    now = 0.0
    makespan = 0.0
    n_ready = 0

    for v in job.sources():
        vi = int(v)
        state[vi] = 1
        n_ready += 1
        scheduler.task_ready(vi, now, float(work[vi]))

    while completed < n:
        if n_ready and any(free[a] and scheduler.pending(a) for a in range(k)):
            chosen = scheduler.assign(free, now)
            counts = [0] * k
            for task in chosen:
                if state[task] != 1:
                    raise SchedulingError(
                        f"{scheduler.name} started task {task} in state "
                        f"{int(state[task])}"
                    )
                alpha = int(types[task])
                counts[alpha] += 1
                if counts[alpha] > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name} oversubscribed type {alpha}"
                    )
                state[task] = 2
                n_ready -= 1
                neg_speed, proc = heapq.heappop(free_procs[alpha])
                duration = float(work[task]) / -neg_speed
                finish = now + duration
                heapq.heappush(events, (finish, seq, task, proc))
                seq += 1
                if trace is not None:
                    trace.add(task, alpha, proc, now, finish)
            for alpha, c in enumerate(counts):
                free[alpha] -= c

        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: "
                f"{n - completed} unfinished"
            )

        now = events[0][0]
        while events and events[0][0] == now:
            _, _, task, proc = heapq.heappop(events)
            alpha = int(types[task])
            state[task] = 3
            completed += 1
            free[alpha] += 1
            heapq.heappush(
                free_procs[alpha], (-system.speeds[alpha][proc], proc)
            )
            makespan = now
            scheduler.task_finished(task, now)
            for c in job.children(task):
                ci = int(c)
                indeg[ci] -= 1
                if indeg[ci] == 0:
                    state[ci] = 1
                    n_ready += 1
                    scheduler.task_ready(ci, now, float(work[ci]))

    return SpeedResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        system=system,
        trace=trace,
    )
