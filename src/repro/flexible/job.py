"""Flexible-type job model: per-type work vectors.

A :class:`FlexDag` generalizes :class:`~repro.core.kdag.KDag`: instead
of one ``(type, work)`` pair, every task carries a length-``K`` work
vector ``W[v, alpha]`` — the execution time if compiled for type
``alpha``, or ``inf`` if that type cannot run it.  A K-DAG is the
special case where each row has exactly one finite entry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.kdag import KDag
from repro.errors import GraphError, ResourceError

__all__ = ["FlexDag", "flexible_lower_bound"]


class FlexDag:
    """A DAG of flexible-type tasks.

    Parameters
    ----------
    work:
        ``(n, K)`` array; ``work[v, alpha]`` is v's execution time on an
        ``alpha``-processor, ``inf`` where forbidden.  Every task needs
        at least one finite, positive entry.
    edges:
        Precedence pairs, as for :class:`KDag`.

    The precedence structure is delegated to an internal :class:`KDag`
    (built with placeholder types), so all core graph machinery —
    topological order, adjacency, reachability — is reused.
    """

    def __init__(
        self,
        work: np.ndarray | Sequence[Sequence[float]],
        edges: Iterable[tuple[int, int]] = (),
    ) -> None:
        w = np.asarray(work, dtype=np.float64)
        if w.ndim != 2 or w.shape[0] < 1 or w.shape[1] < 1:
            raise GraphError(f"work must be (n, K) with n,K >= 1, got {w.shape}")
        if np.any(np.isnan(w)):
            raise GraphError("work entries must be positive or +inf, not NaN")
        finite = np.isfinite(w)
        if np.any(w[finite] <= 0):
            raise GraphError("finite work entries must be positive")
        if not finite.any(axis=1).all():
            bad = int(np.flatnonzero(~finite.any(axis=1))[0])
            raise GraphError(f"task {bad} has no permitted type")
        self._work = w
        self._work.setflags(write=False)
        # Structural backbone: types are placeholders (cheapest type),
        # the graph algorithms never read them.
        self._graph = KDag(
            types=np.argmin(np.where(finite, w, np.inf), axis=1),
            work=np.min(np.where(finite, w, np.inf), axis=1),
            edges=edges,
            num_types=w.shape[1],
        )

    # -- delegation --------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return self._graph.n_tasks

    @property
    def num_types(self) -> int:
        """Number of resource types K."""
        return self._work.shape[1]

    @property
    def work(self) -> np.ndarray:
        """The ``(n, K)`` work matrix (read-only)."""
        return self._work

    @property
    def edges(self) -> np.ndarray:
        """Precedence pairs."""
        return self._graph.edges

    @property
    def graph(self) -> KDag:
        """The structural backbone (min-work typed K-DAG)."""
        return self._graph

    def permitted(self, v: int) -> np.ndarray:
        """Types task ``v`` may run on (ascending)."""
        return np.flatnonzero(np.isfinite(self._work[v]))

    def min_work(self, v: int) -> float:
        """Fastest execution time of task ``v`` over permitted types."""
        return float(np.nanmin(np.where(np.isfinite(self._work[v]),
                                        self._work[v], np.nan)))

    def children(self, v: int) -> np.ndarray:
        return self._graph.children(v)

    def parents(self, v: int) -> np.ndarray:
        return self._graph.parents(v)

    def in_degrees(self) -> np.ndarray:
        return self._graph.in_degrees()

    def sources(self) -> np.ndarray:
        return self._graph.sources()

    @classmethod
    def from_kdag(cls, job: KDag, flexibility: float = 0.0,
                  rng: np.random.Generator | None = None,
                  penalty: float = 1.5) -> "FlexDag":
        """Lift a fixed-type K-DAG into the flexible model.

        Each task keeps its native type at its native work; with
        probability ``flexibility`` a task additionally permits every
        other type at ``penalty`` times its native work (a JIT-compiled
        fallback binary that is slower than the tuned native one).
        """
        if not 0.0 <= flexibility <= 1.0:
            raise GraphError(f"flexibility must be in [0, 1], got {flexibility}")
        if penalty <= 0:
            raise GraphError(f"penalty must be positive, got {penalty}")
        if flexibility > 0 and rng is None:
            raise GraphError("flexibility > 0 requires an rng")
        n, k = job.n_tasks, job.num_types
        w = np.full((n, k), np.inf)
        w[np.arange(n), job.types] = job.work
        if flexibility > 0:
            assert rng is not None
            flex_mask = rng.random(n) < flexibility
            for v in np.flatnonzero(flex_mask):
                native = job.work[v]
                w[v, :] = penalty * native
                w[v, job.types[v]] = native
        return cls(w, [tuple(e) for e in job.edges])


def flexible_lower_bound(
    job: FlexDag, processors: Sequence[int] | np.ndarray
) -> float:
    """A valid makespan lower bound for the flexible model.

    ``max( span_min , total_min_work / total_processors )`` where
    ``span_min`` uses each task's fastest permitted time (no schedule
    can beat the fastest binary on the critical chain) and the second
    term says the total fastest-possible work must fit on the combined
    processor pool.  Looser than the K-DAG bound ``L(J)`` — type
    restrictions can force worse — but always sound, which is what a
    completion-time-ratio denominator must be.
    """
    procs = np.asarray(processors, dtype=np.int64)
    if procs.shape != (job.num_types,) or np.any(procs < 1):
        raise ResourceError(f"invalid processor counts {processors!r}")
    from repro.core.properties import span

    span_min = span(job.graph)  # backbone uses min work per task
    min_work = np.min(np.where(np.isfinite(job.work), job.work, np.inf), axis=1)
    return float(max(span_min, min_work.sum() / procs.sum()))
