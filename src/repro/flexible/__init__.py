"""Flexible-type scheduling: the paper's Section-VII open problem.

In the K-DAG model every task has one fixed resource type — "a compiled
binary ... can only be executed on its matching architecture".  The
paper closes by observing that Just-In-Time compilation relaxes this:
a task may be compiled for *several* types at run time, possibly with
different execution costs, and the scheduler must now also pick the
type.

This subpackage implements that extended model as a working system:

* :class:`~repro.flexible.job.FlexDag` — a DAG whose tasks carry a
  per-type work vector (``inf`` marks forbidden types);
* :func:`~repro.flexible.engine.simulate_flexible` — the event-driven
  engine extended with type selection;
* two schedulers: :class:`~repro.flexible.schedulers.FlexGreedy`
  (earliest-finish greedy, the natural KGreedy generalization) and
  :class:`~repro.flexible.schedulers.FlexMQB` (balance-aware: chooses
  (task, type) pairs that keep the per-type backlogs level, MQB's idea
  lifted to the flexible model);
* :func:`~repro.flexible.job.flexible_lower_bound` — the makespan
  bounds the completion-time ratios are measured against.
"""

from repro.flexible.job import FlexDag, flexible_lower_bound
from repro.flexible.engine import simulate_flexible
from repro.flexible.schedulers import FlexGreedy, FlexMQB, FlexScheduler

__all__ = [
    "FlexDag",
    "flexible_lower_bound",
    "simulate_flexible",
    "FlexScheduler",
    "FlexGreedy",
    "FlexMQB",
]
