"""Event-driven engine for flexible-type jobs.

Identical semantics to :func:`repro.sim.engine.simulate` except that
the scheduler returns *(task, type)* pairs and a task's execution time
depends on the type it was dispatched to.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import SchedulingError
from repro.flexible.job import FlexDag, flexible_lower_bound
from repro.flexible.schedulers import FlexScheduler
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["simulate_flexible", "FlexResult"]


class FlexResult:
    """Outcome of one flexible-model simulation."""

    def __init__(
        self,
        makespan: float,
        scheduler: str,
        job: FlexDag,
        resources: ResourceConfig,
        trace: ScheduleTrace | None,
        type_choices: np.ndarray,
    ) -> None:
        self.makespan = makespan
        self.scheduler = scheduler
        self.job = job
        self.resources = resources
        self.trace = trace
        #: the type each task actually ran on, shape (n_tasks,)
        self.type_choices = type_choices

    def completion_time_ratio(self) -> float:
        """Makespan over :func:`flexible_lower_bound`."""
        return self.makespan / flexible_lower_bound(
            self.job, self.resources.as_array()
        )


def simulate_flexible(
    job: FlexDag,
    resources: ResourceConfig,
    scheduler: FlexScheduler,
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
) -> FlexResult:
    """Run a flexible-type schedule to completion; see module docstring."""
    scheduler.prepare(job, resources, rng)
    n = job.n_tasks
    k = job.num_types
    indeg = job.in_degrees()
    state = np.zeros(n, dtype=np.int8)  # 0 pending, 1 ready, 2 running, 3 done
    type_choices = np.full(n, -1, dtype=np.int64)
    free = list(resources.counts)
    free_procs: list[list[int]] = [list(range(c - 1, -1, -1)) for c in resources.counts]
    trace = ScheduleTrace() if record_trace else None

    events: list[tuple[float, int, int, int]] = []  # (finish, seq, task, proc)
    seq = 0
    completed = 0
    now = 0.0
    makespan = 0.0

    for v in job.sources():
        state[int(v)] = 1
        scheduler.task_ready(int(v), now)

    while completed < n:
        if scheduler.n_ready() and any(free):
            for task, alpha in scheduler.assign(free, now):
                if state[task] != 1:
                    raise SchedulingError(
                        f"{scheduler.name} started task {task} in state "
                        f"{int(state[task])}"
                    )
                if not 0 <= alpha < k or not np.isfinite(job.work[task, alpha]):
                    raise SchedulingError(
                        f"{scheduler.name} dispatched task {task} to "
                        f"forbidden type {alpha}"
                    )
                if free[alpha] <= 0:
                    raise SchedulingError(
                        f"{scheduler.name} oversubscribed type {alpha}"
                    )
                state[task] = 2
                type_choices[task] = alpha
                free[alpha] -= 1
                proc = free_procs[alpha].pop()
                finish = now + float(job.work[task, alpha])
                heapq.heappush(events, (finish, seq, task, proc))
                seq += 1
                if trace is not None:
                    trace.add(task, alpha, proc, now, finish)

        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now} with "
                f"{n - completed} unfinished tasks"
            )

        now = events[0][0]
        while events and events[0][0] == now:
            _, _, task, proc = heapq.heappop(events)
            alpha = int(type_choices[task])
            state[task] = 3
            completed += 1
            free[alpha] += 1
            free_procs[alpha].append(proc)
            makespan = now
            scheduler.task_finished(task, now)
            for c in job.children(task):
                ci = int(c)
                indeg[ci] -= 1
                if indeg[ci] == 0:
                    state[ci] = 1
                    scheduler.task_ready(ci, now)

    return FlexResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        trace=trace,
        type_choices=type_choices,
    )
