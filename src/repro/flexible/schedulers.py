"""Schedulers for the flexible-type model.

The decision space is richer than in the K-DAG model: at every point
the policy picks *(task, type)* pairs.  Two policies are provided:

* :class:`FlexGreedy` — earliest-finish-time greedy, the natural
  generalization of KGreedy: whenever processors idle, repeatedly
  dispatch the (ready task, free type) pair with the smallest
  execution time.  Online in spirit — it reads only the ready tasks'
  work vectors (the JIT cost model), never the future DAG.
* :class:`FlexMQB` — utilization balancing lifted to the flexible
  model: each candidate pair is scored by the projected per-type
  backlog vector (current committed load plus the task's execution
  time on that type, plus the descendant pull of the task), compared
  in MQB's ascending lexicographic order.  Offline: uses descendant
  values of the min-work backbone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.descendants import descendant_values
from repro.errors import SchedulingError
from repro.flexible.job import FlexDag
from repro.system.resources import ResourceConfig

__all__ = ["FlexScheduler", "FlexGreedy", "FlexMQB"]


class FlexScheduler(ABC):
    """Policy interface for the flexible engine.

    The engine calls :meth:`prepare` once, :meth:`task_ready` as tasks
    unlock, and :meth:`assign` at every decision point; ``assign``
    returns ``(task, alpha)`` pairs to start on free processors.
    """

    name: str = "flex-abstract"

    def __init__(self) -> None:
        self._job: FlexDag | None = None
        self._resources: ResourceConfig | None = None
        self._ready: dict[int, int] = {}
        self._seq = 0

    @property
    def job(self) -> FlexDag:
        if self._job is None:
            raise SchedulingError("scheduler used before prepare()")
        return self._job

    def prepare(
        self,
        job: FlexDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Reset state for a fresh run."""
        if job.num_types != resources.num_types:
            raise SchedulingError(
                f"job K={job.num_types} vs system K={resources.num_types}"
            )
        self._job = job
        self._resources = resources
        self._ready = {}
        self._seq = 0

    def task_ready(self, task: int, time: float) -> None:
        """A task's parents all completed."""
        self._ready[task] = self._seq
        self._seq += 1

    def n_ready(self) -> int:
        """Number of queued ready tasks."""
        return len(self._ready)

    @abstractmethod
    def assign(self, free: list[int], time: float) -> list[tuple[int, int]]:
        """Choose (task, type) pairs for the free processors."""

    def task_finished(self, task: int, time: float) -> None:
        """Completion hook (default no-op)."""

    # -- shared helpers ------------------------------------------------
    def _dispatchable(self, free: list[int]) -> list[tuple[float, int, int, int]]:
        """All (work, seq, task, alpha) pairs runnable right now."""
        out = []
        for task, seq in self._ready.items():
            row = self.job.work[task]
            for alpha in np.flatnonzero(np.isfinite(row)):
                a = int(alpha)
                if free[a] > 0:
                    out.append((float(row[a]), seq, task, a))
        return out


class FlexGreedy(FlexScheduler):
    """Earliest-finish greedy: always dispatch the fastest pair."""

    name = "flexgreedy"

    def assign(self, free: list[int], time: float) -> list[tuple[int, int]]:
        free = list(free)
        chosen: list[tuple[int, int]] = []
        while True:
            cands = self._dispatchable(free)
            if not cands:
                return chosen
            work, _, task, alpha = min(cands)
            chosen.append((task, alpha))
            del self._ready[task]
            free[alpha] -= 1


class FlexMQB(FlexScheduler):
    """Balance-aware dispatch: keep projected per-type backlogs level.

    Maintains a committed-load vector ``load[alpha]`` (work dispatched
    to each type, drained as time advances — approximated here by the
    sum of running tasks' works, which the engine refreshes through
    :meth:`task_started` / :meth:`task_finished`).  A candidate
    ``(task, alpha)`` is scored by the *descending* sorted vector of
    ``(load + work_on_alpha + descendant pull) / P`` — smaller is
    better (levelled, low backlog); ties fall back to faster work and
    FIFO.
    """

    name = "flexmqb"

    def __init__(self) -> None:
        super().__init__()
        self._load: np.ndarray | None = None
        self._running_alpha: dict[int, tuple[int, float]] = {}
        self._d: np.ndarray | None = None

    def prepare(
        self,
        job: FlexDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        self._load = np.zeros(job.num_types)
        self._running_alpha = {}
        self._d = descendant_values(job.graph)
        self._parr = resources.as_array().astype(np.float64)

    def assign(self, free: list[int], time: float) -> list[tuple[int, int]]:
        assert self._load is not None and self._d is not None
        free = list(free)
        chosen: list[tuple[int, int]] = []
        while True:
            cands = self._dispatchable(free)
            if not cands:
                return chosen
            best = None
            best_key = None
            for work, seq, task, alpha in sorted(cands, key=lambda c: (c[1], c[3])):
                hypo = self._load + self._d[task]
                hypo[alpha] += work
                key = tuple(np.sort(hypo / self._parr)[::-1]) + (work, seq)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (task, alpha, work)
            assert best is not None
            task, alpha, work = best
            chosen.append((task, alpha))
            del self._ready[task]
            self._load[alpha] += work
            self._running_alpha[task] = (alpha, work)
            free[alpha] -= 1

    def task_finished(self, task: int, time: float) -> None:
        assert self._load is not None
        entry = self._running_alpha.pop(task, None)
        if entry is not None:
            alpha, work = entry
            self._load[alpha] -= work
