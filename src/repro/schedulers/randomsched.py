"""Random scheduler: the uniform-choice control baseline.

Picks uniformly at random among each type's ready tasks.  Not in the
paper's lineup, but the natural control for its Fig.-4 observation
that on *random* workloads "any best-effort algorithm would work just
fine": if RandomChoice matches KGreedy there but trails every informed
heuristic on layered workloads, the gaps measure information, not
luck.  Online (reads no job structure) and seed-deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.errors import SchedulingError
from repro.schedulers.base import Scheduler
from repro.system.resources import ResourceConfig

__all__ = ["RandomChoice"]


class RandomChoice(Scheduler):
    """Uniformly random selection among ready tasks (online control)."""

    name = "random"
    requires_offline = False

    def __init__(self) -> None:
        super().__init__()
        self._pools: list[list[int]] = []
        self._rng: np.random.Generator | None = None

    def prepare(
        self,
        job: KDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        if rng is None:
            raise SchedulingError(
                "RandomChoice needs an rng; pass one to simulate()"
            )
        self._pools = [[] for _ in range(job.num_types)]
        self._rng = rng

    def task_ready(self, task: int, time: float, work: float) -> None:
        self._pools[int(self.job.types[task])].append(task)

    def pending(self, alpha: int) -> int:
        return len(self._pools[alpha])

    def select(self, alpha: int, n_slots: int, time: float) -> list[int]:
        assert self._rng is not None
        pool = self._pools[alpha]
        take = min(n_slots, len(pool))
        picked_idx = self._rng.choice(len(pool), size=take, replace=False)
        # Remove by index, highest first, so earlier indices stay valid.
        out = [pool[int(i)] for i in picked_idx]
        for i in sorted((int(i) for i in picked_idx), reverse=True):
            pool[i] = pool[-1]
            pool.pop()
        return out
