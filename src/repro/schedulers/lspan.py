"""LSpan: longest remaining span first (paper Section IV-B).

A classic homogeneous heuristic (optimal for out-trees on homogeneous
machines, Hu 1961) applied per type: when an ``alpha``-processor is
free, start the ready ``alpha``-task with the longest *remaining span*
— its own work plus the longest span among its children, i.e. the
work-weighted longest path to a sink.

Remaining spans are static properties of the DAG, so they are computed
once in ``prepare`` and used as heap keys (negated: longest first).
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import cached_remaining_span
from repro.core.kdag import KDag
from repro.schedulers.base import QueueScheduler

__all__ = ["LSpan"]


class LSpan(QueueScheduler):
    """Longest-remaining-span-first offline heuristic."""

    name = "lspan"

    def priorities(self, job: KDag) -> np.ndarray:
        return -cached_remaining_span(job)
