"""Name-based scheduler construction.

The experiment harness and CLI refer to algorithms by string name; this
module maps those names to fresh scheduler instances.  Names:

========================  =====================================================
``random``                uniform-choice online control (not in the paper)
``kgreedy``               online per-type greedy (Section III)
``lspan``                 longest remaining span first
``maxdp``                 maximum descendant value first
``dtype``                 different type first
``shiftbt``               shifting bottleneck
``mqb``                   MQB with full precise information (MQB+All+Pre)
``mqb+all+pre``           alias of ``mqb``
``mqb+all+exp``           full lookahead, exponential noise
``mqb+all+noise``         full lookahead, multiplicative+additive noise
``mqb+1step+pre``         one-step lookahead, precise
``mqb+1step+exp``         one-step lookahead, exponential noise
``mqb+1step+noise``       one-step lookahead, mult+add noise
``mqb[min]``/``mqb[sum]`` balance-metric ablations
``mqb[nocarry]``          no intra-round projection ablation
``dkgreedy``              decentralized KGreedy (per-proc deques + stealing)
``dmqb``                  decentralized MQB (local-deque scoring + stealing)
``emqb``                  energy-weighted MQB (idle-power-weighted balancing)
``kgreedy-consolidate``   KGreedy capped at ``ceil(r * P_alpha)`` per type
========================  =====================================================

The decentralized names accept a bracket-option suffix selecting the
steal policy — ``dkgreedy[half]``, ``dmqb[global]``,
``dkgreedy[half,cost=0.25]`` — parsed by
:func:`repro.decentral.policies.parse_steal_options`.  They run under
:func:`repro.decentral.engine.simulate_decentralized`; the sweep
runner, batch router, service and CLI dispatch on the scheduler type.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.schedulers.dtype import DType
from repro.schedulers.info import (
    ExactInformation,
    ExponentialInformation,
    NoisyInformation,
)
from repro.schedulers.kgreedy import KGreedy
from repro.schedulers.lspan import LSpan
from repro.schedulers.maxdp import MaxDP
from repro.schedulers.mqb import MQB
from repro.schedulers.randomsched import RandomChoice
from repro.schedulers.shiftbt import ShiftBT

__all__ = ["make_scheduler", "available_schedulers", "PAPER_ALGORITHMS"]

#: The six algorithms of the paper's main comparison (Figures 4-7),
#: in the paper's plotting order.
PAPER_ALGORITHMS: tuple[str, ...] = (
    "kgreedy",
    "lspan",
    "dtype",
    "maxdp",
    "shiftbt",
    "mqb",
)

#: The seven bars of the approximated-information experiment (Figure 8).
APPROX_INFO_ALGORITHMS: tuple[str, ...] = (
    "kgreedy",
    "mqb+all+pre",
    "mqb+all+exp",
    "mqb+all+noise",
    "mqb+1step+pre",
    "mqb+1step+exp",
    "mqb+1step+noise",
)

_INFO_FACTORIES: dict[str, Callable[[bool], object]] = {
    "pre": lambda one_step: ExactInformation(one_step=one_step),
    "exp": lambda one_step: ExponentialInformation(one_step=one_step),
    "noise": lambda one_step: NoisyInformation(one_step=one_step),
}

_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "random": RandomChoice,
    "kgreedy": KGreedy,
    "lspan": LSpan,
    "maxdp": MaxDP,
    "dtype": DType,
    "shiftbt": ShiftBT,
    "mqb": MQB,
    "mqb[min]": lambda: MQB(balance_mode="min"),
    "mqb[sum]": lambda: MQB(balance_mode="sum"),
    "mqb[nocarry]": lambda: MQB(carry_projection=False),
}


def make_scheduler(name: str) -> Scheduler:
    """Construct a fresh scheduler instance from its registry name."""
    key = name.strip().lower()
    if key in _FACTORIES:
        return _FACTORIES[key]()
    if key.startswith(("dkgreedy", "dmqb")):
        # Imported lazily: repro.decentral pulls in the sim package,
        # whose batch module imports this registry at module load.
        from repro.decentral.schedulers import make_decentral_scheduler

        return make_decentral_scheduler(key)
    if key.startswith(("emqb", "kgreedy-consolidate")):
        # Lazy for the same reason: the energy schedulers subclass MQB
        # and KGreedy from this package.
        from repro.energy.schedulers import make_energy_scheduler

        return make_energy_scheduler(key)
    if key.startswith("mqb+"):
        parts = key.split("+")
        if len(parts) == 3 and parts[1] in ("all", "1step") and parts[2] in _INFO_FACTORIES:
            one_step = parts[1] == "1step"
            info = _INFO_FACTORIES[parts[2]](one_step)
            return MQB(info=info)  # type: ignore[arg-type]
    raise ConfigurationError(
        f"unknown scheduler {name!r}; known: {sorted(available_schedulers())}"
    )


def available_schedulers() -> list[str]:
    """All registry names accepted by :func:`make_scheduler`."""
    names = set(_FACTORIES)
    for scope in ("all", "1step"):
        for info in _INFO_FACTORIES:
            names.add(f"mqb+{scope}+{info}")
    for base in ("dkgreedy", "dmqb"):
        names.add(base)
        names.add(f"{base}[half]")
        names.add(f"{base}[global]")
    names.add("emqb")
    names.add("emqb[w=0.5]")
    names.add("kgreedy-consolidate")
    names.add("kgreedy-consolidate[r=0.5]")
    return sorted(names)
