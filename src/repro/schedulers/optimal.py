"""Exact optimal makespan for small unit-work K-DAGs.

K-DAG makespan minimization is NP-hard (the paper evaluates against
the lower bound ``L(J)`` for exactly that reason), but for *unit-work*
jobs of modest size the optimum is computable: with unit tasks and
dedicated per-type processor pools, every schedule is a sequence of
unit steps, each step runs a per-type subset of the ready tasks, and
the whole future depends only on *which tasks are done* — so optimal
scheduling is a shortest-path search over done-bitmasks.

An exchange argument shows work conservation is WLOG optimal here:
processors are type-dedicated and tasks are unit, so adding a ready
task to a step never delays anything else.  Hence each step runs, for
every type, either all ready tasks of the type (if they fit) or some
``P_alpha``-subset — only the latter branches.

:func:`optimal_makespan` runs A* with the admissible heuristic
``h = max(ceil-span, ceil per-type work / P)`` of the residual job.
Practical to ~25 tasks with small branching; guarded by ``max_states``.

Uses: verify the Theorem-2 construction's claimed optimum
``T* = K - 1 + m P_K``; measure the true optimality gap of every
heuristic on small instances (``benchmarks/test_optimality_gap.py``) —
something the paper itself could not report.
"""

from __future__ import annotations

import heapq
from itertools import combinations

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError
from repro.system.resources import ResourceConfig

__all__ = ["optimal_makespan"]

#: Refuse jobs larger than this outright (state space is 2^n).
MAX_TASKS = 26


def _residual_lower_bound(
    job: KDag, done: int, bottom: np.ndarray, procs: np.ndarray
) -> int:
    """Admissible steps-to-go: residual span and residual work / P."""
    remaining = [v for v in range(job.n_tasks) if not done >> v & 1]
    if not remaining:
        return 0
    rem = np.asarray(remaining)
    span_lb = int(np.ceil(bottom[rem].max()))
    counts = np.bincount(job.types[rem], minlength=job.num_types)
    work_lb = int(np.ceil((counts / procs).max()))
    return max(span_lb, work_lb)


def optimal_makespan(
    job: KDag,
    resources: ResourceConfig,
    max_states: int = 2_000_000,
) -> int:
    """Exact minimum makespan of a unit-work K-DAG, in steps.

    Raises
    ------
    ConfigurationError
        If the job has non-unit work, exceeds :data:`MAX_TASKS` tasks,
        disagrees with the system on K, or the search exceeds
        ``max_states`` expansions.
    """
    if job.num_types != resources.num_types:
        raise ConfigurationError("job and system disagree on K")
    if job.n_tasks > MAX_TASKS:
        raise ConfigurationError(
            f"{job.n_tasks} tasks exceeds the exact-search limit {MAX_TASKS}"
        )
    if not np.all(job.work == 1.0):
        raise ConfigurationError("optimal_makespan requires unit-work tasks")

    n = job.n_tasks
    procs = resources.as_array()
    types = job.types

    # Parent masks: task v is ready when parents_mask[v] & done == mask.
    parent_mask = np.zeros(n, dtype=np.int64)
    for v in range(n):
        for p in job.parents(v):
            parent_mask[v] |= 1 << int(p)

    from repro.core.properties import _bottom_levels

    bottom = _bottom_levels(job)
    goal = (1 << n) - 1

    start_h = _residual_lower_bound(job, 0, bottom, procs)
    open_heap: list[tuple[int, int, int]] = [(start_h, 0, 0)]  # (f, g, done)
    best_g: dict[int, int] = {0: 0}
    expanded = 0

    while open_heap:
        f, g, done = heapq.heappop(open_heap)
        if done == goal:
            return g
        if g > best_g.get(done, 1 << 30):
            continue
        expanded += 1
        if expanded > max_states:
            raise ConfigurationError(
                f"exact search exceeded {max_states} expansions"
            )

        ready_by_type: list[list[int]] = [[] for _ in range(job.num_types)]
        for v in range(n):
            if not done >> v & 1 and (parent_mask[v] & done) == parent_mask[v]:
                ready_by_type[types[v]].append(v)

        # Per-type choices: all ready tasks if they fit, else every
        # P_alpha-subset (the only place the search branches).
        per_type_choices: list[list[int]] = []
        for alpha, ready in enumerate(ready_by_type):
            cap = int(procs[alpha])
            if len(ready) <= cap:
                mask = 0
                for v in ready:
                    mask |= 1 << v
                per_type_choices.append([mask])
            else:
                choices = []
                for combo in combinations(ready, cap):
                    mask = 0
                    for v in combo:
                        mask |= 1 << v
                    choices.append(mask)
                per_type_choices.append(choices)

        step_masks = [0]
        for choices in per_type_choices:
            step_masks = [base | c for base in step_masks for c in choices]

        for step in step_masks:
            if step == 0:
                continue  # deadlock state; unreachable in a valid DAG
            nxt = done | step
            ng = g + 1
            if ng < best_g.get(nxt, 1 << 30):
                best_g[nxt] = ng
                h = _residual_lower_bound(job, nxt, bottom, procs)
                heapq.heappush(open_heap, (ng + h, ng, nxt))

    raise ConfigurationError("search exhausted without reaching the goal")
