"""DType: different-type-first (paper Section IV-B).

When an ``alpha``-processor is free, start the ready ``alpha``-task with
the *smallest different-child distance* — the hop distance to the
nearest descendant whose type differs from the task's own.  Tasks that
are close ancestors of other-type work get priority, feeding the other
resource types as quickly as possible.  Tasks with no different-type
descendant have distance ``+inf`` and are scheduled last.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import cached_different_child_distance
from repro.core.kdag import KDag
from repro.schedulers.base import QueueScheduler

__all__ = ["DType"]

#: Finite stand-in for "no different-type descendant" so heap keys stay
#: comparable floats; larger than any real hop distance (a DAG path has
#: at most n-1 hops and jobs here are far below this).
_NO_OTHER_TYPE = 1e18


class DType(QueueScheduler):
    """Smallest-different-child-distance-first offline heuristic."""

    name = "dtype"

    def priorities(self, job: KDag) -> np.ndarray:
        dist = cached_different_child_distance(job)
        return np.where(np.isfinite(dist), dist, _NO_OTHER_TYPE)
