"""Scheduling algorithms for K-DAG jobs.

One online algorithm and five offline heuristics, exactly the lineup of
the paper's evaluation (Sections III and IV):

* :class:`~repro.schedulers.kgreedy.KGreedy` — per-type greedy list
  scheduling, ``(K+1)``-competitive, uses no lookahead information.
* :class:`~repro.schedulers.lspan.LSpan` — longest remaining span first.
* :class:`~repro.schedulers.maxdp.MaxDP` — maximum descendant value first.
* :class:`~repro.schedulers.dtype.DType` — smallest different-child
  distance first.
* :class:`~repro.schedulers.shiftbt.ShiftBT` — shifting bottleneck.
* :class:`~repro.schedulers.mqb.MQB` — Multi-Queue Balancing (the
  paper's contribution), with All/1Step × Precise/Exp/Noise
  information variants.

Use :func:`~repro.schedulers.registry.make_scheduler` to construct by
name.
"""

from repro.schedulers.base import QueueScheduler, Scheduler
from repro.schedulers.kgreedy import KGreedy
from repro.schedulers.lspan import LSpan
from repro.schedulers.maxdp import MaxDP
from repro.schedulers.dtype import DType
from repro.schedulers.shiftbt import ShiftBT
from repro.schedulers.mqb import MQB
from repro.schedulers.info import (
    ExactInformation,
    ExponentialInformation,
    InformationModel,
    NoisyInformation,
)
from repro.schedulers.optimal import optimal_makespan
from repro.schedulers.registry import (
    PAPER_ALGORITHMS,
    available_schedulers,
    make_scheduler,
)

__all__ = [
    "Scheduler",
    "QueueScheduler",
    "KGreedy",
    "LSpan",
    "MaxDP",
    "DType",
    "ShiftBT",
    "MQB",
    "InformationModel",
    "ExactInformation",
    "ExponentialInformation",
    "NoisyInformation",
    "make_scheduler",
    "available_schedulers",
    "PAPER_ALGORITHMS",
    "optimal_makespan",
]
