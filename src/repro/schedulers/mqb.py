"""MQB — Multi-Queue Balancing, the paper's contribution (Section IV-A).

MQB keeps one ready queue per resource type and treats the *shortest*
queue (in x-utilization, ``r_alpha = l_alpha / P_alpha``) as the
bottleneck to maximizing system utilization.  When an ``alpha``-
processor frees up and more than ``P_alpha`` ``alpha``-tasks are ready,
MQB starts the ready task whose typed descendant values, added to the
current queue works, yield the *lexicographically best* ascending-
sorted x-utilization vector — i.e. the task expected to feed the
starved types most.  With at most ``P_alpha`` ready tasks it simply
runs them all (any greedy does).

Two interpretation points the paper leaves open, resolved as follows
and ablatable via constructor arguments:

* **Within a decision round**, after MQB commits a task, its descendant
  values stay added to the projected queue vector that scores the
  remaining picks of the same round (``carry_projection=True``).  This
  stops one round from starting several tasks that all feed the same
  starved type.  Set ``carry_projection=False`` for the memoryless
  variant (each pick scored against the actual queues only).
* **The started task's own work** is removed from its queue in the
  hypothetical vector (it leaves the ready queue when it starts).

``balance_mode`` selects the comparison ("lex" is the paper's; "min"
compares only the smallest x-utilization; "sum" maximizes the total) —
the ablation benchmark quantifies how much the lexicographic order
matters.

Information variants (paper Section V-G) are injected through an
:class:`~repro.schedulers.info.InformationModel`.
"""

from __future__ import annotations

import numpy as np

from repro import native as _native
from repro.core.kdag import KDag
from repro.errors import ConfigurationError, SchedulingError
from repro.schedulers.base import Scheduler
from repro.schedulers.info import ExactInformation, InformationModel
from repro.system.resources import ResourceConfig

__all__ = ["MQB"]

_BALANCE_MODES = ("lex", "min", "sum")


class MQB(Scheduler):
    """Multi-Queue Balancing scheduler.

    Parameters
    ----------
    info:
        Descendant-information model; defaults to exact full-lookahead
        values (MQB+All+Pre, the paper's plain "MQB").
    balance_mode:
        "lex" (paper), "min" or "sum" — see module docstring.
    carry_projection:
        Whether committed picks' descendant values project into the
        scoring of later picks in the same round (default True).
    """

    name = "mqb"
    requires_offline = True

    def __init__(
        self,
        info: InformationModel | None = None,
        balance_mode: str = "lex",
        carry_projection: bool = True,
    ) -> None:
        super().__init__()
        if balance_mode not in _BALANCE_MODES:
            raise ConfigurationError(
                f"balance_mode must be one of {_BALANCE_MODES}, got {balance_mode!r}"
            )
        self._info = info if info is not None else ExactInformation()
        self._balance_mode = balance_mode
        self._carry = bool(carry_projection)
        self.name = f"mqb+{self._info.full_label()}"
        if self._info.full_label() == "all+pre":
            self.name = "mqb"  # the paper's headline algorithm
        if balance_mode != "lex":
            self.name += f"[{balance_mode}]"
        if not carry_projection:
            self.name += "[nocarry]"

        self._d: np.ndarray | None = None
        self._wcur: np.ndarray | None = None
        self._l: np.ndarray | None = None
        self._parr: np.ndarray | None = None
        # Per-type ready pools, array backed so each pick scores a
        # contiguous slice instead of re-gathering rows of ``_d``:
        # ``_pos[alpha]`` maps task -> row in the per-type buffers
        # (insertion ordered, which batch starts rely on), and
        # ``_dpool``/``_wpool`` hold the matching descendant rows and
        # current works for rows ``0..len(_pos[alpha])``.  Rows are
        # swap-removed on pop; the buffers grow by doubling.
        self._pos: list[dict[int, int]] = []
        self._ptasks: list[list[int]] = []
        self._dpool: list[np.ndarray] = []
        self._wpool: list[np.ndarray] = []
        self._spool: list[np.ndarray] = []
        self._seq = 0
        # Native-kernel dispatch state (set up in :meth:`prepare`):
        # ``_kpick`` is the bound C entry point or ``None`` for the
        # numpy path; the ``*_ptr`` ints and ``_pp`` per-type pointer
        # triples cache ``ndarray.ctypes.data`` so the per-pick call
        # carries no ctypes marshalling beyond plain integers.
        self._kpick = None
        self._pp: list[tuple[int, int, int]] = []
        self._extra: np.ndarray | None = None

    @property
    def info(self) -> InformationModel:
        """The information model in use."""
        return self._info

    # ------------------------------------------------------------------
    # lifecycle / events
    # ------------------------------------------------------------------
    def prepare(
        self,
        job: KDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        d = np.asarray(self._info.descendant_matrix(job, rng), dtype=np.float64)
        if d.shape != (job.n_tasks, job.num_types):
            raise SchedulingError(
                f"information model returned shape {d.shape}, expected "
                f"({job.n_tasks}, {job.num_types})"
            )
        self._d = d
        self._wcur = job.work.astype(np.float64).copy()
        self._l = np.zeros(job.num_types, dtype=np.float64)
        self._parr = resources.as_array().astype(np.float64)
        k = job.num_types
        self._pos = [dict() for _ in range(k)]
        self._ptasks = [[] for _ in range(k)]
        self._dpool = [np.empty((8, k), dtype=np.float64) for _ in range(k)]
        self._wpool = [np.empty(8, dtype=np.float64) for _ in range(k)]
        self._spool = [np.empty(8, dtype=np.int64) for _ in range(k)]
        self._seq = 0
        self._first_seq: dict[int, int] = {}
        self._extra = np.zeros(k, dtype=np.float64)
        self._kpick = None
        # Native kernel dispatch: only the base scoring rule may be
        # routed to C — subclasses that override ``_pick_best`` (e.g.
        # the energy-weighted EMQB) keep the polymorphic numpy path.
        if type(self)._pick_best is MQB._pick_best and _native.requested():
            if _native.supported(self._balance_mode, k):
                kernel = _native.load_kernel()
                if kernel is None:
                    _native.note_fallback(self._telemetry)
                else:
                    self._kpick = kernel.pick_pop
                    self._k = k
                    self._mode_code = _native.MODE_CODES[self._balance_mode]
                    self._carry_i = 1 if self._carry else 0
                    self._l_ptr = self._l.ctypes.data
                    self._extra_ptr = self._extra.ctypes.data
                    self._parr_ptr = self._parr.ctypes.data
                    self._pp = [
                        (
                            self._dpool[a].ctypes.data,
                            self._wpool[a].ctypes.data,
                            self._spool[a].ctypes.data,
                        )
                        for a in range(k)
                    ]

    def task_ready(self, task: int, time: float, work: float) -> None:
        assert self._l is not None and self._wcur is not None
        assert self._d is not None
        alpha = int(self.job.types[task])
        self._wcur[task] = work
        # Sticky FIFO rank: preemptive re-announcements keep the task's
        # original tie-break position (see KGreedy for rationale).
        seq = self._first_seq.setdefault(task, self._seq)
        if seq == self._seq:
            self._seq += 1
        tasks = self._ptasks[alpha]
        row = len(tasks)
        dpool = self._dpool[alpha]
        if row == dpool.shape[0]:
            self._dpool[alpha] = dpool = np.concatenate(
                [dpool, np.empty_like(dpool)]
            )
            self._wpool[alpha] = np.concatenate(
                [self._wpool[alpha], np.empty_like(self._wpool[alpha])]
            )
            self._spool[alpha] = np.concatenate(
                [self._spool[alpha], np.empty_like(self._spool[alpha])]
            )
            if self._kpick is not None:
                self._pp[alpha] = (
                    dpool.ctypes.data,
                    self._wpool[alpha].ctypes.data,
                    self._spool[alpha].ctypes.data,
                )
        self._pos[alpha][task] = row
        tasks.append(task)
        dpool[row] = self._d[task]
        self._wpool[alpha][row] = work
        self._spool[alpha][row] = seq
        self._l[alpha] += work

    def pending(self, alpha: int) -> int:
        return len(self._ptasks[alpha])

    def task_finished(self, task: int, time: float) -> None:
        pass

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _pop(self, alpha: int, task: int) -> None:
        assert self._l is not None and self._wcur is not None
        pos = self._pos[alpha]
        tasks = self._ptasks[alpha]
        row = pos.pop(task)
        last = len(tasks) - 1
        if row != last:
            moved = tasks[last]
            tasks[row] = moved
            pos[moved] = row  # in-place dict update keeps insertion order
            self._dpool[alpha][row] = self._dpool[alpha][last]
            self._wpool[alpha][row] = self._wpool[alpha][last]
            self._spool[alpha][row] = self._spool[alpha][last]
        tasks.pop()
        self._l[alpha] -= self._wcur[task]

    def _pick_best(self, alpha: int, extra: np.ndarray) -> int:
        """Score every ready alpha-task and return the best one.

        ``extra`` is the projected inflow from picks already committed
        this round (zeros when ``carry_projection`` is off).  The
        candidates' descendant rows and works are maintained
        incrementally in the per-type pool buffers across picks, so
        scoring is a slice-plus-broadcast instead of a fresh gather of
        ``_d`` rows; the arithmetic per candidate is unchanged, keeping
        picks bit-identical to the rescan formulation.
        """
        assert self._d is not None and self._l is not None
        assert self._wcur is not None and self._parr is not None
        tasks = self._ptasks[alpha]
        m = len(tasks)
        r = self._dpool[alpha][:m] + (self._l + extra)
        r[:, alpha] -= self._wpool[alpha][:m]
        r /= self._parr

        # One comparison-only lexsort picks the winner: most-significant
        # key last, FIFO ready sequence (negated: earliest wins the tie)
        # least significant.  Comparisons are exact, so the winner is
        # identical to the narrow-by-column formulation.
        neg_seq = -self._spool[alpha][:m]
        if self._balance_mode == "lex":
            r.sort(axis=1)
            sort_keys = (neg_seq, *(r[:, j] for j in range(r.shape[1] - 1, 0, -1)), r[:, 0])
        elif self._balance_mode == "min":
            sort_keys = (neg_seq, r.min(axis=1))
        else:  # sum
            sort_keys = (neg_seq, r.sum(axis=1))
        return tasks[int(np.lexsort(sort_keys)[-1])]

    def _commit_pick(self, alpha: int, extra: np.ndarray) -> int:
        """Pick the best ready alpha-task, pop it, project its carry.

        The native kernel performs score + pop-swap + ``_l``/``extra``
        updates in one C call over the pool buffers and returns the
        winner's slot; Python mirrors the swap in the task list and
        position dict.  Without a kernel (or for subclasses with their
        own scoring) this is exactly the classic
        ``_pick_best`` / ``_pop`` / carry sequence.
        """
        kpick = self._kpick
        if kpick is not None and extra is self._extra:
            tasks = self._ptasks[alpha]
            dptr, wptr, sptr = self._pp[alpha]
            slot = kpick(
                dptr, wptr, sptr, len(tasks), self._k, alpha,
                self._l_ptr, self._extra_ptr, self._parr_ptr,
                self._mode_code, self._carry_i,
            )
            if slot >= 0:
                pos = self._pos[alpha]
                task = tasks[slot]
                del pos[task]
                last = len(tasks) - 1
                if slot != last:
                    moved = tasks[last]
                    tasks[slot] = moved
                    pos[moved] = slot
                tasks.pop()
                tel = self._telemetry
                if tel is not None:
                    tel.inc("native.calls")
                return task
        v = self._pick_best(alpha, extra)
        self._pop(alpha, v)
        if self._carry:
            extra += self._d[v]
        return v

    def select(self, alpha: int, n_slots: int, time: float) -> list[int]:
        """Per-type selection (used when MQB is driven queue-by-queue)."""
        assert self._d is not None
        out: list[int] = []
        extra = self._extra
        extra[:] = 0.0
        pool = self._pos[alpha]  # insertion ordered, like the old dict pool
        while pool and len(out) < n_slots:
            if len(pool) <= n_slots - len(out):
                remaining = list(pool.keys())
                for v in remaining:
                    self._pop(alpha, v)
                    if self._carry:
                        extra += self._d[v]
                out.extend(remaining)
                break
            out.append(self._commit_pick(alpha, extra))
        return out

    def assign(self, free: list[int], time: float) -> list[int]:
        """Interleaved round: one pick per type per pass until saturated.

        Cross-type interleaving matters because every committed pick
        shifts the balance that scores the next one; cycling the types
        approximates the paper's "repeats this process until all
        processors have been assigned".
        """
        assert self._d is not None
        k = self.job.num_types
        free = list(free)
        extra = self._extra
        extra[:] = 0.0
        chosen: list[int] = []
        progress = True
        while progress:
            progress = False
            for alpha in range(k):
                if free[alpha] <= 0:
                    continue
                pool = self._pos[alpha]
                if not pool:
                    continue
                if len(pool) <= free[alpha]:
                    # At most P_alpha ready alpha-tasks: run them all.
                    batch = list(pool.keys())
                    for v in batch:
                        self._pop(alpha, v)
                        if self._carry:
                            extra += self._d[v]
                    chosen.extend(batch)
                    free[alpha] -= len(batch)
                else:
                    chosen.append(self._commit_pick(alpha, extra))
                    free[alpha] -= 1
                progress = True
        return chosen
