"""Scheduler interface shared by the simulation engines.

The engines (:mod:`repro.sim.engine`, :mod:`repro.sim.preemptive`)
drive schedulers through a small event protocol:

1. :meth:`Scheduler.prepare` once per run — offline algorithms read the
   whole :class:`~repro.core.kdag.KDag` here; online algorithms must
   restrict themselves to ``job.num_types`` and the resource counts
   (this is the paper's online information model, enforced by
   convention and checked in the test suite by scrambling hidden
   fields).
2. :meth:`Scheduler.task_ready` whenever a task's last parent finishes
   (or at time 0 for sources); in preemptive mode also when a running
   task is returned to the pool at a quantum boundary, with its
   *remaining* work.
3. :meth:`Scheduler.assign` at each decision point with the free
   processor counts; the scheduler returns which queued tasks to start.
4. :meth:`Scheduler.task_finished` on completions.

The default :meth:`assign` treats the K queues independently (one
:meth:`select` per type), which matches KGreedy and all single-queue
priority heuristics.  MQB overrides :meth:`assign` to interleave the
per-type picks, because each pick changes the balance that scores the
next one.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kdag import KDag
    from repro.obs.telemetry import Telemetry
    from repro.system.resources import ResourceConfig

__all__ = ["Scheduler", "QueueScheduler"]


class Scheduler(ABC):
    """Abstract scheduling policy for one K-DAG job on one system."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether :meth:`prepare` reads the job structure beyond K (offline).
    requires_offline: bool = True

    def __init__(self) -> None:
        self._job: "KDag | None" = None
        self._resources: "ResourceConfig | None" = None
        self._telemetry: "Telemetry | None" = None

    # -- lifecycle ------------------------------------------------------
    def prepare(
        self,
        job: "KDag",
        resources: "ResourceConfig",
        rng: np.random.Generator | None = None,
    ) -> None:
        """Reset state for a fresh run; offline precomputation goes here.

        ``rng`` feeds stochastic information models (MQB+Exp/Noise);
        deterministic schedulers ignore it.
        """
        if job.num_types != resources.num_types:
            raise SchedulingError(
                f"job has K={job.num_types} but system has "
                f"K={resources.num_types} resource types"
            )
        self._job = job
        self._resources = resources

    @property
    def job(self) -> "KDag":
        """The job of the current run (after :meth:`prepare`)."""
        if self._job is None:
            raise SchedulingError("scheduler used before prepare()")
        return self._job

    @property
    def resources(self) -> "ResourceConfig":
        """The system of the current run (after :meth:`prepare`)."""
        if self._resources is None:
            raise SchedulingError("scheduler used before prepare()")
        return self._resources

    # -- event protocol ---------------------------------------------------
    @abstractmethod
    def task_ready(self, task: int, time: float, work: float) -> None:
        """A task entered the ready pool.

        ``work`` is the amount still to execute — equal to the task's
        full work in non-preemptive mode, possibly less when a
        preemptive engine returns a partially executed task.
        """

    @abstractmethod
    def pending(self, alpha: int) -> int:
        """Number of queued ready ``alpha``-tasks."""

    @abstractmethod
    def select(self, alpha: int, n_slots: int, time: float) -> list[int]:
        """Pop up to ``n_slots`` ready ``alpha``-tasks to start now.

        Must return between 1 and ``n_slots`` tasks whenever
        ``pending(alpha) > 0`` (a greedy/work-conserving policy —
        all six paper algorithms are work conserving).
        """

    def assign(self, free: list[int], time: float) -> list[int]:
        """One decision round: choose tasks to start on the free processors.

        ``free[alpha]`` is the number of idle ``alpha``-processors.
        Returns the chosen task ids (their types determine which pool
        they draw from).  The base implementation runs the K queues
        independently.
        """
        chosen: list[int] = []
        for alpha, slots in enumerate(free):
            if slots <= 0 or self.pending(alpha) == 0:
                continue
            picked = self.select(alpha, slots, time)
            if not picked:
                raise SchedulingError(
                    f"{self.name}: select({alpha}) returned no task while "
                    f"{self.pending(alpha)} were pending"
                )
            if len(picked) > slots:
                raise SchedulingError(
                    f"{self.name}: select({alpha}) returned {len(picked)} "
                    f"tasks for {slots} slots"
                )
            chosen.extend(picked)
        return chosen

    def attach_telemetry(self, telemetry: "Telemetry | None") -> None:
        """Point the decision-timing wrapper at a telemetry context.

        Engines call this once per run, before the event loop, with the
        resolved telemetry (``None`` when observability is disabled).
        Because :meth:`on_decision` is the *only* consumer, schedulers
        need no per-algorithm changes to be covered by decision timing
        — overriding :meth:`assign` (as MQB does) is enough.
        """
        self._telemetry = telemetry

    def on_decision(self, free: list[int], time: float) -> list[int]:
        """:meth:`assign` wrapped with decision-cost telemetry.

        Engines with observability enabled route decision rounds
        through this wrapper instead of calling :meth:`assign`
        directly; the substitution happens once per run, so the
        disabled path carries no extra branch in its inner loop.
        Records the wall time under ``decision.<name>`` and bumps the
        ``decisions.<name>`` / ``dispatched.<name>`` counters.
        """
        tel = self._telemetry
        if tel is None:
            return self.assign(free, time)
        t0 = perf_counter()
        chosen = self.assign(free, time)
        tel.add_time("decision." + self.name, perf_counter() - t0)
        tel.inc("decisions." + self.name)
        tel.inc("dispatched." + self.name, len(chosen))
        return chosen

    def task_finished(self, task: int, time: float) -> None:
        """A task completed (hook; default no-op)."""

    def capacity_changed(self, alpha: int, up: int, time: float) -> None:
        """The number of usable ``alpha``-processors changed (hook).

        The fault-aware engine (:mod:`repro.faults.engine`) calls this
        on every FAIL/REPAIR event with the new count of *up*
        processors of the type (free or busy).  The fault-free engines
        never call it.  Schedulers that reason about per-type capacity
        (e.g. balance heuristics) may override; the free counts passed
        to :meth:`assign` already reflect failures, so the default
        no-op is always safe.
        """


class QueueScheduler(Scheduler):
    """Base for static-priority schedulers: K min-heaps keyed offline.

    Subclasses implement :meth:`priorities` returning one scalar key per
    task; at run time each type's ready pool is a binary heap ordered by
    ``(key, ready sequence)`` so ties resolve in FIFO arrival order and
    runs are fully deterministic.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heaps: list[list[tuple[float, int, int]]] = []
        self._keys: np.ndarray | None = None
        self._seq = 0
        self._first_seq: dict[int, int] = {}

    @abstractmethod
    def priorities(self, job: "KDag") -> np.ndarray:
        """Per-task priority keys (lower key pops first)."""

    def prepare(
        self,
        job: "KDag",
        resources: "ResourceConfig",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        keys = np.asarray(self.priorities(job), dtype=np.float64)
        if keys.shape != (job.n_tasks,):
            raise SchedulingError(
                f"{self.name}: priorities() returned shape {keys.shape}, "
                f"expected ({job.n_tasks},)"
            )
        self._keys = keys
        self._heaps = [[] for _ in range(job.num_types)]
        self._seq = 0
        self._first_seq = {}

    def task_ready(self, task: int, time: float, work: float) -> None:
        assert self._keys is not None
        alpha = int(self.job.types[task])
        # Ties break on the FIRST time a task became ready, and the
        # order is sticky across preemptive re-announcements — a task
        # returned to the pool at a quantum boundary keeps its place
        # rather than dropping behind later arrivals (which would turn
        # FIFO policies into round-robin processor sharing).
        seq = self._first_seq.setdefault(task, self._seq)
        if seq == self._seq:
            self._seq += 1
        heapq.heappush(self._heaps[alpha], (float(self._keys[task]), seq, task))

    def pending(self, alpha: int) -> int:
        return len(self._heaps[alpha])

    def select(self, alpha: int, n_slots: int, time: float) -> list[int]:
        heap = self._heaps[alpha]
        out: list[int] = []
        while heap and len(out) < n_slots:
            out.append(heapq.heappop(heap)[2])
        return out
