"""KGreedy: the paper's online baseline (Section III).

KGreedy runs K independent Graham-style greedy list schedulers, one per
resource type: at any decision point, if more than ``P_alpha``
``alpha``-tasks are ready it starts any ``P_alpha`` of them, otherwise
it starts them all.  It consults *no* job information — not even task
work — so it is a legitimate online algorithm under the paper's model,
and it is ``(K+1)``-competitive for completion time (He, Sun, Hsu,
ICPP'07; Theorem 3), essentially matching the online lower bound of
Theorem 2.

"Any ``P_alpha`` of them" is resolved as FIFO arrival order, which is
deterministic and matches the common list-scheduling reading.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.kdag import KDag
from repro.schedulers.base import Scheduler
from repro.system.resources import ResourceConfig

__all__ = ["KGreedy"]


class KGreedy(Scheduler):
    """Per-type FIFO greedy list scheduler (online).

    FIFO order is by *first* ready time and sticky across preemptive
    re-announcements: a running task returned to the pool at a quantum
    boundary keeps its original position, so the preemptive variant
    keeps tasks running rather than degenerating into round-robin
    processor sharing.
    """

    name = "kgreedy"
    requires_offline = False

    def __init__(self) -> None:
        super().__init__()
        self._heaps: list[list[tuple[int, int]]] = []
        self._seq = 0
        self._first_seq: dict[int, int] = {}

    def prepare(
        self,
        job: KDag,
        resources: ResourceConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().prepare(job, resources, rng)
        # Online restriction: only K is read from the job here.
        self._heaps = [[] for _ in range(job.num_types)]
        self._seq = 0
        self._first_seq = {}

    def task_ready(self, task: int, time: float, work: float) -> None:
        seq = self._first_seq.setdefault(task, self._seq)
        if seq == self._seq:
            self._seq += 1
        heapq.heappush(self._heaps[int(self.job.types[task])], (seq, task))

    def pending(self, alpha: int) -> int:
        return len(self._heaps[alpha])

    def select(self, alpha: int, n_slots: int, time: float) -> list[int]:
        heap = self._heaps[alpha]
        out: list[int] = []
        while heap and len(out) < n_slots:
            out.append(heapq.heappop(heap)[1])
        return out
