"""ShiftBT: shifting bottleneck adapted to K-DAG scheduling.

The paper (Section IV-B) extends the classic shifting bottleneck
procedure of Adams, Balas and Zawack (1988) from job-shop scheduling:

* Each task gets a **due date** — the latest start that does not delay
  the job: ``due(v) = T_inf(J) - remaining_span(v)``.
* For each resource type ``alpha``, *assuming all other types have
  infinitely many processors*, solve a one-type subproblem: schedule
  the ``alpha``-tasks on ``P_alpha`` machines to (heuristically, via
  earliest-due-date dispatch) minimize the maximum lateness, where a
  task's lateness is its subproblem completion time minus its due date.
  The infinite-parallelism assumption turns precedence into *release
  times*: ``release(v)`` is the work on the longest predecessor chain.
* The type with the largest maximum lateness is the current bottleneck;
  its subproblem *sequence* is frozen.  The procedure repeats on the
  remaining types until every type has a frozen sequence.

At run time each type's ready queue dispatches in its frozen sequence
order.  Note this differs from plain EDD (= LSpan's ordering): release
times reorder tasks whose due dates alone would disagree with when the
DAG can actually feed them.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.cache import cached_due_dates
from repro.core.kdag import KDag
from repro.schedulers.base import QueueScheduler

__all__ = ["ShiftBT", "edd_max_lateness_schedule", "top_levels"]


def top_levels(job: KDag) -> np.ndarray:
    """Release times under infinite parallelism.

    ``release(v) = max over parents p of (release(p) + work(p))``, zero
    for sources: the earliest moment ``v`` could start if every
    resource type had unbounded processors.
    """
    release = np.zeros(job.n_tasks, dtype=np.float64)
    for v in job.topological_order:
        vi = int(v)
        for p in job.parents(vi):
            cand = release[p] + job.work[p]
            if cand > release[vi]:
                release[vi] = cand
    return release


def edd_max_lateness_schedule(
    tasks: np.ndarray,
    release: np.ndarray,
    due: np.ndarray,
    work: np.ndarray,
    n_machines: int,
) -> tuple[list[int], float]:
    """EDD list scheduling of one type's subproblem.

    Schedules ``tasks`` on ``n_machines`` identical machines with
    release times, dispatching the released task with the earliest due
    date whenever a machine frees up.  Returns the dispatch sequence
    and the maximum lateness (completion minus due date, as the paper
    defines it).
    """
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    if len(tasks) == 0:
        return [], float("-inf")
    order = sorted(
        (int(t) for t in tasks), key=lambda t: (release[t], due[t], t)
    )
    machines = [0.0] * n_machines
    heapq.heapify(machines)
    released: list[tuple[float, float, int]] = []  # (due, release, task)
    sequence: list[int] = []
    max_lateness = -np.inf
    i = 0
    n = len(order)
    while len(sequence) < n:
        t_free = heapq.heappop(machines)
        # Admit everything released by the machine-free instant; if the
        # pool is empty, fast-forward to the next release.
        if not released and i < n and release[order[i]] > t_free:
            t_free = float(release[order[i]])
        while i < n and release[order[i]] <= t_free:
            t = order[i]
            heapq.heappush(released, (float(due[t]), float(release[t]), t))
            i += 1
        _, rel, task = heapq.heappop(released)
        start = max(t_free, rel)
        completion = start + float(work[task])
        lateness = completion - float(due[task])
        if lateness > max_lateness:
            max_lateness = lateness
        sequence.append(task)
        heapq.heappush(machines, completion)
    return sequence, float(max_lateness)


class ShiftBT(QueueScheduler):
    """Shifting bottleneck offline heuristic for K-DAGs."""

    name = "shiftbt"

    def __init__(self) -> None:
        super().__init__()
        #: Resource types in the order the procedure froze them
        #: (biggest bottleneck first); for inspection and tests.
        self.bottleneck_order: list[int] = []

    def priorities(self, job: KDag) -> np.ndarray:
        due = cached_due_dates(job)
        release = top_levels(job)
        counts = self.resources.as_array()
        position = np.zeros(job.n_tasks, dtype=np.float64)
        self.bottleneck_order = []

        remaining = list(range(job.num_types))
        while remaining:
            lateness: dict[int, float] = {}
            sequences: dict[int, list[int]] = {}
            for alpha in remaining:
                tasks = job.tasks_of_type(alpha)
                if tasks.size == 0:
                    sequences[alpha] = []
                    lateness[alpha] = -np.inf
                    continue
                seq, ml = edd_max_lateness_schedule(
                    tasks, release, due, job.work, int(counts[alpha])
                )
                sequences[alpha] = seq
                lateness[alpha] = ml
            # Freeze the worst bottleneck among the remaining types.
            bottleneck = max(remaining, key=lambda a: (lateness[a], -a))
            for pos, task in enumerate(sequences[bottleneck]):
                position[task] = pos
            self.bottleneck_order.append(bottleneck)
            remaining.remove(bottleneck)
        return position
