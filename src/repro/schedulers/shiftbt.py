"""ShiftBT: shifting bottleneck adapted to K-DAG scheduling.

The paper (Section IV-B) extends the classic shifting bottleneck
procedure of Adams, Balas and Zawack (1988) from job-shop scheduling:

* Each task gets a **due date** — the latest start that does not delay
  the job: ``due(v) = T_inf(J) - remaining_span(v)``.
* For each resource type ``alpha``, *assuming all other types have
  infinitely many processors*, solve a one-type subproblem: schedule
  the ``alpha``-tasks on ``P_alpha`` machines to (heuristically, via
  earliest-due-date dispatch) minimize the maximum lateness, where a
  task's lateness is its subproblem completion time minus its due date.
  The infinite-parallelism assumption turns precedence into *release
  times*: ``release(v)`` is the work on the longest predecessor chain.
* The type with the largest maximum lateness is the current bottleneck;
  its subproblem *sequence* is frozen.  The procedure repeats on the
  remaining types until every type has a frozen sequence.

At run time each type's ready queue dispatches in its frozen sequence
order.  Note this differs from plain EDD (= LSpan's ordering): release
times reorder tasks whose due dates alone would disagree with when the
DAG can actually feed them.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.cache import cached_due_dates
from repro.core.kdag import KDag, csr_gather
from repro.schedulers.base import QueueScheduler

__all__ = ["ShiftBT", "edd_max_lateness_schedule", "top_levels"]


def top_levels(job: KDag) -> np.ndarray:
    """Release times under infinite parallelism.

    ``release(v) = max over parents p of (release(p) + work(p))``, zero
    for sources: the earliest moment ``v`` could start if every
    resource type had unbounded processors.  Computed level by level
    (every parent sits on a strictly lower level, see
    :meth:`KDag.levels`), so each level is one gather + segmented max.
    """
    release = np.zeros(job.n_tasks, dtype=np.float64)
    order, level_ptr = job.levels()
    work = job.work
    parent_ptr, parent_idx = job.parent_ptr, job.parent_idx
    for li in range(1, len(level_ptr) - 1):
        nodes = order[level_ptr[li] : level_ptr[li + 1]]
        flat, seg_starts = csr_gather(parent_ptr, parent_idx, nodes)
        release[nodes] = np.maximum.reduceat(release[flat] + work[flat], seg_starts)
    return release


def edd_max_lateness_schedule(
    tasks: np.ndarray,
    release: np.ndarray,
    due: np.ndarray,
    work: np.ndarray,
    n_machines: int,
) -> tuple[list[int], float]:
    """EDD list scheduling of one type's subproblem.

    Schedules ``tasks`` on ``n_machines`` identical machines with
    release times, dispatching the released task with the earliest due
    date whenever a machine frees up.  Returns the dispatch sequence
    and the maximum lateness (completion minus due date, as the paper
    defines it).
    """
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    if len(tasks) == 0:
        return [], float("-inf")
    # Admission order by (release, due, task), computed vectorized;
    # the hot dispatch loop below then runs on plain Python floats —
    # extracting numpy scalars element-by-element costs several times
    # the heap operations themselves.
    tasks = np.asarray(tasks)
    order = tasks[np.lexsort((tasks, due[tasks], release[tasks]))]
    rel_l = release[order].tolist()
    due_l = due[order].tolist()
    work_l = work[order].tolist()
    task_l = order.tolist()
    machines = [0.0] * n_machines
    heapq.heapify(machines)
    released: list[tuple[float, float, int, float]] = []  # (due, rel, task, work)
    sequence: list[int] = []
    max_lateness = -float("inf")
    i = 0
    n = len(task_l)
    done = 0
    heappop, heappush = heapq.heappop, heapq.heappush
    while done < n:
        t_free = heappop(machines)
        # Admit everything released by the machine-free instant; if the
        # pool is empty, fast-forward to the next release.
        if not released and i < n and rel_l[i] > t_free:
            t_free = rel_l[i]
        while i < n and rel_l[i] <= t_free:
            heappush(released, (due_l[i], rel_l[i], task_l[i], work_l[i]))
            i += 1
        d, rel, task, w = heappop(released)
        start = t_free if t_free > rel else rel
        completion = start + w
        lateness = completion - d
        if lateness > max_lateness:
            max_lateness = lateness
        sequence.append(task)
        done += 1
        heappush(machines, completion)
    return sequence, float(max_lateness)


class ShiftBT(QueueScheduler):
    """Shifting bottleneck offline heuristic for K-DAGs."""

    name = "shiftbt"

    def __init__(self) -> None:
        super().__init__()
        #: Resource types in the order the procedure froze them
        #: (biggest bottleneck first); for inspection and tests.
        self.bottleneck_order: list[int] = []

    def priorities(self, job: KDag) -> np.ndarray:
        due = cached_due_dates(job)
        release = top_levels(job)
        counts = self.resources.as_array()
        position = np.zeros(job.n_tasks, dtype=np.float64)

        # The subproblem inputs (release, due, work, counts) never
        # change while types are frozen, so every freeze round would
        # re-derive byte-identical sequences and latenesses.  Solve
        # each type once; the freeze order is then just the types
        # sorted by (lateness, -alpha) descending — the same sequence
        # of arg-maxes the round-by-round procedure takes — and the
        # frozen positions are each type's own sequence positions.
        lateness: dict[int, float] = {}
        for alpha in range(job.num_types):
            tasks = job.tasks_of_type(alpha)
            if tasks.size == 0:
                lateness[alpha] = -np.inf
                continue
            seq, ml = edd_max_lateness_schedule(
                tasks, release, due, job.work, int(counts[alpha])
            )
            lateness[alpha] = ml
            position[seq] = np.arange(len(seq), dtype=np.float64)
        self.bottleneck_order = sorted(
            range(job.num_types), key=lambda a: (lateness[a], -a), reverse=True
        )
        return position
