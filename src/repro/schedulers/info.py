"""Information models: what MQB believes about descendant workloads.

Paper Section V-G studies MQB under *approximated* offline information,
crossing two axes:

* **Scope** — ``All`` (full recursive descendant values) versus
  ``1Step`` (immediate children only).
* **Precision** — ``Pre`` (exact values), ``Exp`` (each value replaced
  by an exponential random variable whose mean is the true value) and
  ``Noise`` (true value times a uniform multiplicative factor in
  [0.5, 1.5], plus an additive uniform term in [0, mean task work]).

An :class:`InformationModel` turns a job into the ``(n_tasks, K)``
descendant matrix MQB consumes; stochastic models draw fresh noise per
``prepare`` from the run's generator, so repeated runs with the same
seed reproduce exactly.  The deterministic base values are memoized
per job via :mod:`repro.core.cache`; only the noise is redrawn.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.cache import (
    cached_descendant_values,
    cached_one_step_descendant_values,
)
from repro.core.kdag import KDag
from repro.errors import ConfigurationError

__all__ = [
    "InformationModel",
    "ExactInformation",
    "ExponentialInformation",
    "NoisyInformation",
]


class InformationModel(ABC):
    """Produces MQB's typed descendant matrix for a job."""

    #: Suffix used in scheduler registry names, e.g. ``all+pre``.
    label: str = "abstract"

    def __init__(self, one_step: bool = False) -> None:
        self.one_step = bool(one_step)

    def _true_values(self, job: KDag) -> np.ndarray:
        # Memoized per job (repro.core.cache): the true values are pure
        # functions of the DAG, so the seven Fig.-8 variants and
        # repeated prepares on one job share a single offline pass.
        # The returned array is read-only and shared — stochastic
        # subclasses layer fresh noise on top, never mutate it.
        if self.one_step:
            return cached_one_step_descendant_values(job)
        return cached_descendant_values(job)

    @abstractmethod
    def descendant_matrix(
        self, job: KDag, rng: np.random.Generator | None
    ) -> np.ndarray:
        """The ``(n_tasks, K)`` matrix of (possibly noisy) d-values."""

    @property
    def scope_label(self) -> str:
        """``"1step"`` or ``"all"`` — the lookahead scope."""
        return "1step" if self.one_step else "all"

    def full_label(self) -> str:
        """Combined scope+precision label, e.g. ``all+noise``."""
        return f"{self.scope_label}+{self.label}"


class ExactInformation(InformationModel):
    """Precise descendant values (MQB+All+Pre / MQB+1Step+Pre)."""

    label = "pre"

    def descendant_matrix(
        self, job: KDag, rng: np.random.Generator | None
    ) -> np.ndarray:
        return self._true_values(job)


class ExponentialInformation(InformationModel):
    """Exponentially distributed estimates with the true value as mean.

    Entries whose true value is zero stay exactly zero (an exponential
    with mean 0 is degenerate at 0), so the noise never invents
    descendant work of a type that has none.
    """

    label = "exp"

    def descendant_matrix(
        self, job: KDag, rng: np.random.Generator | None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError(
                "ExponentialInformation needs an rng; pass one to simulate()"
            )
        true = self._true_values(job)
        # Generator.exponential(scale=0) returns 0, preserving zeros.
        return rng.exponential(scale=true)


class NoisyInformation(InformationModel):
    """Multiplicative + additive uniform noise (MQB+*+Noise).

    ``d~ = d * U(0.5, 1.5) + U(0, w_avg)`` per (task, type) entry, where
    ``w_avg`` is the job's mean task work — the paper's "average work of
    the task".  Estimates can thus be up to ~2x off and strictly
    positive even where the true value is 0.
    """

    label = "noise"

    #: Multiplicative noise bounds from the paper.
    MULT_RANGE = (0.5, 1.5)

    def descendant_matrix(
        self, job: KDag, rng: np.random.Generator | None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError(
                "NoisyInformation needs an rng; pass one to simulate()"
            )
        true = self._true_values(job)
        lo, hi = self.MULT_RANGE
        mult = rng.uniform(lo, hi, size=true.shape)
        add = rng.uniform(0.0, float(job.work.mean()), size=true.shape)
        return true * mult + add
