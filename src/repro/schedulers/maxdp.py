"""MaxDP: maximum descendants first (paper Section IV-B).

When an ``alpha``-processor is free, start the ready ``alpha``-task with
the largest *descendant value*.  The value uses the same parent-sharing
recursion as MQB — a task ``u`` with ``pr(u)`` parents contributes
``1/pr(u)`` of its own descendant value plus ``1/pr(u)`` of its own work
to each parent — but, unlike MQB, it does **not** split by resource
type, which is exactly why it misfires on layered EP workloads
(observed in paper Fig. 4(d): knowing *how much* is downstream without
knowing *which types* cannot balance utilization).
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import cached_untyped_descendant_values
from repro.core.kdag import KDag
from repro.schedulers.base import QueueScheduler

__all__ = ["MaxDP"]


class MaxDP(QueueScheduler):
    """Maximum-(untyped)-descendant-value-first offline heuristic."""

    name = "maxdp"

    def priorities(self, job: KDag) -> np.ndarray:
        return -cached_untyped_descendant_values(job)
