"""Command-line interface: reproduce the paper's experiments.

Usage::

    repro list
    repro cells
    repro run fig4 [--instances 300] [--seed 2011] [--out results/]
    repro run robustness [--mtbf 2.0] [--mttr 0.25] [--fault-seed 7]
    repro run all --out results/
    repro report results/fig4.json
    repro demo medium-layered-ir --scheduler mqb
    repro trace medium-layered-ir --scheduler mqb --out trace.json
    repro profile fig4 --instances 50
    repro cache stats
    repro serve --port 8512 --workers 4
    repro submit schedule medium-layered-ir --scheduler mqb
    repro route --port 8600 --shards 4

``repro run`` prints the rendered tables and (with ``--out``) saves the
raw JSON; ``repro report`` re-renders a saved result; ``repro demo``
simulates one sampled instance and draws the schedule as an ASCII
Gantt chart with per-type utilizations.

``repro trace`` runs one sampled instance with full event tracing
(:mod:`repro.obs`) and exports a Chrome trace-event file — open it in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` for a
per-processor timeline — plus a text utilization summary.
``repro profile`` runs a whole experiment under the phase profiler and
prints where the wall-clock time went.

Sweeps memoize per-instance results in a persistent content-addressed
cache (:mod:`repro.resultcache`): re-running a finished experiment is
pure lookups, an interrupted one resumes where it stopped.  ``repro
cache stats|clear|prune`` manages the store; ``--no-cache`` (or
``REPRO_CACHE=0``) runs without it.

``repro serve`` runs the scheduling daemon (:mod:`repro.service`):
JSON-over-HTTP submission of schedules, sweeps, and stream simulations
with admission control and result deduplication; ``repro submit``
talks to it.  ``repro route`` runs the sharded cluster front-end
(:mod:`repro.cluster`): a consistent-hash router over N supervised
``repro serve`` shard processes, speaking the same protocol.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.report import render_result
from repro.experiments.store import load_result, save_result

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scheduling Functionally Heterogeneous "
            "Systems with Utilization Balancing' (IPDPS 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help=f"one of {sorted(EXPERIMENTS)} or 'all'")
    run_p.add_argument(
        "--instances",
        type=int,
        default=None,
        help="instances per plotted point (default: per-figure; paper used 5000)",
    )
    run_p.add_argument("--seed", type=int, default=None, help="base seed")
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for instance sweeps (default: serial, or the "
            "REPRO_WORKERS env var; results are identical for any count)"
        ),
    )
    run_p.add_argument(
        "--engine",
        choices=("scalar", "batch"),
        default=None,
        help=(
            "simulation engine for non-preemptive sweeps (default: the "
            "REPRO_ENGINE env var, else scalar); 'batch' simulates cache "
            "misses in vectorized lockstep with bit-identical results"
        ),
    )
    run_p.add_argument(
        "--native",
        choices=("auto", "on", "off"),
        default=None,
        help=(
            "compiled MQB selection kernel (default: the REPRO_NATIVE env "
            "var, else auto); 'on' warns if the kernel cannot be loaded, "
            "'off' forces the pure-numpy path — results are bit-identical "
            "either way"
        ),
    )
    run_p.add_argument("--out", default=None, help="directory for JSON results")
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress rendered tables"
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "recompute every instance instead of consulting the result "
            "cache (equivalent to REPRO_CACHE=0)"
        ),
    )
    run_p.add_argument(
        "--mtbf",
        type=float,
        default=None,
        help=(
            "robustness only: mean time between failures per processor, in "
            "units of the instance lower bound L(J); replaces the default "
            "failure-rate sweep with the single point 1/MTBF"
        ),
    )
    run_p.add_argument(
        "--mttr",
        type=float,
        default=None,
        help=(
            "robustness only: mean time to repair, in units of L(J) "
            "(default 0.25)"
        ),
    )
    run_p.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help=(
            "robustness only: seed for the failure timelines, decoupled "
            "from the workload seed (default: the workload seed)"
        ),
    )

    rep_p = sub.add_parser("report", help="render a saved result JSON")
    rep_p.add_argument("path", help="path to a result .json file")
    rep_p.add_argument(
        "--chart", action="store_true",
        help="draw bar results as ASCII bar charts (like the paper's figures)",
    )
    rep_p.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub-flavoured markdown tables",
    )

    sub.add_parser("cells", help="list workload cells")

    demo_p = sub.add_parser(
        "demo", help="simulate one instance and draw its Gantt chart"
    )
    demo_p.add_argument("cell", help="workload cell name (see `repro cells`)")
    demo_p.add_argument("--scheduler", default="mqb", help="algorithm name")
    demo_p.add_argument("--seed", type=int, default=0, help="instance seed")
    demo_p.add_argument("--width", type=int, default=100, help="chart width")
    demo_p.add_argument(
        "--preemptive", action="store_true", help="use the preemptive engine"
    )
    demo_p.add_argument(
        "--power",
        default=None,
        help=(
            "power config name for an energy breakdown of the schedule "
            "(baseline, idle-heavy, hetero, shutdown; see repro.energy)"
        ),
    )

    trace_p = sub.add_parser(
        "trace",
        help="simulate one instance with event tracing; export a Chrome trace",
    )
    trace_p.add_argument("cell", help="workload cell name (see `repro cells`)")
    trace_p.add_argument("--scheduler", default="mqb", help="algorithm name")
    trace_p.add_argument("--seed", type=int, default=0, help="instance seed")
    trace_p.add_argument(
        "--out",
        default="trace.json",
        help=(
            "Chrome trace-event output path (open in Perfetto or "
            "chrome://tracing; default trace.json)"
        ),
    )
    trace_p.add_argument(
        "--jsonl",
        default=None,
        help="also write the raw event stream as JSON lines to this path",
    )
    trace_p.add_argument(
        "--preemptive", action="store_true", help="use the preemptive engine"
    )
    trace_p.add_argument(
        "--capacity",
        type=int,
        default=1 << 20,
        help="event ring-buffer capacity (oldest events drop beyond it)",
    )

    prof_p = sub.add_parser(
        "profile", help="run one experiment under the phase profiler"
    )
    prof_p.add_argument("experiment", help=f"one of {sorted(EXPERIMENTS)}")
    prof_p.add_argument(
        "--instances", type=int, default=None, help="instances per plotted point"
    )
    prof_p.add_argument("--seed", type=int, default=None, help="base seed")
    prof_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes; per-chunk profiles are merged, so counter "
            "totals are identical for any count"
        ),
    )
    prof_p.add_argument(
        "--engine",
        choices=("scalar", "batch"),
        default=None,
        help="simulation engine (see `repro run --engine`)",
    )
    prof_p.add_argument(
        "--native",
        choices=("auto", "on", "off"),
        default=None,
        help="compiled MQB selection kernel (see `repro run --native`)",
    )
    prof_p.add_argument(
        "--full",
        action="store_true",
        help="full observability report (decision costs, counters), "
        "not just the timer table",
    )
    prof_p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every instance (equivalent to REPRO_CACHE=0)",
    )

    from repro.cluster.cli import add_cluster_parser
    from repro.resultcache.cli import add_cache_parser
    from repro.service.cli import add_service_parsers

    add_cache_parser(sub)
    add_service_parsers(sub)
    add_cluster_parser(sub)
    return parser


def _cmd_list() -> int:
    for name, fn in sorted(EXPERIMENTS.items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name:11s} {doc}")
    return 0


def _apply_no_cache(args: argparse.Namespace) -> None:
    """``--no-cache`` is sugar for REPRO_CACHE=0 (process-wide: worker
    processes inherit the environment, so the whole sweep honours it)."""
    if getattr(args, "no_cache", False):
        import os

        os.environ["REPRO_CACHE"] = "0"


def _apply_native(args: argparse.Namespace) -> None:
    """``--native`` is sugar for REPRO_NATIVE (inherited by workers)."""
    choice = getattr(args, "native", None)
    if choice is not None:
        import os

        os.environ["REPRO_NATIVE"] = {"auto": "auto", "on": "1", "off": "0"}[
            choice
        ]


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_no_cache(args)
    _apply_native(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        fault_kwargs = {}
        if name == "robustness" or args.experiment != "all":
            fault_kwargs = {
                "mtbf": args.mtbf,
                "mttr": args.mttr,
                "fault_seed": args.fault_seed,
            }
        result = run_experiment(
            name,
            n_instances=args.instances,
            seed=args.seed,
            n_workers=args.workers,
            engine=args.engine,
            **fault_kwargs,
        )
        elapsed = time.time() - t0
        if not args.quiet:
            print(render_result(result))
            print(f"[{name} completed in {elapsed:.1f}s]\n", file=sys.stderr)
        if args.out:
            path = save_result(result, args.out)
            print(f"[saved {path}]", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = load_result(args.path)
    if getattr(args, "chart", False):
        from repro.experiments.report import render_bar_chart

        print(render_bar_chart(result))
    elif getattr(args, "markdown", False):
        from repro.experiments.report import render_markdown

        print(render_markdown(result))
    else:
        print(render_result(result))
    return 0


def _cmd_cells() -> int:
    from repro.experiments.robustness import ROBUSTNESS_CELLS
    from repro.workloads.generator import EXTRA_CELLS, WORKLOAD_CELLS

    robustness = {name for name, _ in ROBUSTNESS_CELLS}
    for name, spec in {**WORKLOAD_CELLS, **EXTRA_CELLS}.items():
        mark = "  [robustness sweep]" if name in robustness else ""
        print(f"{name:24s} {spec.label}{mark}")
    return 0


def _reject_preemptive_decentral(scheduler, preemptive: bool) -> None:
    from repro.decentral.schedulers import DecentralScheduler
    from repro.errors import ConfigurationError

    if preemptive and isinstance(scheduler, DecentralScheduler):
        raise ConfigurationError(
            f"{scheduler.name}: decentralized schedulers do not support "
            f"the preemptive engine"
        )


def _reject_power_decentral(scheduler) -> None:
    from repro.decentral.schedulers import DecentralScheduler
    from repro.errors import ConfigurationError

    if isinstance(scheduler, DecentralScheduler):
        raise ConfigurationError(
            f"{scheduler.name}: energy accounting is not supported for "
            f"decentralized schedulers — steal costs occupy processors "
            f"outside the recorded trace segments, so idle energy would "
            f"silently be wrong"
        )


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.decentral.engine import dispatch_simulate
    from repro.schedulers.registry import make_scheduler
    from repro.sim.gantt import render_gantt
    from repro.sim.metrics import average_utilization
    from repro.sim.preemptive import simulate_preemptive
    from repro.workloads.generator import sample_instance, workload_cell

    spec = workload_cell(args.cell)
    job, system = sample_instance(spec, np.random.default_rng(args.seed))
    scheduler = make_scheduler(args.scheduler)
    _reject_preemptive_decentral(scheduler, args.preemptive)
    if args.power is not None:
        _reject_power_decentral(scheduler)
    engine = simulate_preemptive if args.preemptive else dispatch_simulate
    result = engine(
        job, system, scheduler,
        rng=np.random.default_rng(args.seed), record_trace=True,
    )
    print(
        f"{spec.label}: {job.n_tasks} tasks, {job.n_edges} edges on "
        f"{system.counts}"
    )
    print(
        f"{result.scheduler}: makespan {result.makespan:g}, "
        f"ratio {result.completion_time_ratio():.3f} vs L(J) "
        f"{result.lower_bound():g}\n"
    )
    assert result.trace is not None
    print(render_gantt(result.trace, system, width=args.width))
    util = average_utilization(result.trace, system, result.makespan)
    print("\nper-type utilization: "
          + "  ".join(f"t{a}={u:.0%}" for a, u in enumerate(util)))
    if args.power is not None:
        from repro.energy.metrics import energy_breakdown
        from repro.energy.models import power_config

        power = power_config(args.power, system.num_types)
        bd = energy_breakdown(result.trace, system, power, result.makespan)
        busy_floor = bd["busy"]
        norm = f" ({bd['total'] / busy_floor:.3f}x busy floor)" if busy_floor else ""
        print(
            f"\nenergy [{power.name}]: total {bd['total']:.1f}{norm} — "
            f"busy {bd['busy']:.1f}, idle {bd['idle']:.1f}, "
            f"sleep {bd['sleep']:.1f}, wake {bd['wake']:.1f} "
            f"({bd['n_shutdowns']}/{bd['n_gaps']} idle gaps slept)"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.obs.events import EventStream
    from repro.obs.export import (
        render_summary,
        write_chrome_trace,
        write_events_jsonl,
    )
    from repro.decentral.engine import dispatch_simulate
    from repro.obs.telemetry import Telemetry
    from repro.schedulers.registry import make_scheduler
    from repro.sim.preemptive import simulate_preemptive
    from repro.workloads.generator import sample_instance, workload_cell

    spec = workload_cell(args.cell)
    job, system = sample_instance(spec, np.random.default_rng(args.seed))
    telemetry = Telemetry(events=EventStream(capacity=args.capacity))
    scheduler = make_scheduler(args.scheduler)
    _reject_preemptive_decentral(scheduler, args.preemptive)
    engine = simulate_preemptive if args.preemptive else dispatch_simulate
    result = engine(
        job, system, scheduler,
        rng=np.random.default_rng(args.seed), telemetry=telemetry,
    )
    print(
        f"{spec.label}: {job.n_tasks} tasks on {system.counts} — "
        f"{result.scheduler} makespan {result.makespan:g}, "
        f"ratio {result.completion_time_ratio():.3f}\n"
    )
    print(
        render_summary(
            telemetry.snapshot(),
            events=telemetry.events,
            resources=system,
            makespan=result.makespan,
        )
    )
    path = write_chrome_trace(telemetry.events, args.out, resources=system)
    print(
        f"[chrome trace: {path} — open in Perfetto or chrome://tracing]",
        file=sys.stderr,
    )
    if args.jsonl:
        n = write_events_jsonl(telemetry.events, args.jsonl)
        print(f"[{n} events: {args.jsonl}]", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.export import render_summary
    from repro.obs.profile import render_profile
    from repro.obs.telemetry import Telemetry

    _apply_no_cache(args)
    _apply_native(args)
    telemetry = Telemetry()
    t0 = time.time()
    run_experiment(
        args.experiment,
        n_instances=args.instances,
        seed=args.seed,
        n_workers=args.workers,
        telemetry=telemetry,
        engine=args.engine,
    )
    elapsed = time.time() - t0
    snap = telemetry.snapshot()
    print(render_summary(snap) if args.full else render_profile(snap))
    print(f"[{args.experiment} profiled in {elapsed:.1f}s]", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cells":
        return _cmd_cells()
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "cache":
        from repro.resultcache.cli import cmd_cache

        return cmd_cache(args)
    if args.command == "serve":
        from repro.service.cli import cmd_serve

        return cmd_serve(args)
    if args.command == "submit":
        from repro.service.cli import cmd_submit

        return cmd_submit(args)
    if args.command == "route":
        from repro.cluster.cli import cmd_route

        return cmd_route(args)
    return _cmd_report(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
