"""Steal policies for the decentralized engine.

A :class:`StealPolicy` fixes the three knobs of the work-stealing
protocol (Tchiboukdjian, Gast & Trystram, "Decentralized List
Scheduling"):

* ``victims`` — who an idle processor may steal from.  ``"random"`` is
  the paper's protocol: one uniformly random *other* processor of the
  same functional type per attempt (type compatibility is structural —
  an ``alpha``-processor can only ever run ``alpha``-tasks, so victim
  sets never cross types).  ``"global"`` is the degenerate limit: all
  same-type deques merge into one shared pool, which together with zero
  steal cost reproduces the centralized engine bit-for-bit (the
  correctness anchor asserted in CI).
* ``amount`` — ``"one"`` takes the oldest queued task from the victim;
  ``"half"`` takes the older half (``ceil(m/2)``, FIFO order
  preserved), the classic steal-half variant.
* ``cost`` — simulated time one steal attempt takes.  ``0`` resolves
  attempts synchronously at the decision instant; ``> 0`` keeps the
  thief busy for ``cost`` time units and resolves against the victim's
  deque *as of the resolution instant* (the steal can miss work that
  was there when it was launched).  ``"global"`` victims require
  ``cost == 0`` — a shared pool with latency is not a defined protocol.

Policies are frozen, hashable, and serialize to both a registry-name
suffix (:meth:`StealPolicy.suffix`) and a fingerprint dict
(:meth:`StealPolicy.fingerprint`) so cache keys cover every knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["StealPolicy", "parse_steal_options", "VICTIM_MODES", "STEAL_AMOUNTS"]

VICTIM_MODES = ("random", "global")
STEAL_AMOUNTS = ("one", "half")


@dataclass(frozen=True)
class StealPolicy:
    """Immutable description of one work-stealing protocol variant."""

    victims: str = "random"
    amount: str = "one"
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.victims not in VICTIM_MODES:
            raise ConfigurationError(
                f"steal victims must be one of {VICTIM_MODES}, got {self.victims!r}"
            )
        if self.amount not in STEAL_AMOUNTS:
            raise ConfigurationError(
                f"steal amount must be one of {STEAL_AMOUNTS}, got {self.amount!r}"
            )
        cost = float(self.cost)
        if not math.isfinite(cost) or cost < 0.0:
            raise ConfigurationError(
                f"steal cost must be finite and >= 0, got {self.cost!r}"
            )
        object.__setattr__(self, "cost", cost)
        if self.victims == "global" and cost != 0.0:
            raise ConfigurationError(
                "global victim set requires steal cost 0 (a shared pool "
                "with steal latency is not a defined protocol)"
            )

    @property
    def is_degenerate(self) -> bool:
        """True in the centralized limit (global pool, zero cost)."""
        return self.victims == "global"

    def suffix(self) -> str:
        """Registry-name suffix, e.g. ``"[half,cost=0.5]"`` (``""`` if default)."""
        parts: list[str] = []
        if self.victims != "random":
            parts.append(self.victims)
        if self.amount != "one":
            parts.append(self.amount)
        if self.cost != 0.0:
            parts.append(f"cost={self.cost:g}")
        return f"[{','.join(parts)}]" if parts else ""

    def fingerprint(self) -> dict:
        """Canonical dict for result-cache keys."""
        return {"victims": self.victims, "amount": self.amount, "cost": self.cost}


def parse_steal_options(text: str) -> StealPolicy:
    """Parse a bracket-option string (``"half,cost=0.25"``) into a policy."""
    victims = "random"
    amount = "one"
    cost = 0.0
    for raw in text.split(","):
        opt = raw.strip()
        if not opt:
            continue
        if opt in VICTIM_MODES:
            victims = opt
        elif opt in STEAL_AMOUNTS:
            amount = opt
        elif opt.startswith("cost="):
            try:
                cost = float(opt[5:])
            except ValueError:
                raise ConfigurationError(
                    f"bad steal cost {opt[5:]!r} (expected a number)"
                ) from None
        else:
            raise ConfigurationError(
                f"unknown steal option {opt!r}; known: "
                f"{VICTIM_MODES + STEAL_AMOUNTS + ('cost=<float>',)}"
            )
    return StealPolicy(victims=victims, amount=amount, cost=cost)
