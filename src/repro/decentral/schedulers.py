"""Decentralized scheduler variants: DKGreedy and DMQB.

These run under :func:`repro.decentral.engine.simulate_decentralized`.
The engine owns the per-processor deques; the scheduler contributes two
things on top of the standard event protocol:

* :meth:`DecentralScheduler.pick_local` — given one processor's deque
  (a list of ``(ready_seq, task)`` entries), return the index of the
  entry that processor should start.  This is the *local* policy: it
  sees only the candidates physically present in that deque, which is
  the whole point of decentralization.
* :meth:`DecentralScheduler.task_started` — notification that the
  engine started a task it popped from a deque (the centralized
  ``select``/``assign`` path pops from the scheduler's own pools, so
  this hook exists only for the decentralized loop to keep aggregate
  state consistent).

In the degenerate limit (``StealPolicy(victims="global", cost=0)``) the
engine instead drives the standard ``assign`` protocol, which for
DKGreedy *is* KGreedy and for DMQB *is* MQB — that is what makes the
centralized limit bit-identical, not an approximate re-derivation.

Global knowledge boundary: DKGreedy stays fully local (FIFO by ready
sequence).  DMQB keeps the O(K) aggregate queue-work vector ``l`` and
the per-task descendant values — the paper's utilization-balancing
signal — but scores only its local candidates with them.  ``l`` is the
kind of small shared counter a real runtime can maintain with atomics;
the ready *sets* are what stay distributed.
"""

from __future__ import annotations

import numpy as np

from repro.decentral.policies import StealPolicy, parse_steal_options
from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.schedulers.kgreedy import KGreedy
from repro.schedulers.mqb import MQB

__all__ = ["DecentralScheduler", "DKGreedy", "DMQB", "make_decentral_scheduler"]


class DecentralScheduler:
    """Mixin marking a scheduler as decentralized-engine capable.

    Engines and the batch router test ``isinstance(s, DecentralScheduler)``
    to pick the execution path; the mixin carries the steal policy and
    the two extra protocol hooks.
    """

    steal_policy: StealPolicy

    def pick_local(
        self, alpha: int, entries: list[tuple[int, int]], time: float
    ) -> int:
        """Index into ``entries`` (``(ready_seq, task)``) to start next."""
        raise NotImplementedError

    def task_started(self, task: int, time: float) -> None:
        """The decentralized engine started ``task`` from a deque."""
        raise NotImplementedError


class DKGreedy(DecentralScheduler, KGreedy):
    """KGreedy with per-processor deques: local FIFO plus stealing.

    Locally each processor starts its oldest queued task (by global
    ready sequence, matching KGreedy's FIFO reading); balance across
    processors comes only from the steal protocol.  Fully online: no
    job information beyond K is consulted.
    """

    name = "dkgreedy"

    def __init__(self, policy: StealPolicy | None = None) -> None:
        super().__init__()
        self.steal_policy = policy if policy is not None else StealPolicy()
        self.name = "dkgreedy" + self.steal_policy.suffix()

    def pick_local(
        self, alpha: int, entries: list[tuple[int, int]], time: float
    ) -> int:
        best = 0
        best_seq = entries[0][0]
        for i in range(1, len(entries)):
            s = entries[i][0]
            if s < best_seq:
                best = i
                best_seq = s
        return best

    def task_started(self, task: int, time: float) -> None:
        # The KGreedy heaps are only consumed by the centralized
        # (degenerate-limit) path; the decentralized loop tracks
        # membership in its own deques, so stale heap entries are never
        # observed and nothing needs removing here.
        pass


class DMQB(DecentralScheduler, MQB):
    """MQB scoring restricted to the local deque, plus stealing.

    Each pick evaluates MQB's x-utilization balance vector
    ``r = (d[v] + l) / P`` (own queued work removed from the task's own
    type) over the candidates in *one* processor's deque, ascending
    lexicographic comparison, FIFO ready-sequence tie-break — exactly
    the centralized formula on a restricted candidate set.  There is no
    intra-round carry projection: rounds are an artifact of the global
    view, and decentralized picks commit independently.
    """

    def __init__(self, policy: StealPolicy | None = None) -> None:
        super().__init__()
        self.steal_policy = policy if policy is not None else StealPolicy()
        self.name = "dmqb" + self.steal_policy.suffix()

    def pick_local(
        self, alpha: int, entries: list[tuple[int, int]], time: float
    ) -> int:
        assert self._d is not None and self._l is not None
        assert self._wcur is not None and self._parr is not None
        tasks = [t for _, t in entries]
        r = self._d[tasks] + self._l
        r[:, alpha] -= self._wcur[tasks]
        r /= self._parr
        neg_seq = np.array([-s for s, _ in entries], dtype=np.int64)
        if self._balance_mode == "lex":
            r.sort(axis=1)
            keys = (neg_seq, *(r[:, j] for j in range(r.shape[1] - 1, 0, -1)), r[:, 0])
        elif self._balance_mode == "min":
            keys = (neg_seq, r.min(axis=1))
        else:  # sum
            keys = (neg_seq, r.sum(axis=1))
        return int(np.lexsort(keys)[-1])

    def task_started(self, task: int, time: float) -> None:
        # Keep the aggregate queue-work vector (and the pool buffers the
        # degenerate path scores from) consistent with the deques.
        self._pop(int(self.job.types[task]), task)


_DECENTRAL_CLASSES: tuple[tuple[str, type], ...] = (
    ("dkgreedy", DKGreedy),
    ("dmqb", DMQB),
)


def make_decentral_scheduler(name: str) -> Scheduler:
    """Build a decentralized scheduler from a registry name.

    Accepts ``dkgreedy`` / ``dmqb`` with an optional bracket-option
    suffix parsed by :func:`parse_steal_options`, e.g.
    ``dkgreedy[half]``, ``dmqb[global]``, ``dkgreedy[half,cost=0.25]``.
    """
    key = name.strip().lower()
    for base, cls in _DECENTRAL_CLASSES:
        if key == base:
            return cls()
        if key.startswith(base + "[") and key.endswith("]"):
            return cls(parse_steal_options(key[len(base) + 1 : -1]))
    raise ConfigurationError(
        f"unknown decentralized scheduler {name!r}; expected dkgreedy/dmqb "
        f"with optional [victims,amount,cost=...] options"
    )
