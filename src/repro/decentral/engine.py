"""Decentralized work-stealing execution engine.

Each processor owns a local deque of ready tasks of its own functional
type.  A processor that completes a task immediately starts the best
task in its own deque (per the scheduler's :meth:`pick_local` policy);
an idle processor with an empty deque makes one steal attempt per
decision instant against a uniformly random *other* processor of its
type.  Placement of newly ready tasks is local too: a child of the same
type as its completing parent lands in the completing processor's deque
(chain locality); cross-type children and sources are spread
round-robin over the target type's processors.

Two loop variants share this module:

* **Degenerate limit** (``StealPolicy(victims="global", cost=0)``): all
  same-type deques merge into one shared pool, which is exactly the
  centralized model — so the loop *is* ``simulate()``'s loop, driving
  the scheduler through the standard ``assign`` protocol.  For DKGreedy
  that protocol is KGreedy's and for DMQB it is MQB's, which makes the
  degenerate limit bit-identical (makespan, trace, decision counts) to
  the centralized engine — the correctness anchor mirrored from the
  faults subsystem's λ=0 identity and asserted in CI
  (``scripts/check_decentral_identity.py``).  Steal accounting still
  runs (under enabled telemetry only): starting a task on a processor
  other than the deque it would have occupied counts as a zero-cost
  steal from the shared pool.
* **Stealing loop** (``victims="random"``): true per-processor deques.
  The event heap holds completion events and — when ``cost > 0`` —
  steal-resolution events; a globally unique push sequence keeps heap
  order deterministic.  All victim randomness comes from the single
  ``rng`` argument, so the experiment harness's paired per-algorithm
  seed streams already make runs reproducible and cache keys sound.

Determinism: identical (job, resources, scheduler, rng state) produce
identical results, traces and steal-event sequences, with telemetry
enabled or disabled — victim draws never branch on observability.
"""

from __future__ import annotations

import heapq
from time import perf_counter

import numpy as np

from repro.core.kdag import KDag
from repro.decentral.schedulers import DecentralScheduler
from repro.errors import ConfigurationError, SchedulingError
from repro.obs.events import COMPLETE, DECISION, SAMPLE, SLICE, STEAL
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import Scheduler
from repro.sim.engine import simulate
from repro.sim.result import ScheduleResult
from repro.sim.trace import ScheduleTrace
from repro.system.resources import ResourceConfig

__all__ = ["simulate_decentralized", "dispatch_simulate"]

# Event-kind tags inside the heap tuples of the stealing loop.
_EV_COMPLETE = 0
_EV_STEAL = 1


def dispatch_simulate(
    job: KDag,
    resources: ResourceConfig,
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> ScheduleResult:
    """Route to the engine matching the scheduler.

    Decentralized schedulers (the ``dkgreedy``/``dmqb`` family) run
    under :func:`simulate_decentralized`; everything else under the
    centralized :func:`~repro.sim.engine.simulate`.  Call sites that
    accept arbitrary registry names (runner, service, CLI, batch
    fallback) use this instead of hard-coding the centralized engine.
    """
    if isinstance(scheduler, DecentralScheduler):
        return simulate_decentralized(
            job, resources, scheduler, rng=rng,
            record_trace=record_trace, telemetry=telemetry,
        )
    return simulate(
        job, resources, scheduler, rng=rng,
        record_trace=record_trace, telemetry=telemetry,
    )


def simulate_decentralized(
    job: KDag,
    resources: ResourceConfig,
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    record_trace: bool = False,
    telemetry: Telemetry | None = None,
) -> ScheduleResult:
    """Run a decentralized scheduler over per-processor deques.

    Parameters mirror :func:`~repro.sim.engine.simulate`; ``rng``
    additionally drives victim selection, so it is required for
    reproducible steal sequences (``None`` falls back to a fixed seed).

    Raises
    ------
    ConfigurationError
        If ``scheduler`` is not a :class:`DecentralScheduler`.
    SchedulingError
        On protocol violations or a stalled run (same contract as the
        centralized engine).
    """
    if not isinstance(scheduler, DecentralScheduler):
        raise ConfigurationError(
            "simulate_decentralized needs a decentralized scheduler "
            f"(dkgreedy/dmqb family), got {getattr(scheduler, 'name', scheduler)!r}"
        )
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    scheduler.attach_telemetry(obs)
    if rng is None:
        rng = np.random.default_rng(0)
    if obs is None:
        scheduler.prepare(job, resources, rng)
    else:
        _t0 = perf_counter()
        scheduler.prepare(job, resources, rng)
        obs.add_time("phase.prepare", perf_counter() - _t0)
    if scheduler.steal_policy.is_degenerate:
        return _run_degenerate(job, resources, scheduler, record_trace, obs)
    return _run_stealing(job, resources, scheduler, rng, record_trace, obs)


def _finish_obs(obs, scheduler, n, decisions, seq, heap_peak, busy, makespan, t_loop):
    """Common end-of-run telemetry for both loop variants."""
    obs.add_time("phase.engine_loop", perf_counter() - t_loop)
    obs.inc("engine.runs")
    obs.inc("decentral.runs")
    obs.inc("engine.tasks", n)
    obs.inc("engine.decisions", decisions)
    obs.inc("engine.events_pushed", seq)
    obs.observe("engine.heap_peak", heap_peak)
    for per_type in busy:
        for b in per_type:
            obs.observe("decentral.proc_idle", makespan - b)


def _run_degenerate(job, resources, scheduler, record_trace, obs):
    """Centralized limit: ``simulate()``'s loop plus steal accounting.

    The control flow below replicates :func:`repro.sim.engine.simulate`
    statement for statement (same decision condition, same heap tuples,
    same push sequence), which is what the bit-identity guard leans on.
    The only additions are obs-gated: home-deque tracking so shared-pool
    dispatches that cross processors count as zero-cost steals, and
    per-processor busy accumulation for the idle histogram.
    """
    k = job.num_types
    n = job.n_tasks
    types = job.types.tolist()
    work = job.work.tolist()
    child_ptr = job.child_ptr.tolist()
    child_idx = job.child_idx.tolist()

    indeg = job.in_degrees().tolist()
    state = [0] * n  # 0 pending, 1 ready, 2 running, 3 done
    free = list(resources.counts)
    free_procs: list[list[int]] = [list(range(c - 1, -1, -1)) for c in resources.counts]
    trace = ScheduleTrace() if record_trace else None

    # Steal accounting (observability only — placement has no effect on
    # behavior in the shared-pool limit): home[v] is the deque task v
    # would occupy under the decentralized placement rule.
    home = [0] * n if obs is not None else None
    spread = [0] * k
    busy = [[0.0] * c for c in resources.counts] if obs is not None else None

    events: list[tuple[float, int, int, int]] = []
    seq = 0
    n_ready = 0
    completed = 0
    decisions = 0
    now = 0.0
    makespan = 0.0

    for v in job.sources():
        vi = int(v)
        state[vi] = 1
        n_ready += 1
        scheduler.task_ready(vi, now, work[vi])
        if home is not None:
            alpha = types[vi]
            home[vi] = spread[alpha] % resources.counts[alpha]
            spread[alpha] += 1

    assign = scheduler.assign if obs is None else scheduler.on_decision
    heap_peak = 0
    _t_loop = perf_counter() if obs is not None else 0.0

    heappush, heappop = heapq.heappush, heapq.heappop
    while completed < n:
        if n_ready and any(
            free[a] and scheduler.pending(a) for a in range(k)
        ):
            decisions += 1
            chosen = assign(free, now)
            counts_this_round = [0] * k
            for task in chosen:
                if state[task] != 1:
                    raise SchedulingError(
                        f"{scheduler.name} started task {task} in state "
                        f"{state[task]} (not ready)"
                    )
                alpha = types[task]
                counts_this_round[alpha] += 1
                if counts_this_round[alpha] > free[alpha]:
                    raise SchedulingError(
                        f"{scheduler.name} oversubscribed type {alpha} "
                        f"({counts_this_round[alpha]} > {free[alpha]} free)"
                    )
                state[task] = 2
                n_ready -= 1
                proc = free_procs[alpha].pop()
                finish = now + work[task]
                heappush(events, (finish, seq, task, proc))
                seq += 1
                if trace is not None:
                    trace.add(task, alpha, proc, now, finish)
                if obs is not None:
                    busy[alpha][proc] += work[task]
                    obs.emit(SLICE, now, task=task, alpha=alpha, proc=proc,
                             end=finish)
                    if home[task] != proc:
                        obs.inc("steal.attempts")
                        obs.inc("steal.successes")
                        obs.inc("steal.tasks_moved")
                        obs.emit(STEAL, now, alpha=alpha, thief=proc,
                                 victim=home[task], n=1, ok=True)
            for alpha, c in enumerate(counts_this_round):
                free[alpha] -= c
            if obs is not None:
                obs.emit(DECISION, now, n=len(chosen))
                if len(events) > heap_peak:
                    heap_peak = len(events)

        if obs is not None:
            obs.emit(
                SAMPLE, now,
                ready=[scheduler.pending(a) for a in range(k)],
                free=list(free),
            )

        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: {n_ready} ready, "
                f"{n - completed} unfinished, nothing running"
            )

        now = events[0][0]
        while events and events[0][0] == now:
            _, _, task, proc = heappop(events)
            state[task] = 3
            completed += 1
            alpha = types[task]
            free[alpha] += 1
            free_procs[alpha].append(proc)
            makespan = now
            if obs is not None:
                obs.emit(COMPLETE, now, task=task, alpha=alpha, proc=proc)
            scheduler.task_finished(task, now)
            for ei in range(child_ptr[task], child_ptr[task + 1]):
                ci = child_idx[ei]
                left = indeg[ci] - 1
                indeg[ci] = left
                if left == 0:
                    state[ci] = 1
                    n_ready += 1
                    scheduler.task_ready(ci, now, work[ci])
                    if home is not None:
                        ca = types[ci]
                        if ca == alpha:
                            home[ci] = proc
                        else:
                            home[ci] = spread[ca] % resources.counts[ca]
                            spread[ca] += 1

    if obs is not None:
        _finish_obs(obs, scheduler, n, decisions, seq, heap_peak, busy,
                    makespan, _t_loop)

    return ScheduleResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        preemptive=False,
        trace=trace,
        decisions=decisions,
    )


def _run_stealing(job, resources, scheduler, rng, record_trace, obs):
    """True decentralized loop: per-processor deques, random-victim steals.

    Heap tuples are ``(time, seq, _EV_COMPLETE, task, proc)`` or
    ``(time, seq, _EV_STEAL, alpha, thief, victim)``; ``seq`` is
    globally unique so comparisons never reach the payload and pop
    order is deterministic.  A "decision" is any event instant at which
    at least one task starts (the decentralized analogue of the
    centralized decision round).
    """
    policy = scheduler.steal_policy
    cost = policy.cost
    steal_half = policy.amount == "half"
    k = job.num_types
    n = job.n_tasks
    types = job.types.tolist()
    work = job.work.tolist()
    child_ptr = job.child_ptr.tolist()
    child_idx = job.child_idx.tolist()

    indeg = job.in_degrees().tolist()
    state = [0] * n  # 0 pending, 1 ready, 2 running, 3 done
    counts = list(resources.counts)
    free_procs: list[list[int]] = [list(range(c - 1, -1, -1)) for c in counts]
    # deques[alpha][p]: FIFO-ordered (ready_seq, task) entries owned by
    # processor p of type alpha.  Steals preserve entry order.
    deques: list[list[list[tuple[int, int]]]] = [
        [[] for _ in range(c)] for c in counts
    ]
    queued = [0] * k  # total deque occupancy per type (gates stealing)
    spread = [0] * k  # round-robin cursor for cross-type/source placement
    trace = ScheduleTrace() if record_trace else None
    busy = [[0.0] * c for c in counts] if obs is not None else None

    events: list = []
    seq = 0
    ready_seq = 0
    completed = 0
    decisions = 0
    heap_peak = 0
    now = 0.0
    makespan = 0.0
    heappush, heappop = heapq.heappush, heapq.heappop
    integers = rng.integers
    pick_local = scheduler.pick_local

    def place(v: int, t: float, from_alpha: int, from_proc: int) -> None:
        nonlocal ready_seq
        alpha = types[v]
        state[v] = 1
        scheduler.task_ready(v, t, work[v])
        if alpha == from_alpha:
            p = from_proc  # chain locality: same-type child stays home
        else:
            p = spread[alpha] % counts[alpha]
            spread[alpha] += 1
        deques[alpha][p].append((ready_seq, v))
        ready_seq += 1
        queued[alpha] += 1

    def transfer(alpha: int, thief: int, victim: int, t: float) -> bool:
        """Move work from victim's deque to thief's; emit accounting."""
        vdq = deques[alpha][victim]
        if vdq:
            moved = (len(vdq) + 1) // 2 if steal_half else 1
            deques[alpha][thief].extend(vdq[:moved])
            del vdq[:moved]
            if obs is not None:
                obs.inc("steal.successes")
                obs.inc("steal.tasks_moved", moved)
                obs.emit(STEAL, t, alpha=alpha, thief=thief, victim=victim,
                         n=moved, ok=True)
            return True
        if obs is not None:
            obs.inc("steal.failed_empty")
            obs.emit(STEAL, t, alpha=alpha, thief=thief, victim=victim,
                     n=0, ok=False)
        return False

    for v in job.sources():
        place(int(v), 0.0, -1, -1)

    _t_loop = perf_counter() if obs is not None else 0.0

    while True:
        # ---- decision phase at `now`: every free processor acts ----
        _t_dec = perf_counter() if obs is not None else 0.0
        started = 0
        for alpha in range(k):
            stack = free_procs[alpha]
            if not stack:
                continue
            dq_a = deques[alpha]
            pa = counts[alpha]
            still_idle: list[int] = []
            while stack:
                p = stack.pop()
                dq = dq_a[p]
                if not dq and queued[alpha] and pa > 1:
                    # One steal attempt per idle processor per instant,
                    # uniformly random other same-type victim.  The draw
                    # happens regardless of observability, keeping runs
                    # bit-identical with telemetry on or off.
                    victim = int(integers(pa - 1))
                    if victim >= p:
                        victim += 1
                    if obs is not None:
                        obs.inc("steal.attempts")
                    if cost > 0.0:
                        # Thief is busy stealing until now + cost; the
                        # outcome resolves against the victim's deque at
                        # that instant.
                        heappush(events, (now + cost, seq, _EV_STEAL,
                                          alpha, p, victim))
                        seq += 1
                        if len(events) > heap_peak:
                            heap_peak = len(events)
                        continue
                    if not transfer(alpha, p, victim, now):
                        still_idle.append(p)
                        continue
                if dq:
                    i = 0 if len(dq) == 1 else pick_local(alpha, dq, now)
                    task = dq.pop(i)[1]
                    queued[alpha] -= 1
                    if state[task] != 1:
                        raise SchedulingError(
                            f"{scheduler.name} started task {task} in state "
                            f"{state[task]} (not ready)"
                        )
                    state[task] = 2
                    scheduler.task_started(task, now)
                    finish = now + work[task]
                    heappush(events, (finish, seq, _EV_COMPLETE, task, p))
                    seq += 1
                    started += 1
                    if len(events) > heap_peak:
                        heap_peak = len(events)
                    if trace is not None:
                        trace.add(task, alpha, p, now, finish)
                    if obs is not None:
                        busy[alpha][p] += work[task]
                        obs.emit(SLICE, now, task=task, alpha=alpha, proc=p,
                                 end=finish)
                else:
                    still_idle.append(p)
            # Reversed re-push keeps the stack's pop order stable across
            # instants (lowest processor id pops first, like the
            # centralized engine's free lists).
            stack.extend(reversed(still_idle))
        if started:
            decisions += 1
            if obs is not None:
                obs.emit(DECISION, now, n=started)
                obs.inc("decisions." + scheduler.name)
                obs.inc("dispatched." + scheduler.name, started)
        if obs is not None:
            obs.add_time("decision." + scheduler.name, perf_counter() - _t_dec)
            obs.emit(SAMPLE, now, ready=list(queued),
                     free=[len(s) for s in free_procs])

        if completed >= n:
            break
        if not events:
            raise SchedulingError(
                f"{scheduler.name} stalled at t={now}: {sum(queued)} queued, "
                f"{n - completed} unfinished, nothing running"
            )

        # ---- advance to the next event instant ----
        now = events[0][0]
        while events and events[0][0] == now:
            ev = heappop(events)
            if ev[2] == _EV_COMPLETE:
                task, p = ev[3], ev[4]
                state[task] = 3
                completed += 1
                alpha = types[task]
                free_procs[alpha].append(p)
                makespan = now
                if obs is not None:
                    obs.emit(COMPLETE, now, task=task, alpha=alpha, proc=p)
                scheduler.task_finished(task, now)
                for ei in range(child_ptr[task], child_ptr[task + 1]):
                    ci = child_idx[ei]
                    left = indeg[ci] - 1
                    indeg[ci] = left
                    if left == 0:
                        place(ci, now, alpha, p)
            else:  # steal resolution
                alpha, thief, victim = ev[3], ev[4], ev[5]
                transfer(alpha, thief, victim, now)
                free_procs[alpha].append(thief)

    if obs is not None:
        _finish_obs(obs, scheduler, n, decisions, seq, heap_peak, busy,
                    makespan, _t_loop)

    return ScheduleResult(
        makespan=makespan,
        scheduler=scheduler.name,
        job=job,
        resources=resources,
        preemptive=False,
        trace=trace,
        decisions=decisions,
    )
