"""Decentralized work-stealing scheduling subsystem.

Per-processor deques of typed tasks, random-victim stealing, and
decentralized variants of the paper's schedulers (DKGreedy, DMQB).  See
:mod:`repro.decentral.engine` for the execution model and the
degenerate-limit identity that anchors correctness.
"""

from repro.decentral.engine import dispatch_simulate, simulate_decentralized
from repro.decentral.policies import StealPolicy, parse_steal_options
from repro.decentral.schedulers import (
    DKGreedy,
    DMQB,
    DecentralScheduler,
    make_decentral_scheduler,
)

__all__ = [
    "simulate_decentralized",
    "dispatch_simulate",
    "StealPolicy",
    "parse_steal_options",
    "DecentralScheduler",
    "DKGreedy",
    "DMQB",
    "make_decentral_scheduler",
]
