"""Content-addressed cache of per-instance sweep results.

Sweeps in this repo are perfectly memoizable: instance ``i`` of a
comparison derives all of its randomness from ``SeedSequence([seed,
i])``, so its result column is a pure function of the fingerprint
(workload spec, algorithm list, seed, instance index, engine knobs,
:data:`~repro.resultcache.keys.ENGINE_REV`, numpy major version).
This package persists those columns under their SHA-256 content
addresses and lets the experiment pipeline skip every computation it
has already done — a finished sweep re-runs as pure lookups, an
interrupted one resumes from its last persisted chunk, and only
cache-miss instances are dispatched to worker processes.

Modules:

* :mod:`~repro.resultcache.keys` — fingerprints and ``ENGINE_REV``;
* :mod:`~repro.resultcache.records` — the JSON record codec;
* :mod:`~repro.resultcache.store` — atomic, lock-free file store;
* :mod:`~repro.resultcache.integrate` — shims used by the runners;
* :mod:`~repro.resultcache.stats` — ``repro cache stats`` aggregation;
* :mod:`~repro.resultcache.cli` — the ``repro cache`` subcommand.
"""

from repro.resultcache.keys import (
    ENGINE_REV,
    comparison_fingerprint,
    fingerprint_digest,
    instance_key,
    robustness_fingerprint,
    workload_fingerprint,
)
from repro.resultcache.records import CacheRecordError, decode_record, encode_record
from repro.resultcache.store import (
    ResultStore,
    atomic_write_text,
    cache_enabled,
    default_cache_dir,
    open_store,
)
from repro.resultcache.integrate import SweepCache, open_sweep_cache, segments_of
from repro.resultcache.stats import StoreStats, collect_stats, render_stats

__all__ = [
    "ENGINE_REV",
    "comparison_fingerprint",
    "robustness_fingerprint",
    "workload_fingerprint",
    "fingerprint_digest",
    "instance_key",
    "CacheRecordError",
    "encode_record",
    "decode_record",
    "ResultStore",
    "atomic_write_text",
    "cache_enabled",
    "default_cache_dir",
    "open_store",
    "SweepCache",
    "open_sweep_cache",
    "segments_of",
    "StoreStats",
    "collect_stats",
    "render_stats",
]
