"""``repro cache {stats,clear,prune}`` — manage the sweep result cache."""

from __future__ import annotations

import argparse

from repro.errors import ConfigurationError
from repro.resultcache.keys import ENGINE_REV
from repro.resultcache.stats import collect_stats, render_stats
from repro.resultcache.store import ResultStore, default_cache_dir

__all__ = ["add_cache_parser", "cmd_cache"]


def add_cache_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``cache`` subcommand to the CLI's subparser tree."""
    cache_p = sub.add_parser(
        "cache", help="inspect or manage the sweep result cache"
    )
    cache_p.add_argument(
        "action",
        choices=("stats", "clear", "prune"),
        help=(
            "stats: what is stored; clear: delete every record; prune: "
            f"delete records not from the current engine rev ({ENGINE_REV})"
        ),
    )
    cache_p.add_argument(
        "--dir",
        default=None,
        help=(
            "cache directory (default: REPRO_CACHE_DIR, else "
            f"{default_cache_dir()})"
        ),
    )


def cmd_cache(args: argparse.Namespace) -> int:
    """Execute one cache management action."""
    store = ResultStore(args.dir)
    if args.action == "stats":
        print(render_stats(collect_stats(store)))
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    if args.action == "prune":
        removed = store.prune()
        print(
            f"pruned {removed} stale result(s) from {store.root} "
            f"(kept engine rev {ENGINE_REV})"
        )
        return 0
    raise ConfigurationError(f"unknown cache action {args.action!r}")
