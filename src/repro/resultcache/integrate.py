"""Glue between the result cache and the sweep runners.

:class:`SweepCache` binds one sweep's base fingerprint to a
:class:`~repro.resultcache.store.ResultStore` and speaks the runners'
language — instance indices and ``(n_rows, n_instances)`` matrices:

* :meth:`fill_hits` resolves every instance up front, writes cached
  columns straight into the output matrix, and returns the *miss*
  indices.  The parallel runners shard only those (cache hits never
  occupy a pool slot); an all-hit sweep never builds a process pool
  at all.
* :meth:`write_chunk` is the ``on_chunk`` callback of
  :func:`repro.experiments.parallel.run_sharded_instances`: as each
  chunk's block lands in the parent, its columns are persisted —
  which is what makes an interrupted sweep resumable from its last
  completed chunk.
* :meth:`lookup` / :meth:`write_instance` are the per-instance forms
  the serial :func:`~repro.experiments.runner.run_comparison` loop
  uses (serial sweeps resume at instance granularity).

Cache traffic is counted into the sweep's
:class:`~repro.obs.telemetry.Telemetry` under ``cache.hits``,
``cache.misses``, ``cache.invalidated`` (corrupt record replaced) and
``cache.writes`` — ``repro profile`` surfaces the hit rate.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import Telemetry
from repro.resultcache.keys import instance_key
from repro.resultcache.store import ResultStore, open_store

__all__ = ["SweepCache", "open_sweep_cache", "segments_of"]


def segments_of(indices: list[int]) -> list[tuple[int, int]]:
    """Maximal contiguous ``(start, stop)`` runs of a sorted index list."""
    segments: list[tuple[int, int]] = []
    for i in indices:
        if segments and segments[-1][1] == i:
            segments[-1] = (segments[-1][0], i + 1)
        else:
            segments.append((i, i + 1))
    return segments


class SweepCache:
    """One sweep's view of the result store."""

    def __init__(
        self,
        store: ResultStore,
        base_fields: dict,
        n_rows: int,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.store = store
        self.base_fields = base_fields
        self.n_rows = n_rows
        self._obs = telemetry if (telemetry is not None and telemetry.enabled) else None

    def _count(self, status: str) -> None:
        if self._obs is not None:
            self._obs.inc(
                {"hit": "cache.hits", "miss": "cache.misses",
                 "invalid": "cache.invalidated"}[status]
            )

    def key_for(self, instance: int) -> str:
        return instance_key(self.base_fields, instance)

    # -- per-instance (serial loop) -------------------------------------
    def lookup(self, instance: int) -> np.ndarray | None:
        """The cached column for ``instance``, or ``None`` on a miss."""
        column, status = self.store.lookup(self.key_for(instance), self.n_rows)
        self._count(status)
        return column

    def write_instance(self, instance: int, column: np.ndarray) -> None:
        """Persist one freshly computed instance column."""
        fields = {**self.base_fields, "instance": int(instance)}
        self.store.put(self.key_for(instance), fields, column)
        if self._obs is not None:
            self._obs.inc("cache.writes")

    # -- whole-sweep (sharded runners) ----------------------------------
    def fill_hits(self, out: np.ndarray) -> list[int]:
        """Write every cached column into ``out``; return miss indices."""
        misses: list[int] = []
        for i in range(out.shape[1]):
            column, status = self.store.lookup(self.key_for(i), self.n_rows)
            self._count(status)
            if column is None:
                misses.append(i)
            else:
                out[:, i] = column
        return misses

    def write_chunk(self, start: int, block: np.ndarray) -> None:
        """Persist the columns of one completed ``(start, ...)`` chunk."""
        for j in range(block.shape[1]):
            self.write_instance(start + j, block[:, j])


def open_sweep_cache(
    base_fields: dict, n_rows: int, telemetry: Telemetry | None = None
) -> SweepCache | None:
    """A :class:`SweepCache`, or ``None`` when ``REPRO_CACHE`` disables it."""
    store = open_store()
    if store is None:
        return None
    return SweepCache(store, base_fields, n_rows, telemetry=telemetry)
