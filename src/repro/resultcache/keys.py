"""Cache-key fingerprints for memoized sweep results.

A cached instance result is only reusable if **everything** it depends
on is part of its key.  The fingerprint of one instance of a sweep
covers:

* the workload cell — family, structure, system size, K, skew and the
  full generator parameter set (``spec.effective_params``, so a spec
  built with explicit default params and one built with ``params=None``
  share entries: they sample identical instances);
* the algorithm list, by registry name.  Registry names encode
  scheduler parameters (``mqb[min]``, ``mqb+1step+exp``, ...), and the
  *whole ordered list* is fingerprinted because instance randomness is
  spawned positionally — scheduler ``a`` draws from child ``a + 1`` of
  ``SeedSequence([seed, i])``, so the same scheduler in a different
  slot of a different list sees a different generator;
* the base seed and the instance index ``i``;
* engine selection knobs — ``preemptive`` and (only when preemptive,
  where it matters) the ``quantum``; robustness sweeps add their full
  grid (rates, fault seed, repair/horizon factors, recovery policy);
* :data:`ENGINE_REV`, the engine-semantics version.  **Bump it in any
  PR that changes simulated results** — engine event ordering, workload
  sampling, scheduler tie-breaking, seeding layout.  Old entries then
  miss (and ``repro cache prune`` deletes them) instead of silently
  serving results the current code would not produce;
* the numpy major version, since generator bit streams are only
  guaranteed stable within a major release.

Keys are content addresses: the SHA-256 hex digest of the canonical
JSON form (sorted keys, no whitespace) of the field dict.  Any field
flip yields a different digest — asserted field-by-field in
``tests/resultcache/test_keys.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Sequence

import numpy as np

from repro.workloads.params import WorkloadSpec

__all__ = [
    "ENGINE_REV",
    "NUMPY_MAJOR",
    "canonical_json",
    "fingerprint_digest",
    "workload_fingerprint",
    "comparison_fingerprint",
    "robustness_fingerprint",
    "decentral_fingerprint",
    "energy_fingerprint",
    "instance_key",
]

#: Version of the simulation semantics the cached results embody.
#: Bump whenever a change alters any simulated number for a fixed
#: (spec, algorithms, seed) — see the module docstring and DESIGN.md.
#: Rev 2: vectorized IR workload sampling draws a different (equally
#: distributed) random stream, so IR instances differ from rev 1.
ENGINE_REV = 2

#: Generator streams are stable within a numpy major version only.
NUMPY_MAJOR = int(np.__version__.split(".")[0])


def canonical_json(fields: dict) -> str:
    """Deterministic JSON form: sorted keys, compact separators."""
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def fingerprint_digest(fields: dict) -> str:
    """SHA-256 content address of a canonicalized field dict."""
    return hashlib.sha256(canonical_json(fields).encode("utf-8")).hexdigest()


def workload_fingerprint(spec: WorkloadSpec) -> dict:
    """JSON-safe identity of one workload cell, defaults resolved."""
    params = spec.effective_params
    fields = {
        k: list(v) if isinstance(v, tuple) else v
        for k, v in dataclasses.asdict(params).items()
    }
    return {
        "family": spec.family,
        "structure": spec.structure,
        "system": spec.system,
        "num_types": int(spec.num_types),
        "skew_factor": int(spec.skew_factor),
        "params": {"class": type(params).__name__, **fields},
    }


def _base_fields(spec: WorkloadSpec, algorithms: Sequence[str], seed: int) -> dict:
    return {
        "engine_rev": ENGINE_REV,
        "numpy_major": NUMPY_MAJOR,
        "workload": workload_fingerprint(spec),
        "algorithms": [str(a).strip().lower() for a in algorithms],
        "seed": int(seed),
    }


def comparison_fingerprint(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    seed: int,
    preemptive: bool = False,
    quantum: float = 1.0,
) -> dict:
    """Sweep-level fields of a paired-comparison cache key.

    ``quantum`` is normalized to ``None`` on the non-preemptive path,
    where the engine never reads it — two non-preemptive runs with
    different (ignored) quanta share cache entries.
    """
    return {
        "kind": "comparison",
        **_base_fields(spec, algorithms, seed),
        "preemptive": bool(preemptive),
        "quantum": float(quantum) if preemptive else None,
    }


def robustness_fingerprint(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    rates: Sequence[float],
    seed: int,
    fault_seed: int,
    mttr_factor: float,
    horizon_factor: float,
    policy: str,
) -> dict:
    """Sweep-level fields of a robustness-sweep cache key."""
    return {
        "kind": "robustness",
        **_base_fields(spec, algorithms, seed),
        "rates": [float(r) for r in rates],
        "fault_seed": int(fault_seed),
        "mttr_factor": float(mttr_factor),
        "horizon_factor": float(horizon_factor),
        "policy": str(policy),
    }


def decentral_fingerprint(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    p_per_type: int,
    seed: int,
    steal: dict,
) -> dict:
    """Sweep-level fields of a decentral-overhead cache key.

    ``p_per_type`` pins the explicit system size (the decentral sweep
    overrides the cell's sampled system with ``(P,)*K``), and ``steal``
    is the :meth:`~repro.decentral.policies.StealPolicy.fingerprint`
    dict of the policy shared by the decentralized algorithms in the
    sweep.  Scheduler-level policy variations are additionally covered
    by the algorithm names (the bracket suffix is part of the name),
    so cache keys stay sound for any combination of knobs.
    """
    return {
        "kind": "decentral",
        **_base_fields(spec, algorithms, seed),
        "p_per_type": int(p_per_type),
        "steal": {
            "victims": str(steal["victims"]),
            "amount": str(steal["amount"]),
            "cost": float(steal["cost"]),
        },
    }


def energy_fingerprint(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    seed: int,
    power: dict,
    deadline_factor: float,
    energy_price_factor: float,
) -> dict:
    """Sweep-level fields of an energy-sweep cache key.

    ``power`` is the :meth:`~repro.energy.models.PowerModel.fingerprint`
    dict — every :class:`~repro.energy.models.TypePower` field of every
    type is coerced field-by-field, so a flip of any busy/idle/sleep
    draw, shutdown window, or wake latency misses the cache (the
    key-flip matrix in ``tests/resultcache/test_keys.py``).  The
    presentation ``name`` of a power config is deliberately absent:
    identical physics share entries.  ``deadline_factor`` and
    ``energy_price_factor`` pin the profit objective's derived
    per-task deadlines and energy price.
    """
    return {
        "kind": "energy",
        **_base_fields(spec, algorithms, seed),
        "power": {
            "types": [
                {
                    "busy": float(t["busy"]),
                    "idle": float(t["idle"]),
                    "sleep": float(t["sleep"]),
                    "shutdown_window": (
                        None
                        if t["shutdown_window"] is None
                        else float(t["shutdown_window"])
                    ),
                    "wake_latency": float(t["wake_latency"]),
                }
                for t in power["types"]
            ],
        },
        "deadline_factor": float(deadline_factor),
        "energy_price_factor": float(energy_price_factor),
    }


def instance_key(base_fields: dict, instance: int) -> str:
    """Content address of instance ``instance`` of the sweep."""
    return fingerprint_digest({**base_fields, "instance": int(instance)})
