"""Aggregate statistics over a result store (``repro cache stats``)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.resultcache.keys import ENGINE_REV
from repro.resultcache.store import ResultStore

__all__ = ["StoreStats", "collect_stats", "render_stats"]


@dataclass
class StoreStats:
    """What is currently on disk, bucketed the way prune sees it."""

    root: str
    records: int = 0
    total_bytes: int = 0
    current_rev: int = 0
    by_engine_rev: dict[int, int] = field(default_factory=dict)
    by_kind: dict[str, int] = field(default_factory=dict)
    unreadable: int = 0

    @property
    def stale(self) -> int:
        """Records a ``repro cache prune`` would delete."""
        return self.records - self.by_engine_rev.get(ENGINE_REV, 0)


def collect_stats(store: ResultStore) -> StoreStats:
    """Scan the store once; classify every record."""
    stats = StoreStats(root=str(store.root), current_rev=ENGINE_REV)
    for path in store.iter_record_paths():
        try:
            size = path.stat().st_size
            doc = json.loads(path.read_text(encoding="utf-8"))
            rev = doc.get("engine_rev")
            kind = doc.get("fields", {}).get("kind", "?")
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, AttributeError):
            stats.records += 1
            stats.unreadable += 1
            continue
        stats.records += 1
        stats.total_bytes += size
        stats.by_engine_rev[rev] = stats.by_engine_rev.get(rev, 0) + 1
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
    return stats


def render_stats(stats: StoreStats) -> str:
    """Human-readable ``repro cache stats`` output."""
    lines = [
        f"cache root:   {stats.root}",
        f"engine rev:   {stats.current_rev}",
        f"records:      {stats.records}"
        + (f" ({stats.unreadable} unreadable)" if stats.unreadable else ""),
        f"size:         {stats.total_bytes / 1024:.1f} KiB",
    ]
    for kind, count in sorted(stats.by_kind.items()):
        lines.append(f"  {kind:<12s}{count}")
    if stats.stale:
        lines.append(f"stale:        {stats.stale} (run `repro cache prune`)")
    return "\n".join(lines)
