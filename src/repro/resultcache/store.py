"""Persistent content-addressed store for instance results.

Layout (one file per instance record, fanned out by key prefix so no
directory grows unbounded)::

    <root>/v1/<key[:2]>/<key>.json

Concurrency discipline:

* **Writes are atomic** — each record is written to a uniquely named
  temp file *in the destination directory* and published with
  :func:`os.replace`, so a crash mid-write can never leave a truncated
  record at a live address (:func:`atomic_write_text`, shared with
  :mod:`repro.experiments.store`).
* **Reads are lock-free** — a reader either sees a complete record or
  no file at all; there is nothing to lock.  Concurrent writers of the
  same key race benignly: results are deterministic functions of the
  key, so every contender publishes identical bytes and last-replace
  wins.
* A record that fails validation (truncated by an older non-atomic
  writer, hand-edited, version-skewed) is **deleted and reported as a
  miss**, never an error: the sweep recomputes and overwrites it.

Environment knobs:

* ``REPRO_CACHE`` — ``0``/``false``/``off``/``no`` disables the cache
  entirely (sweeps neither read nor write it); anything else, or
  unset, enables it.
* ``REPRO_CACHE_DIR`` — store root; defaults to
  ``$XDG_CACHE_HOME/repro/results`` (``~/.cache/repro/results``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator

from repro.resultcache.keys import ENGINE_REV
from repro.resultcache.records import (
    CacheRecordError,
    decode_record,
    encode_record,
)

__all__ = [
    "STORE_FORMAT",
    "atomic_write_text",
    "cache_enabled",
    "default_cache_dir",
    "ResultStore",
    "open_store",
]

#: On-disk layout version (directory name under the store root).
STORE_FORMAT = "v1"

_FALSY = {"0", "false", "off", "no"}


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tempfile + :func:`os.replace`.

    The temp file lives in ``path``'s directory, so the final replace
    is a same-filesystem rename — atomic on POSIX.  On any failure the
    temp file is removed and the destination is left untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def cache_enabled() -> bool:
    """Whether sweeps should consult/populate the result cache."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in _FALSY


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR``, else the XDG cache location."""
    explicit = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


class ResultStore:
    """Content-addressed record store rooted at one directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- addressing -----------------------------------------------------
    def _dir(self) -> Path:
        return self.root / STORE_FORMAT

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self._dir() / key[:2] / f"{key}.json"

    # -- record I/O -----------------------------------------------------
    def lookup(self, key: str, n_rows: int):
        """``(column, status)`` — status in ``{"hit", "miss", "invalid"}``.

        ``invalid`` means a file existed at the address but failed
        validation; it is unlinked (best effort) so the recomputed
        result can take its place.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            return None, "miss"
        try:
            return decode_record(text, key, n_rows), "hit"
        except CacheRecordError:
            try:
                path.unlink()
            except OSError:
                pass
            return None, "invalid"

    def put(self, key: str, fields: dict, values) -> Path:
        """Atomically publish one instance record; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, encode_record(key, fields, values))
        return path

    # -- maintenance ----------------------------------------------------
    def iter_record_paths(self) -> Iterator[Path]:
        """All record files currently in the store, any engine rev."""
        base = self._dir()
        if not base.is_dir():
            return
        for shard in sorted(base.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in list(self.iter_record_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, engine_rev: int = ENGINE_REV) -> int:
        """Delete records not produced by ``engine_rev`` (or unreadable).

        This is the cleanup half of the ``ENGINE_REV`` bump policy:
        after a semantics bump, stale entries can never hit (the rev is
        in every key) but still occupy disk until pruned.
        """
        import json

        removed = 0
        for path in list(self.iter_record_paths()):
            stale = False
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                stale = not isinstance(doc, dict) or doc.get("engine_rev") != engine_rev
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def open_store(root: str | Path | None = None) -> ResultStore | None:
    """A :class:`ResultStore`, or ``None`` when caching is disabled."""
    if not cache_enabled():
        return None
    return ResultStore(root)
