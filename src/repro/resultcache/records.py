"""On-disk record format for cached instance results.

One record holds one instance's result column — the per-algorithm
completion-time ratios of a paired comparison, or the flattened
``(algorithm x rate x metric)`` column of a robustness sweep — as a
JSON document::

    {"v": 1, "key": "<sha256>", "engine_rev": N,
     "fields": {...full fingerprint...}, "values": [...]}

Floats are serialized via :func:`json.dumps`, which emits ``repr``
forms that round-trip ``float64`` exactly — a decoded record is
bit-identical to what was computed (asserted by
``tests/resultcache/test_store.py``).  ``fields`` stores the full
fingerprint dict so ``repro cache stats``/``prune`` can classify
entries without re-deriving keys, and so a record is self-describing
when inspected by hand.

Decoding is strict: wrong version, key mismatch, wrong value count or
non-numeric values raise :class:`CacheRecordError`, which the store
treats as a miss (recompute-and-overwrite), never a crash.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["RECORD_VERSION", "CacheRecordError", "encode_record", "decode_record"]

#: Record layout version; bump on incompatible format changes.
RECORD_VERSION = 1


class CacheRecordError(Exception):
    """A cache record on disk is corrupt, stale, or mis-keyed."""


def encode_record(key: str, fields: dict, values: np.ndarray) -> str:
    """Serialize one instance's result column under its content key."""
    return json.dumps(
        {
            "v": RECORD_VERSION,
            "key": key,
            "engine_rev": int(fields["engine_rev"]),
            "fields": fields,
            "values": [float(v) for v in np.asarray(values, dtype=np.float64)],
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_record(text: str, key: str, n_rows: int) -> np.ndarray:
    """Parse and validate a record; returns the ``(n_rows,)`` column.

    Raises :class:`CacheRecordError` on any structural problem — the
    caller falls back to recomputing the instance.
    """
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CacheRecordError(f"unparseable cache record: {exc}") from None
    if not isinstance(doc, dict):
        raise CacheRecordError("cache record is not a JSON object")
    if doc.get("v") != RECORD_VERSION:
        raise CacheRecordError(
            f"record version {doc.get('v')!r} != {RECORD_VERSION}"
        )
    if doc.get("key") != key:
        raise CacheRecordError("record key does not match its address")
    values = doc.get("values")
    if not isinstance(values, list) or len(values) != n_rows:
        raise CacheRecordError(
            f"expected {n_rows} values, got "
            f"{len(values) if isinstance(values, list) else type(values).__name__}"
        )
    try:
        column = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise CacheRecordError(f"non-numeric cache values: {exc}") from None
    if column.shape != (n_rows,):
        raise CacheRecordError(f"bad value shape {column.shape}")
    return column
