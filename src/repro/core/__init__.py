"""Core K-DAG model: typed-task DAGs and their structural properties.

This subpackage implements the paper's job model (Section II): a parallel
job is a :class:`~repro.core.kdag.KDag`, a directed acyclic graph whose
nodes carry a resource *type* ``alpha`` in ``0..K-1`` and a positive
*work* amount, plus the derived quantities the schedulers consume —
per-type total work ``T1(J, alpha)``, the span ``T_inf(J)``, typed
descendant values, remaining spans, different-child distances, due
dates, and the x-utilization balance order used by MQB.
"""

from repro.core.kdag import KDag
from repro.core.builder import KDagBuilder
from repro.core.properties import (
    critical_path,
    lower_bound,
    span,
    total_work,
    type_work,
    work_per_processor,
)
from repro.core.descendants import (
    descendant_values,
    different_child_distance,
    due_dates,
    one_step_descendant_values,
    remaining_span,
    untyped_descendant_values,
)
from repro.core.balance import (
    balance_key,
    compare_balance,
    x_utilization,
)
from repro.core.cache import (
    cached_descendant_values,
    cached_different_child_distance,
    cached_due_dates,
    cached_one_step_descendant_values,
    cached_remaining_span,
    cached_untyped_descendant_values,
    clear_offline_cache,
    offline_cache_info,
)

__all__ = [
    "KDag",
    "KDagBuilder",
    "type_work",
    "total_work",
    "span",
    "critical_path",
    "lower_bound",
    "work_per_processor",
    "descendant_values",
    "one_step_descendant_values",
    "untyped_descendant_values",
    "remaining_span",
    "different_child_distance",
    "due_dates",
    "x_utilization",
    "balance_key",
    "compare_balance",
    "cached_descendant_values",
    "cached_one_step_descendant_values",
    "cached_untyped_descendant_values",
    "cached_remaining_span",
    "cached_different_child_distance",
    "cached_due_dates",
    "clear_offline_cache",
    "offline_cache_info",
]
