"""The K-DAG job model.

A *K-DAG* (paper Section II) models a parallel job on a functionally
heterogeneous system with ``K`` resource types.  Each task (node) ``v``
has a type ``alpha in {0, ..., K-1}`` and a work amount ``T1(v, alpha) > 0``;
it may execute only on a processor of the matching type.  Each edge
``(u, v)`` is a precedence constraint: ``v`` becomes ready only when all
its parents have completed.

Types are 0-indexed here (the paper uses 1-indexed ``alpha``); all public
APIs and error messages use the 0-indexed convention consistently.

The class stores adjacency in CSR (compressed sparse row) form over
numpy arrays, which keeps per-instance memory small and makes the
whole-graph passes used by :mod:`repro.core.descendants` cache friendly.
Instances are immutable after construction: schedulers and engines share
a single ``KDag`` across thousands of simulation runs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import CycleError, GraphError

__all__ = ["KDag", "csr_gather"]


def _as_edge_array(edges: Iterable[tuple[int, int]]) -> np.ndarray:
    """Normalize an edge iterable to an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        arr = edges.astype(np.int64, copy=False)
    else:
        edge_list = list(edges)
        if not edge_list:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.asarray(edge_list, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edges must be (u, v) pairs, got array shape {arr.shape}")
    return arr


def _build_csr(n: int, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build CSR (ptr, idx) arrays mapping each node in 0..n-1 to its dsts.

    ``ptr`` has length ``n + 1``; the dsts of node ``v`` are
    ``idx[ptr[v]:ptr[v + 1]]``, sorted ascending for determinism.
    """
    counts = np.bincount(src, minlength=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    order = np.lexsort((dst, src))
    idx = dst[order].astype(np.int64, copy=False)
    return ptr, idx


def csr_gather(
    ptr: np.ndarray, idx: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the CSR neighbours of ``nodes`` into one flat array.

    Returns ``(flat, seg_starts)``: ``flat`` concatenates the
    neighbours of each node in order, and ``seg_starts[i]`` is the
    offset of node ``i``'s segment — the index layout expected by
    ``np.{add,maximum,minimum}.reduceat``.  Every node in ``nodes``
    must have at least one neighbour (reduceat cannot represent empty
    segments).
    """
    counts = ptr[nodes + 1] - ptr[nodes]
    seg_starts = np.zeros(len(nodes), dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    # Positions into idx: per segment, ptr[node] + offset-within-segment.
    total = int(seg_starts[-1] + counts[-1]) if len(nodes) else 0
    pos = np.arange(total, dtype=np.int64)
    pos += np.repeat(ptr[nodes] - seg_starts, counts)
    return idx[pos], seg_starts


class KDag:
    """An immutable K-DAG: typed tasks, work amounts and precedence edges.

    Parameters
    ----------
    types:
        Length-``n`` integer sequence; ``types[v]`` is the resource type of
        task ``v`` (0-indexed, in ``0..num_types-1``).
    work:
        Length-``n`` positive floats; ``work[v]`` is ``T1(v, alpha)``.
    edges:
        Iterable of ``(u, v)`` pairs meaning *u precedes v*.
        Duplicate edges are rejected; self loops and cycles raise.
    num_types:
        Total number of resource types ``K``.  Defaults to
        ``max(types) + 1``.  May exceed the number of distinct types
        actually present (a job need not use every resource type).

    Notes
    -----
    The node ids are dense ``0..n-1``.  Use :class:`repro.core.builder.
    KDagBuilder` for incremental construction with arbitrary labels.
    """

    __slots__ = (
        "_n",
        "_k",
        "_types",
        "_work",
        "_edges",
        "_child_ptr",
        "_child_idx",
        "_parent_ptr",
        "_parent_idx",
        "_topo",
        "_depth",
        "_levels",
        "_hash",
    )

    def __init__(
        self,
        types: Sequence[int] | np.ndarray,
        work: Sequence[float] | np.ndarray,
        edges: Iterable[tuple[int, int]] = (),
        num_types: int | None = None,
    ) -> None:
        types_arr = np.asarray(types, dtype=np.int64)
        work_arr = np.asarray(work, dtype=np.float64)
        if types_arr.ndim != 1:
            raise GraphError("types must be a 1-D sequence")
        n = types_arr.shape[0]
        if n == 0:
            raise GraphError("a K-DAG must contain at least one task")
        if work_arr.shape != (n,):
            raise GraphError(
                f"work length {work_arr.shape} does not match {n} tasks"
            )
        if np.any(types_arr < 0):
            raise GraphError("task types must be non-negative (0-indexed)")
        if not np.all(np.isfinite(work_arr)) or np.any(work_arr <= 0):
            raise GraphError("task work amounts must be finite and positive")

        k = int(types_arr.max()) + 1 if num_types is None else int(num_types)
        if k < 1:
            raise GraphError(f"num_types must be >= 1, got {k}")
        if int(types_arr.max()) >= k:
            raise GraphError(
                f"task type {int(types_arr.max())} out of range for K={k}"
            )

        edge_arr = _as_edge_array(edges)
        if edge_arr.size:
            if edge_arr.min() < 0 or edge_arr.max() >= n:
                raise GraphError("edge endpoint out of range")
            if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
                raise GraphError("self loops are not allowed")
            # Dedup/sort via a packed (u * n + v) code: one int64 sort
            # instead of a structured-view lexicographic unique, and
            # the result is the same (u, v)-lexicographic edge order.
            codes = np.unique(edge_arr[:, 0] * n + edge_arr[:, 1])
            if codes.shape[0] != edge_arr.shape[0]:
                raise GraphError("duplicate edges are not allowed")
            edge_arr = np.stack([codes // n, codes % n], axis=1)

        self._n = n
        self._k = k
        self._types = types_arr
        self._work = work_arr
        self._edges = edge_arr
        # Edges are (u, v)-sorted, so the child CSR needs no sort; the
        # parent CSR sorts once by the transposed (v * n + u) code.
        src, dst = edge_arr[:, 0], edge_arr[:, 1]
        child_counts = np.bincount(src, minlength=n)
        self._child_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(child_counts, out=self._child_ptr[1:])
        self._child_idx = np.ascontiguousarray(dst)
        parent_order = np.argsort(dst * n + src, kind="stable")
        parent_counts = np.bincount(dst, minlength=n)
        self._parent_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(parent_counts, out=self._parent_ptr[1:])
        self._parent_idx = src[parent_order]
        self._topo, self._depth = self._topological_order()
        self._levels: tuple[np.ndarray, np.ndarray] | None = None
        self._hash: int | None = None

        for arr in (
            self._types,
            self._work,
            self._edges,
            self._child_ptr,
            self._child_idx,
            self._parent_ptr,
            self._parent_idx,
            self._topo,
            self._depth,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _topological_order(self) -> tuple[np.ndarray, np.ndarray]:
        """Level-order Kahn's algorithm; returns (topo order, depth per node).

        Depth is the edge-count distance from the farthest source, i.e.
        the layer index used by layered workload inspection.  The peel
        is level batched: a node joins the frontier exactly when its
        last parent has been peeled, so its peel round *is* the longest
        edge-count path from a source, and each round is a handful of
        whole-frontier array ops instead of a per-node Python loop.
        """
        n = self._n
        indeg = np.diff(self._parent_ptr)
        depth = np.zeros(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        child_ptr, child_idx = self._child_ptr, self._child_idx
        frontier = np.flatnonzero(indeg == 0)
        indeg = indeg.copy()
        pos = 0
        level = 0
        while frontier.size:
            order[pos : pos + frontier.size] = frontier
            depth[frontier] = level
            pos += frontier.size
            counts = child_ptr[frontier + 1] - child_ptr[frontier]
            fat = frontier[counts > 0]
            if fat.size == 0:
                break
            counts = counts[counts > 0]
            # Flat gather of all children of this level's nodes.
            offsets = np.arange(int(counts.sum()), dtype=np.int64)
            offsets += np.repeat(
                child_ptr[fat] - np.concatenate(
                    ([0], np.cumsum(counts[:-1]))
                ),
                counts,
            )
            children = child_idx[offsets]
            indeg -= np.bincount(children, minlength=n)
            frontier = np.unique(children[indeg[children] == 0])
            level += 1
        if pos != n:
            raise CycleError(
                f"edge set contains a cycle ({n - pos} tasks unreachable)"
            )
        return order, depth

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of tasks (nodes)."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return int(self._edges.shape[0])

    @property
    def num_types(self) -> int:
        """Number of resource types ``K``."""
        return self._k

    @property
    def types(self) -> np.ndarray:
        """Read-only array of task types, shape ``(n_tasks,)``."""
        return self._types

    @property
    def work(self) -> np.ndarray:
        """Read-only array of task work amounts, shape ``(n_tasks,)``."""
        return self._work

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(n_edges, 2)`` array of ``(u, v)`` precedence pairs."""
        return self._edges

    @property
    def topological_order(self) -> np.ndarray:
        """A topological order of the node ids (sources first)."""
        return self._topo

    @property
    def depth(self) -> np.ndarray:
        """Layer index of each node: longest edge-count path from a source."""
        return self._depth

    def levels(self) -> tuple[np.ndarray, np.ndarray]:
        """Level grouping of the nodes: ``(order, level_ptr)``.

        ``order`` lists all node ids sorted by :attr:`depth` (ties by
        id); level ``i`` is ``order[level_ptr[i]:level_ptr[i + 1]]``.
        Because depth is the *longest* path from a source, every edge
        crosses from a strictly lower level to a strictly higher one,
        so all nodes of a level can be processed simultaneously in the
        level-batched offline sweeps (:mod:`repro.core.descendants`).
        Computed lazily and cached on the instance.
        """
        if self._levels is None:
            order = np.argsort(self._depth, kind="stable")
            counts = np.bincount(self._depth)
            level_ptr = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=level_ptr[1:])
            order.setflags(write=False)
            level_ptr.setflags(write=False)
            self._levels = (order, level_ptr)
        return self._levels

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    @property
    def child_ptr(self) -> np.ndarray:
        """CSR row pointers of the child adjacency, shape ``(n_tasks + 1,)``.

        The children of ``v`` are ``child_idx[child_ptr[v]:child_ptr[v+1]]``.
        Exposed (read-only) so hot loops — the simulation engines, the
        level-batched offline sweeps — can bind the flat arrays once
        instead of calling :meth:`children` per node.
        """
        return self._child_ptr

    @property
    def child_idx(self) -> np.ndarray:
        """Flat CSR child ids matching :attr:`child_ptr` (read-only)."""
        return self._child_idx

    @property
    def parent_ptr(self) -> np.ndarray:
        """CSR row pointers of the parent adjacency (read-only)."""
        return self._parent_ptr

    @property
    def parent_idx(self) -> np.ndarray:
        """Flat CSR parent ids matching :attr:`parent_ptr` (read-only)."""
        return self._parent_idx

    def children(self, v: int) -> np.ndarray:
        """Direct successors of task ``v`` (ascending ids)."""
        return self._child_idx[self._child_ptr[v] : self._child_ptr[v + 1]]

    def parents(self, v: int) -> np.ndarray:
        """Direct predecessors of task ``v`` (ascending ids)."""
        return self._parent_idx[self._parent_ptr[v] : self._parent_ptr[v + 1]]

    def n_children(self, v: int) -> int:
        """Out-degree of task ``v``."""
        return int(self._child_ptr[v + 1] - self._child_ptr[v])

    def n_parents(self, v: int) -> int:
        """In-degree of task ``v``."""
        return int(self._parent_ptr[v + 1] - self._parent_ptr[v])

    def in_degrees(self) -> np.ndarray:
        """In-degree of every task (fresh, writable array)."""
        return np.diff(self._parent_ptr).astype(np.int64)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every task (fresh, writable array)."""
        return np.diff(self._child_ptr).astype(np.int64)

    def sources(self) -> np.ndarray:
        """Tasks with no parents (ready at time 0)."""
        return np.flatnonzero(np.diff(self._parent_ptr) == 0)

    def sinks(self) -> np.ndarray:
        """Tasks with no children."""
        return np.flatnonzero(np.diff(self._child_ptr) == 0)

    def tasks_of_type(self, alpha: int) -> np.ndarray:
        """Ids of the ``alpha``-tasks ``V(J, alpha)``."""
        if not 0 <= alpha < self._k:
            raise GraphError(f"type {alpha} out of range for K={self._k}")
        return np.flatnonzero(self._types == alpha)

    def iter_tasks(self) -> Iterator[int]:
        """Iterate over task ids in ascending order."""
        return iter(range(self._n))

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def precedes(self, u: int, v: int) -> bool:
        """True if ``u != v`` and a directed path ``u -> ... -> v`` exists.

        This is an O(V + E) BFS; it exists for validation and tests, not
        for inner scheduling loops.
        """
        if u == v:
            return False
        seen = np.zeros(self._n, dtype=bool)
        stack = [u]
        seen[u] = True
        while stack:
            x = stack.pop()
            for c in self.children(x):
                if c == v:
                    return True
                if not seen[c]:
                    seen[c] = True
                    stack.append(int(c))
        return False

    def subgraph_reachable_from(self, roots: Sequence[int]) -> np.ndarray:
        """Boolean mask of tasks reachable from ``roots`` (roots included)."""
        seen = np.zeros(self._n, dtype=bool)
        stack = [int(r) for r in roots]
        for r in stack:
            if not 0 <= r < self._n:
                raise GraphError(f"root {r} out of range")
            seen[r] = True
        while stack:
            x = stack.pop()
            for c in self.children(x):
                if not seen[c]:
                    seen[c] = True
                    stack.append(int(c))
        return seen

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KDag(n_tasks={self._n}, n_edges={self.n_edges}, "
            f"K={self._k}, total_work={float(self._work.sum()):g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KDag):
            return NotImplemented
        return (
            self._n == other._n
            and self._k == other._k
            and np.array_equal(self._types, other._types)
            and np.array_equal(self._work, other._work)
            and np.array_equal(self._edges, other._edges)
        )

    def __hash__(self) -> int:
        # Content hash, computed once and cached: KDags are immutable
        # and the offline-info cache (repro.core.cache) hashes the same
        # job on every scheduler prepare().
        if self._hash is None:
            self._hash = hash(
                (
                    self._n,
                    self._k,
                    self._types.tobytes(),
                    self._work.tobytes(),
                    self._edges.tobytes(),
                )
            )
        return self._hash
