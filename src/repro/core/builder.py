"""Incremental construction of :class:`~repro.core.kdag.KDag` instances.

Workload generators and user code often build jobs node by node with
meaningful labels ("map-3-7", "reduce-2-0"), while :class:`KDag` itself
wants dense integer ids and a frozen edge set.  :class:`KDagBuilder`
bridges the two: it hands out dense ids, remembers labels, checks edge
endpoints eagerly, and freezes into an immutable ``KDag``.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.kdag import KDag
from repro.errors import GraphError

__all__ = ["KDagBuilder"]


class KDagBuilder:
    """Mutable builder that freezes into an immutable :class:`KDag`.

    Parameters
    ----------
    num_types:
        Number of resource types ``K`` for the job being built.

    Examples
    --------
    >>> b = KDagBuilder(num_types=2)
    >>> a = b.add_task(0, 1.0, label="load")
    >>> c = b.add_task(1, 2.0, label="gpu-kernel")
    >>> b.add_edge(a, c)
    >>> job = b.build()
    >>> job.n_tasks, job.n_edges
    (2, 1)
    """

    def __init__(self, num_types: int) -> None:
        if num_types < 1:
            raise GraphError(f"num_types must be >= 1, got {num_types}")
        self._k = int(num_types)
        self._types: list[int] = []
        self._work: list[float] = []
        self._labels: list[Hashable | None] = []
        self._by_label: dict[Hashable, int] = {}
        self._edges: list[tuple[int, int]] = []
        self._edge_set: set[tuple[int, int]] = set()

    @property
    def num_types(self) -> int:
        """Number of resource types ``K``."""
        return self._k

    @property
    def n_tasks(self) -> int:
        """Tasks added so far."""
        return len(self._types)

    @property
    def n_edges(self) -> int:
        """Edges added so far."""
        return len(self._edges)

    def add_task(
        self,
        task_type: int,
        work: float = 1.0,
        label: Hashable | None = None,
    ) -> int:
        """Add a task; returns its dense id.

        ``label``, when given, must be unique and can later be resolved
        with :meth:`id_of`.
        """
        if not 0 <= task_type < self._k:
            raise GraphError(
                f"task type {task_type} out of range for K={self._k}"
            )
        if not np.isfinite(work) or work <= 0:
            raise GraphError(f"task work must be finite and positive, got {work}")
        if label is not None:
            if label in self._by_label:
                raise GraphError(f"duplicate task label {label!r}")
            self._by_label[label] = len(self._types)
        tid = len(self._types)
        self._types.append(int(task_type))
        self._work.append(float(work))
        self._labels.append(label)
        return tid

    def add_tasks(self, task_type: int, work: float, count: int) -> list[int]:
        """Add ``count`` identical tasks; returns their ids."""
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        return [self.add_task(task_type, work) for _ in range(count)]

    def add_edge(self, u: int, v: int) -> None:
        """Add a precedence edge *u before v* between existing tasks."""
        n = len(self._types)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references an unknown task")
        if u == v:
            raise GraphError(f"self loop on task {u}")
        key = (int(u), int(v))
        if key in self._edge_set:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._edge_set.add(key)
        self._edges.append(key)

    def add_edges(self, pairs: list[tuple[int, int]] | tuple[tuple[int, int], ...]) -> None:
        """Add many edges at once."""
        for u, v in pairs:
            self.add_edge(u, v)

    def chain(self, task_ids: list[int]) -> None:
        """Add edges making ``task_ids`` a serial chain."""
        for u, v in zip(task_ids, task_ids[1:]):
            self.add_edge(u, v)

    def id_of(self, label: Hashable) -> int:
        """Resolve a task label to its dense id."""
        try:
            return self._by_label[label]
        except KeyError:
            raise GraphError(f"unknown task label {label!r}") from None

    def label_of(self, task_id: int) -> Hashable | None:
        """Return the label of ``task_id`` (``None`` if unlabeled)."""
        if not 0 <= task_id < len(self._labels):
            raise GraphError(f"task id {task_id} out of range")
        return self._labels[task_id]

    def build(self) -> KDag:
        """Freeze into an immutable :class:`KDag` (validates acyclicity)."""
        if not self._types:
            raise GraphError("cannot build an empty K-DAG")
        return KDag(
            types=self._types,
            work=self._work,
            edges=self._edges,
            num_types=self._k,
        )
