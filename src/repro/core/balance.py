"""MQB's x-utilization balance order over ready-queue snapshots.

Paper Section IV-A defines, for a snapshot ``A`` of the K ready queues,
the *x-utilization* of the ``alpha``-queue as ``r_alpha(A) =
l_alpha(A) / P_alpha`` (queued ready work over processor count) and says
snapshot ``A`` is *better balanced* than ``B`` when the ascending-sorted
vector ``R_A = sorted(r)`` exceeds ``R_B`` lexicographically — i.e. the
first place the sorted vectors differ, ``A``'s entry is larger.  The
shortest queue is the utilization bottleneck, so raising the minima
first is what "balancing" means here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ResourceError

__all__ = ["x_utilization", "balance_key", "compare_balance"]


def x_utilization(
    queue_work: Sequence[float] | np.ndarray,
    processors: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Per-type x-utilization ``r_alpha = l_alpha / P_alpha``.

    ``queue_work[alpha]`` is the total work of the ready ``alpha``-tasks;
    ``processors[alpha]`` is ``P_alpha``.
    """
    l = np.asarray(queue_work, dtype=np.float64)
    p = np.asarray(processors, dtype=np.float64)
    if l.shape != p.shape:
        raise ResourceError(
            f"queue_work shape {l.shape} != processors shape {p.shape}"
        )
    if np.any(p < 1):
        raise ResourceError("every resource type needs at least one processor")
    return l / p


def balance_key(
    queue_work: Sequence[float] | np.ndarray,
    processors: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """The sorted x-utilization vector ``R`` (ascending).

    Snapshots compare by this key lexicographically: a *greater* key
    means a *better balanced* snapshot.
    """
    return np.sort(x_utilization(queue_work, processors))


def compare_balance(key_a: np.ndarray, key_b: np.ndarray) -> int:
    """Three-way lexicographic comparison of two balance keys.

    Returns ``1`` if ``key_a`` is better balanced (greater), ``-1`` if
    worse, ``0`` on exact tie.  Keys must come from
    :func:`balance_key` over the same K.
    """
    if key_a.shape != key_b.shape:
        raise ResourceError(
            f"balance keys have mismatched shapes {key_a.shape} vs {key_b.shape}"
        )
    diff = key_a != key_b
    if not diff.any():
        return 0
    first = int(np.argmax(diff))
    return 1 if key_a[first] > key_b[first] else -1
