"""Aggregate properties of a K-DAG: work, span, and the makespan lower bound.

These implement the quantities from paper Section II and the lower bound
``L(J)`` from Section V-A::

    T1(J, alpha) = sum of work of the alpha-tasks
    T_inf(J)     = critical path length (work-weighted longest path)
    L(J)         = max( T_inf(J), max_alpha T1(J, alpha) / P_alpha )

All functions take the job as the first argument and are pure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kdag import KDag, csr_gather
from repro.errors import ResourceError

__all__ = [
    "type_work",
    "total_work",
    "span",
    "critical_path",
    "work_per_processor",
    "lower_bound",
]


def type_work(job: KDag) -> np.ndarray:
    """Per-type total work ``T1(J, alpha)`` for every type, shape ``(K,)``."""
    return np.bincount(job.types, weights=job.work, minlength=job.num_types)


def total_work(job: KDag) -> float:
    """Total work of the job across all types, ``sum_alpha T1(J, alpha)``."""
    return float(job.work.sum())


def _bottom_levels(job: KDag) -> np.ndarray:
    """Work-weighted longest path from each node to any sink, inclusive.

    ``bottom[v] = work[v] + max(bottom[c] for c in children(v))`` (0 max
    for sinks).  Computed as a level-batched reverse sweep: within one
    depth level no edges exist, so a whole level's maxima reduce in one
    ``np.maximum.reduceat`` over the gathered child values.
    """
    bottom = job.work.copy()
    cptr, cidx = job.child_ptr, job.child_idx
    out_deg = np.diff(cptr)
    order, level_ptr = job.levels()
    for li in range(len(level_ptr) - 2, -1, -1):
        vs = order[level_ptr[li] : level_ptr[li + 1]]
        vs = vs[out_deg[vs] > 0]
        if vs.size == 0:
            continue
        kids, seg = csr_gather(cptr, cidx, vs)
        bottom[vs] += np.maximum.reduceat(bottom[kids], seg)
    return bottom


def span(job: KDag) -> float:
    """Critical path length ``T_inf(J)``: the work on the longest chain."""
    return float(_bottom_levels(job).max())


def critical_path(job: KDag) -> list[int]:
    """One critical path as a list of task ids (source to sink).

    When several chains tie, the lowest-id child is followed, making the
    result deterministic.
    """
    bottom = _bottom_levels(job)
    sources = job.sources()
    v = int(sources[np.argmax(bottom[sources])])
    path = [v]
    while job.n_children(v):
        children = job.children(v)
        v = int(children[np.argmax(bottom[children])])
        path.append(v)
    return path


def _check_processors(job: KDag, processors: Sequence[int] | np.ndarray) -> np.ndarray:
    procs = np.asarray(processors, dtype=np.int64)
    if procs.shape != (job.num_types,):
        raise ResourceError(
            f"expected {job.num_types} processor counts, got shape {procs.shape}"
        )
    if np.any(procs < 1):
        raise ResourceError("every resource type needs at least one processor")
    return procs


def work_per_processor(job: KDag, processors: Sequence[int] | np.ndarray) -> np.ndarray:
    """Per-type work-per-processor ratios ``T1(J, alpha) / P_alpha``.

    The paper's skew measure (Section V-E): a job whose ratios are close
    is *well balanced*; large variance means a skewed load.
    """
    procs = _check_processors(job, processors)
    return type_work(job) / procs


def lower_bound(job: KDag, processors: Sequence[int] | np.ndarray) -> float:
    """The paper's makespan lower bound ``L(J)`` (Section V-A).

    ``L(J) = max( T_inf(J), max_alpha T1(J, alpha) / P_alpha )``.
    Every legal schedule of ``job`` on the given processor counts takes
    at least this long; the *completion time ratio* reported throughout
    the evaluation is ``T(J) / L(J)``.
    """
    return float(max(span(job), work_per_processor(job, processors).max()))
