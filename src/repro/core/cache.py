"""Memoized offline information, keyed on K-DAG content.

Every offline scheduler's ``prepare`` starts by recomputing one of the
:mod:`repro.core.descendants` passes for its job.  A paired comparison
(:func:`repro.experiments.runner.run_comparison`) runs six-plus
algorithm variants on *the same* job, and Figure 8 runs seven MQB
variants whose stochastic information models all perturb the *same*
true descendant matrix — so without memoization the identical offline
pass runs many times per instance.  This module caches each pass per
job.

Keying: :class:`~repro.core.kdag.KDag` is immutable and hashes/compares
by content (types, work, edges — the only inputs the passes read), so

* a cache hit returns the *same* (read-only) array object every time,
* two structurally identical jobs share one entry, and
* a new or mutated job (different content) can never be served a stale
  matrix — its key simply differs.

The content hash is computed once per job and cached on the instance
(:meth:`KDag.__hash__`), so repeated lookups cost an O(n) equality
check, negligible next to the passes themselves.

Stochastic information models (MQB+Exp / MQB+Noise) draw fresh noise
on *top* of the cached true values on every ``prepare`` — only the
deterministic base passes are memoized (see
:class:`repro.schedulers.info.InformationModel`).

The cache is per process (each parallel sweep worker warms its own)
and bounded LRU; size via ``REPRO_CACHE_SIZE`` (default 128 jobs,
``0`` disables caching entirely).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.core import descendants as _desc
from repro.core import properties as _props
from repro.core.kdag import KDag

__all__ = [
    "cached_descendant_values",
    "cached_one_step_descendant_values",
    "cached_untyped_descendant_values",
    "cached_remaining_span",
    "cached_different_child_distance",
    "cached_due_dates",
    "cached_lower_bound",
    "clear_offline_cache",
    "offline_cache_info",
]


def _cache_size() -> int | None:
    raw = os.environ.get("REPRO_CACHE_SIZE", "").strip()
    if not raw:
        return 128
    size = int(raw)
    return max(size, 0)


_CACHE_SIZE = _cache_size()


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def _memoized(fn: Callable[[KDag], np.ndarray]):
    cached = lru_cache(maxsize=_CACHE_SIZE)(lambda job: _frozen(fn(job)))
    cached.__doc__ = f"Memoized :func:`repro.core.descendants.{fn.__name__}`."
    return cached


cached_descendant_values = _memoized(_desc.descendant_values)
cached_one_step_descendant_values = _memoized(_desc.one_step_descendant_values)
cached_untyped_descendant_values = _memoized(_desc.untyped_descendant_values)
cached_remaining_span = _memoized(_desc.remaining_span)
cached_different_child_distance = _memoized(_desc.different_child_distance)


@lru_cache(maxsize=_CACHE_SIZE)
def cached_due_dates(job: KDag) -> np.ndarray:
    """Memoized due dates, sharing the remaining-span entry.

    ``T_inf(J)`` is the maximum remaining span, so due dates derive
    from the cached span array without a second bottom-level sweep.
    """
    rs = cached_remaining_span(job)
    return _frozen(rs.max() - rs)


@lru_cache(maxsize=_CACHE_SIZE)
def cached_lower_bound(job: KDag, processors: tuple[int, ...]) -> float:
    """Memoized :func:`repro.core.properties.lower_bound`.

    A paired comparison computes the *same* ``L(J)`` once per
    algorithm when turning makespans into completion-time ratios;
    keying on (job content, processor counts) collapses those into a
    single span sweep per instance.
    """
    return _props.lower_bound(job, processors)


_ALL_CACHES = (
    cached_descendant_values,
    cached_one_step_descendant_values,
    cached_untyped_descendant_values,
    cached_remaining_span,
    cached_different_child_distance,
    cached_due_dates,
    cached_lower_bound,
)


def clear_offline_cache() -> None:
    """Drop every memoized offline-information entry (all passes)."""
    for cache in _ALL_CACHES:
        cache.cache_clear()


def offline_cache_info() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters per pass, for tests and diagnostics."""
    out: dict[str, dict[str, int]] = {}
    names = (
        "descendant_values",
        "one_step_descendant_values",
        "untyped_descendant_values",
        "remaining_span",
        "different_child_distance",
        "due_dates",
        "lower_bound",
    )
    for name, cache in zip(names, _ALL_CACHES):
        info = cache.cache_info()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
        }
    return out
