"""Per-task lookahead quantities used by the offline heuristics.

These are the four pieces of "offline information" the paper's
schedulers consume (Section IV):

* **Typed descendant values** ``d_alpha(v)`` — MQB's estimate of how
  much type-``alpha`` work executing ``v`` unlocks downstream.  A task
  ``u`` with ``pr(u)`` parents contributes ``1/pr(u)`` of its own
  descendant value *plus* ``1/pr(u)`` of its own work to each parent::

      d_alpha(v) = sum_{u in children(v)} (d_alpha(u) + w_alpha(u)) / pr(u)

  where ``w_alpha(u)`` is ``work(u)`` if ``u`` is an ``alpha``-task and 0
  otherwise.  Sinks have ``d_alpha = 0``.

* **Untyped descendant values** (MaxDP) — the same recursion without the
  type split; equal to ``sum_alpha d_alpha(v)``.

* **Remaining span** (LSpan) — work-weighted longest path from ``v``
  to a sink, inclusive of ``v``'s own work.

* **Different-child distance** (DType) — edge-count distance from ``v``
  to the nearest descendant of a *different* type (``inf`` when none
  exists).

* **Due dates** (ShiftBT) — ``T_inf(J) - remaining_span(v)``, the latest
  start time that does not stretch the critical path.

All recursions run as *level-batched* sweeps: nodes are grouped by
:attr:`~repro.core.kdag.KDag.depth` (every edge crosses levels, so one
level has no internal dependencies), each level's child values are
gathered through the CSR arrays in one shot, and the per-node
reductions collapse into ``np.add.reduceat`` / ``np.minimum.reduceat``
segment reductions.  This replaces the per-node Python loops over
``topological_order`` that previously dominated scheduler ``prepare``
time on paper-scale jobs.

The functions here are pure and uncached; :mod:`repro.core.cache`
provides the memoized variants the schedulers use.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag, csr_gather
from repro.core.properties import _bottom_levels, span

__all__ = [
    "descendant_values",
    "one_step_descendant_values",
    "untyped_descendant_values",
    "remaining_span",
    "different_child_distance",
    "due_dates",
]


def _level_sweep(job: KDag):
    """Yield per-level ``(level, parents, kids, seg_starts)`` deepest first.

    ``level`` is every node of the depth level; ``parents`` is its
    subset with at least one child, whose concatenated children are
    ``kids`` with ``reduceat`` segment starts ``seg_starts`` (empty
    arrays when the level holds only sinks).
    """
    cptr, cidx = job.child_ptr, job.child_idx
    out_deg = np.diff(cptr)
    order, level_ptr = job.levels()
    empty = np.empty(0, dtype=np.int64)
    for li in range(len(level_ptr) - 2, -1, -1):
        level = order[level_ptr[li] : level_ptr[li + 1]]
        parents = level[out_deg[level] > 0]
        if parents.size:
            kids, seg = csr_gather(cptr, cidx, parents)
        else:
            kids, seg = empty, empty
        yield level, parents, kids, seg


def descendant_values(job: KDag) -> np.ndarray:
    """Typed descendant values ``d_alpha(v)``, shape ``(n_tasks, K)``.

    One level-batched reverse sweep, vectorized over both the nodes of
    a level and the K type columns.
    """
    n, k = job.n_tasks, job.num_types
    d = np.zeros((n, k), dtype=np.float64)
    # contrib[u, :] = (d[u, :] + w_alpha-one-hot(u)) / pr(u), filled as
    # soon as d[u] is final (deeper levels are finalized first).
    in_deg = job.in_degrees().astype(np.float64)
    work_onehot = np.zeros((n, k), dtype=np.float64)
    work_onehot[np.arange(n), job.types] = job.work
    contrib = np.zeros((n, k), dtype=np.float64)
    shared = in_deg > 0  # sources (pr == 0) never contribute upward
    for level, parents, kids, seg in _level_sweep(job):
        if parents.size:
            d[parents] = np.add.reduceat(contrib[kids], seg, axis=0)
        up = level[shared[level]]
        contrib[up] = (d[up] + work_onehot[up]) / in_deg[up, None]
    return d


def one_step_descendant_values(job: KDag) -> np.ndarray:
    """One-step-lookahead typed descendant values (MQB+1Step).

    Only immediate children are counted::

        d_alpha(v) = sum_{u in children(v)} w_alpha(u) / pr(u)

    No recursion, so a single global segment sum over all nodes with
    children suffices (no level grouping needed).
    """
    n, k = job.n_tasks, job.num_types
    in_deg = job.in_degrees().astype(np.float64)
    work_onehot = np.zeros((n, k), dtype=np.float64)
    work_onehot[np.arange(n), job.types] = job.work
    with np.errstate(divide="ignore", invalid="ignore"):
        shared = np.where(in_deg[:, None] > 0, work_onehot / in_deg[:, None], 0.0)
    d = np.zeros((n, k), dtype=np.float64)
    cptr, cidx = job.child_ptr, job.child_idx
    parents = np.flatnonzero(np.diff(cptr) > 0)
    if parents.size:
        kids, seg = csr_gather(cptr, cidx, parents)
        d[parents] = np.add.reduceat(shared[kids], seg, axis=0)
    return d


def untyped_descendant_values(job: KDag) -> np.ndarray:
    """MaxDP's scalar descendant value per task, shape ``(n_tasks,)``.

    Identical recursion to :func:`descendant_values` with the type
    dimension collapsed; kept as a separate O(V+E) pass because MaxDP
    never needs the per-type split.
    """
    n = job.n_tasks
    d = np.zeros(n, dtype=np.float64)
    contrib = np.zeros(n, dtype=np.float64)
    in_deg = job.in_degrees().astype(np.float64)
    shared = in_deg > 0
    for level, parents, kids, seg in _level_sweep(job):
        if parents.size:
            d[parents] = np.add.reduceat(contrib[kids], seg)
        up = level[shared[level]]
        contrib[up] = (d[up] + job.work[up]) / in_deg[up]
    return d


def remaining_span(job: KDag) -> np.ndarray:
    """Remaining span of each task (LSpan's priority), shape ``(n_tasks,)``.

    ``remaining_span(v) = work(v) + max(remaining_span(c) for children c)``;
    a childless task's remaining span is its own work.
    """
    return _bottom_levels(job)


def different_child_distance(job: KDag) -> np.ndarray:
    """DType's priority: hop distance to the nearest different-type descendant.

    ``dist(v) = min over children c of (1 if type(c) != type(v) else
    1 + dist(c))``; ``inf`` when no different-type descendant exists.
    The recursion is well-founded because in the ``else`` branch ``c``
    shares ``v``'s type, so ``dist(c)`` measures distance to the same
    "other type" set.
    """
    n = job.n_tasks
    dist = np.full(n, np.inf, dtype=np.float64)
    types = job.types
    for _, parents, kids, seg in _level_sweep(job):
        if parents.size == 0:
            continue
        counts = np.diff(np.append(seg, len(kids)))
        own = np.repeat(types[parents], counts)
        cand = np.where(types[kids] != own, 1.0, 1.0 + dist[kids])
        dist[parents] = np.minimum.reduceat(cand, seg)
    return dist


def due_dates(job: KDag) -> np.ndarray:
    """ShiftBT's due dates: ``T_inf(J) - remaining_span(v)`` per task.

    A task on the critical path has due date 0; the larger the slack,
    the later the task may start without delaying the job.
    """
    return span(job) - remaining_span(job)
