"""Per-task lookahead quantities used by the offline heuristics.

These are the four pieces of "offline information" the paper's
schedulers consume (Section IV):

* **Typed descendant values** ``d_alpha(v)`` — MQB's estimate of how
  much type-``alpha`` work executing ``v`` unlocks downstream.  A task
  ``u`` with ``pr(u)`` parents contributes ``1/pr(u)`` of its own
  descendant value *plus* ``1/pr(u)`` of its own work to each parent::

      d_alpha(v) = sum_{u in children(v)} (d_alpha(u) + w_alpha(u)) / pr(u)

  where ``w_alpha(u)`` is ``work(u)`` if ``u`` is an ``alpha``-task and 0
  otherwise.  Sinks have ``d_alpha = 0``.

* **Untyped descendant values** (MaxDP) — the same recursion without the
  type split; equal to ``sum_alpha d_alpha(v)``.

* **Remaining span** (LSpan) — work-weighted longest path from ``v``
  to a sink, inclusive of ``v``'s own work.

* **Different-child distance** (DType) — edge-count distance from ``v``
  to the nearest descendant of a *different* type (``inf`` when none
  exists).

* **Due dates** (ShiftBT) — ``T_inf(J) - remaining_span(v)``, the latest
  start time that does not stretch the critical path.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.core.properties import _bottom_levels, span

__all__ = [
    "descendant_values",
    "one_step_descendant_values",
    "untyped_descendant_values",
    "remaining_span",
    "different_child_distance",
    "due_dates",
]


def descendant_values(job: KDag) -> np.ndarray:
    """Typed descendant values ``d_alpha(v)``, shape ``(n_tasks, K)``.

    One reverse-topological sweep, vectorized over the K type columns.
    """
    n, k = job.n_tasks, job.num_types
    d = np.zeros((n, k), dtype=np.float64)
    # own_contrib[u, :] = (d[u, :] + w_alpha-one-hot(u)) / pr(u), filled as
    # soon as d[u] is final (children are finalized before parents).
    in_deg = job.in_degrees().astype(np.float64)
    work_onehot = np.zeros((n, k), dtype=np.float64)
    work_onehot[np.arange(n), job.types] = job.work
    contrib = np.zeros((n, k), dtype=np.float64)
    topo = job.topological_order
    for v in topo[::-1]:
        vi = int(v)
        kids = job.children(vi)
        if kids.size:
            d[vi] = contrib[kids].sum(axis=0)
        pr = in_deg[vi]
        if pr > 0:
            contrib[vi] = (d[vi] + work_onehot[vi]) / pr
        # Sources (pr == 0) never contribute upward; leave contrib at 0.
    return d


def one_step_descendant_values(job: KDag) -> np.ndarray:
    """One-step-lookahead typed descendant values (MQB+1Step).

    Only immediate children are counted::

        d_alpha(v) = sum_{u in children(v)} w_alpha(u) / pr(u)
    """
    n, k = job.n_tasks, job.num_types
    in_deg = job.in_degrees().astype(np.float64)
    work_onehot = np.zeros((n, k), dtype=np.float64)
    work_onehot[np.arange(n), job.types] = job.work
    with np.errstate(divide="ignore", invalid="ignore"):
        shared = np.where(in_deg[:, None] > 0, work_onehot / in_deg[:, None], 0.0)
    d = np.zeros((n, k), dtype=np.float64)
    for v in range(n):
        kids = job.children(v)
        if kids.size:
            d[v] = shared[kids].sum(axis=0)
    return d


def untyped_descendant_values(job: KDag) -> np.ndarray:
    """MaxDP's scalar descendant value per task, shape ``(n_tasks,)``.

    Identical recursion to :func:`descendant_values` with the type
    dimension collapsed; kept as a separate O(V+E) pass because MaxDP
    never needs the per-type split.
    """
    n = job.n_tasks
    d = np.zeros(n, dtype=np.float64)
    contrib = np.zeros(n, dtype=np.float64)
    in_deg = job.in_degrees().astype(np.float64)
    topo = job.topological_order
    for v in topo[::-1]:
        vi = int(v)
        kids = job.children(vi)
        if kids.size:
            d[vi] = float(contrib[kids].sum())
        if in_deg[vi] > 0:
            contrib[vi] = (d[vi] + job.work[vi]) / in_deg[vi]
    return d


def remaining_span(job: KDag) -> np.ndarray:
    """Remaining span of each task (LSpan's priority), shape ``(n_tasks,)``.

    ``remaining_span(v) = work(v) + max(remaining_span(c) for children c)``;
    a childless task's remaining span is its own work.
    """
    return _bottom_levels(job)


def different_child_distance(job: KDag) -> np.ndarray:
    """DType's priority: hop distance to the nearest different-type descendant.

    ``dist(v) = min over children c of (1 if type(c) != type(v) else
    1 + dist(c))``; ``inf`` when no different-type descendant exists.
    The recursion is well-founded because in the ``else`` branch ``c``
    shares ``v``'s type, so ``dist(c)`` measures distance to the same
    "other type" set.
    """
    n = job.n_tasks
    dist = np.full(n, np.inf, dtype=np.float64)
    types = job.types
    topo = job.topological_order
    for v in topo[::-1]:
        vi = int(v)
        best = np.inf
        for c in job.children(vi):
            ci = int(c)
            cand = 1.0 if types[ci] != types[vi] else 1.0 + dist[ci]
            if cand < best:
                best = cand
        dist[vi] = best
    return dist


def due_dates(job: KDag) -> np.ndarray:
    """ShiftBT's due dates: ``T_inf(J) - remaining_span(v)`` per task.

    A task on the critical path has due date 0; the larger the slack,
    the later the task may start without delaying the job.
    """
    return span(job) - remaining_span(job)
