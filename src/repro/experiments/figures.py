"""Per-figure experiment definitions (paper Section V).

Every figure of the paper's evaluation has a ``run_figN`` function
returning a JSON-serializable dict; :data:`EXPERIMENTS` maps experiment
ids to them.  The two theory experiments (Lemma 1, Theorem 2) are
included as ``lemma1`` and ``thm2``.

Result dict shapes (consumed by :mod:`repro.experiments.report`):

* ``kind: "bars"`` — ``panels: [{name, label, series: [stats...]}]``
* ``kind: "lines"`` — ``panels: [{name, label, x_label, x: [...],
  series: {key: [mean per x]}}]``
* ``kind: "table"`` — ``columns: [...]``, ``rows: [[...], ...]``

Every sweep-backed figure runs through :func:`run_comparison` (or the
robustness runner) and therefore through the persistent result cache
(:mod:`repro.resultcache`): re-running a figure with the same
configuration is pure cache lookups, interrupting one loses at most
the in-flight chunk, and a larger ``n_instances`` re-uses every
instance the smaller run already computed (instance keys don't depend
on the sweep size).  The theory experiments (``lemma1``, ``thm2``)
are quick closed-form/Monte-Carlo loops and are not cached.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import APPROX_INFO_ALGORITHMS, PAPER_ALGORITHMS
from repro.sim.engine import simulate
from repro.schedulers.registry import make_scheduler
from repro.system.resources import ResourceConfig
from repro.theory.bounds import (
    randomized_online_lower_bound,
    randomized_online_lower_bound_finite_m,
)
from repro.theory.lemma1 import (
    expected_draws_closed_form,
    expected_draws_exact,
    simulate_draws,
)
from repro.workloads.adversarial import adversarial_job, adversarial_optimal_makespan
from repro.workloads.generator import WORKLOAD_CELLS
from repro.experiments.decentral import run_decentral
from repro.experiments.energy import run_energy
from repro.experiments.robustness import run_robustness
from repro.experiments.runner import run_comparison
from repro.experiments.stream import run_stream

__all__ = ["EXPERIMENTS", "run_experiment"]

#: Default instance counts per figure; the paper used 5000 per point —
#: pass a larger ``n_instances`` to the CLI to match it exactly.
DEFAULT_INSTANCES = {
    "fig4": 300,
    "fig5": 120,
    "fig6": 300,
    "fig7": 80,
    "fig8": 200,
    "thm2": 60,
    "robustness": 40,
    "stream": 10,
    "decentral": 8,
    "energy": 12,
}

_FIG4_PANELS = [
    ("small-random-ep", "(a) Small Random EP"),
    ("medium-random-tree", "(b) Medium Random Tree"),
    ("medium-random-ir", "(c) Medium Random IR"),
    ("small-layered-ep", "(d) Small Layered EP"),
    ("medium-layered-tree", "(e) Medium Layered Tree"),
    ("medium-layered-ir", "(f) Medium Layered IR"),
]

_LAYERED_PANELS = [
    ("small-layered-ep", "(a) Small Layered EP"),
    ("medium-layered-tree", "(b) Medium Layered Tree"),
    ("medium-layered-ir", "(c) Medium Layered IR"),
]


def run_fig4(
    n_instances: int | None = None,
    seed: int = 2011,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Fig. 4: the six algorithms on the six workload cells."""
    n = n_instances or DEFAULT_INSTANCES["fig4"]
    panels = []
    for cell, label in _FIG4_PANELS:
        stats = run_comparison(
            WORKLOAD_CELLS[cell], PAPER_ALGORITHMS, n, seed, n_workers=n_workers,
            telemetry=telemetry, engine=engine,
        )
        panels.append(
            {"name": cell, "label": label, "series": [s.to_dict() for s in stats]}
        )
    return {
        "figure": "fig4",
        "title": "Algorithm performance on various workloads (avg completion time ratio)",
        "kind": "bars",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n, "seed": seed},
    }


def run_fig5(
    n_instances: int | None = None,
    seed: int = 2012,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Fig. 5: varying the number of resource types K from 1 to 6."""
    n = n_instances or DEFAULT_INSTANCES["fig5"]
    ks = list(range(1, 7))
    panels = []
    for cell, label in _LAYERED_PANELS:
        series: dict[str, list[float]] = {a: [] for a in PAPER_ALGORITHMS}
        for k in ks:
            spec = WORKLOAD_CELLS[cell].with_num_types(k)
            for s in run_comparison(
                spec, PAPER_ALGORITHMS, n, seed + k, n_workers=n_workers,
                telemetry=telemetry, engine=engine,
            ):
                series[s.key].append(s.mean)
        panels.append(
            {
                "name": cell,
                "label": label,
                "x_label": "K",
                "x": ks,
                "series": series,
            }
        )
    return {
        "figure": "fig5",
        "title": "Performance when varying the total types of resources K from 1 to 6",
        "kind": "lines",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n, "seed": seed},
    }


def run_fig6(
    n_instances: int | None = None,
    seed: int = 2013,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Fig. 6: skewed load — type 0's processors cut to one fifth."""
    n = n_instances or DEFAULT_INSTANCES["fig6"]
    panels = []
    for cell, label in [
        ("medium-layered-tree", "(a) Medium Layered Tree"),
        ("medium-layered-ir", "(b) Medium Layered IR"),
    ]:
        spec = WORKLOAD_CELLS[cell].with_skew(5)
        stats = run_comparison(
            spec, PAPER_ALGORITHMS, n, seed, n_workers=n_workers,
            telemetry=telemetry, engine=engine,
        )
        panels.append(
            {"name": cell, "label": label, "series": [s.to_dict() for s in stats]}
        )
    return {
        "figure": "fig6",
        "title": "Impact of scheduling algorithms on jobs with skewed load",
        "kind": "bars",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n, "seed": seed, "skew_factor": 5},
    }


def run_fig7(
    n_instances: int | None = None,
    seed: int = 2014,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Fig. 7: non-preemptive vs preemptive scheduling."""
    n = n_instances or DEFAULT_INSTANCES["fig7"]
    panels = []
    for cell, label in _LAYERED_PANELS:
        spec = WORKLOAD_CELLS[cell]
        np_stats = run_comparison(
            spec, PAPER_ALGORITHMS, n, seed, n_workers=n_workers,
            telemetry=telemetry, engine=engine,
        )
        p_stats = run_comparison(
            spec, PAPER_ALGORITHMS, n, seed, preemptive=True, n_workers=n_workers,
            telemetry=telemetry, engine=engine,
        )
        series = [s.to_dict() for s in np_stats] + [s.to_dict() for s in p_stats]
        panels.append({"name": cell, "label": label, "series": series})
    return {
        "figure": "fig7",
        "title": "Comparison of non-preemptive and preemptive scheduling",
        "kind": "bars",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n, "seed": seed},
    }


def run_fig8(
    n_instances: int | None = None,
    seed: int = 2015,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Fig. 8: MQB with partial / imprecise descendant information."""
    n = n_instances or DEFAULT_INSTANCES["fig8"]
    panels = []
    for cell, label in _LAYERED_PANELS:
        stats = run_comparison(
            WORKLOAD_CELLS[cell], APPROX_INFO_ALGORITHMS, n, seed,
            n_workers=n_workers, telemetry=telemetry, engine=engine,
        )
        panels.append(
            {"name": cell, "label": label, "series": [s.to_dict() for s in stats]}
        )
    return {
        "figure": "fig8",
        "title": "KGreedy vs MQB with approximated information (avg and max ratio)",
        "kind": "bars",
        "metric": "mean+max",
        "panels": panels,
        "config": {"n_instances": n, "seed": seed},
    }


def run_lemma1(
    n_instances: int | None = None, seed: int = 2016, n_workers: int | None = None
) -> dict:
    """Lemma 1: closed form vs exact distribution vs Monte Carlo.

    ``n_workers`` is accepted for interface uniformity and ignored —
    the Monte Carlo draw is one vectorized numpy call, not an
    instance-sharded comparison.
    """
    trials = n_instances or 20000
    rng = np.random.default_rng(seed)
    rows = []
    for n, r in [(10, 2), (20, 5), (50, 5), (100, 10), (200, 3), (500, 25)]:
        closed = expected_draws_closed_form(n, r)
        exact = expected_draws_exact(n, r)
        mc = float(simulate_draws(n, r, trials, rng).mean())
        rows.append([n, r, round(closed, 4), round(exact, 4), round(mc, 4)])
    return {
        "figure": "lemma1",
        "title": "Lemma 1: expected draws to collect all r red balls of n",
        "kind": "table",
        "columns": ["n", "r", "closed form r/(r+1)(n+1)", "exact sum", "monte carlo"],
        "rows": rows,
        "config": {"trials": trials, "seed": seed},
    }


def run_thm2(
    n_instances: int | None = None, seed: int = 2017, n_workers: int | None = None
) -> dict:
    """Theorem 2: KGreedy on the adversarial family vs the lower bound.

    The empirical ratio uses the *known* offline optimum of the
    construction, ``T* = K - 1 + m P_K``; the bound column is the
    proof-form lower bound, which the empirical ratio should approach
    from above as m grows (KGreedy's FIFO draw matches the uniform-
    random draw of Lemma 1 because active tasks are placed uniformly).
    """
    n = n_instances or DEFAULT_INSTANCES["thm2"]
    rows = []
    for procs, m in [
        ((2, 2), 8),
        ((2, 2, 2), 8),
        ((3, 3, 3), 6),
        ((2, 3, 4), 6),
        ((2, 2, 2, 2), 6),
    ]:
        bound_inf = randomized_online_lower_bound(procs)
        bound_m = randomized_online_lower_bound_finite_m(procs, m)
        opt = adversarial_optimal_makespan(procs, m)
        ratios = []
        for i in range(n):
            rng = np.random.default_rng(np.random.SeedSequence([seed, len(rows), i]))
            job = adversarial_job(procs, m, rng)
            res = simulate(job, ResourceConfig(tuple(procs)), make_scheduler("kgreedy"))
            ratios.append(res.makespan / opt)
        rows.append(
            [
                str(procs),
                m,
                round(float(np.mean(ratios)), 3),
                round(bound_m, 3),
                round(bound_inf, 3),
                round(len(procs) + 1, 3),
            ]
        )
    return {
        "figure": "thm2",
        "title": "Theorem 2: KGreedy on the adversarial family (ratio vs T*)",
        "kind": "table",
        "columns": [
            "P",
            "m",
            "empirical KGreedy ratio",
            "bound at this m",
            "bound (m->inf)",
            "K+1 (KGreedy guarantee)",
        ],
        "rows": rows,
        "config": {"n_instances": n, "seed": seed},
    }


EXPERIMENTS: dict[str, Callable[..., dict]] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "lemma1": run_lemma1,
    "thm2": run_thm2,
    "robustness": run_robustness,
    "stream": run_stream,
    "decentral": run_decentral,
    "energy": run_energy,
}


def run_experiment(
    name: str,
    n_instances: int | None = None,
    seed: int | None = None,
    n_workers: int | None = None,
    mtbf: float | None = None,
    mttr: float | None = None,
    fault_seed: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> dict:
    """Run one experiment by id (``fig4`` ... ``robustness``).

    The fault parameters (``mtbf``, ``mttr``, ``fault_seed``) only make
    sense for experiments that inject failures; passing one to any
    other experiment is a configuration error.  Likewise ``telemetry``
    (profiling) only applies to simulation sweeps — the theory
    experiments (``lemma1``, ``thm2``) reject it — and ``engine``
    (``scalar``/``batch``) only to the paired-comparison figures.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    kwargs: dict = {}
    if n_instances is not None:
        kwargs["n_instances"] = n_instances
    if seed is not None:
        kwargs["seed"] = seed
    if n_workers is not None:
        kwargs["n_workers"] = n_workers
    if mtbf is not None:
        kwargs["mtbf"] = mtbf
    if mttr is not None:
        kwargs["mttr"] = mttr
    if fault_seed is not None:
        kwargs["fault_seed"] = fault_seed
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    if engine is not None:
        kwargs["engine"] = engine
    try:
        return fn(**kwargs)
    except TypeError as exc:
        if "unexpected keyword argument" not in str(exc):
            raise
        if "telemetry" in str(exc):
            raise ConfigurationError(
                f"experiment {name!r} does not support profiling"
            ) from None
        if "'engine'" in str(exc):
            raise ConfigurationError(
                f"experiment {name!r} does not support engine selection"
            ) from None
        raise ConfigurationError(
            f"experiment {name!r} does not accept fault parameters "
            f"(--mtbf/--mttr/--fault-seed): {exc}"
        ) from None
