"""JSON persistence for experiment results."""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["save_result", "load_result"]


def save_result(result: dict, directory: str | Path) -> Path:
    """Write ``result`` to ``<directory>/<figure>.json``; returns the path."""
    if "figure" not in result:
        raise ConfigurationError("result dict has no 'figure' key")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result['figure']}.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True))
    return path


def load_result(path: str | Path) -> dict:
    """Load a result dict previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no result file at {path}")
    return json.loads(path.read_text())
