"""JSON persistence for experiment results.

Writes are atomic: the document is serialized to a temp file in the
destination directory and published with :func:`os.replace`
(:func:`repro.resultcache.store.atomic_write_text`), so a crash or
interrupt mid-write can never leave a truncated ``results/full/*.json``
— readers see either the previous complete file or the new one.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.resultcache.store import atomic_write_text

__all__ = ["save_result", "load_result"]


def save_result(result: dict, directory: str | Path) -> Path:
    """Atomically write ``result`` to ``<directory>/<figure>.json``."""
    if "figure" not in result:
        raise ConfigurationError("result dict has no 'figure' key")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result['figure']}.json"
    atomic_write_text(path, json.dumps(result, indent=2, sort_keys=True))
    return path


def load_result(path: str | Path) -> dict:
    """Load a result dict previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no result file at {path}")
    return json.loads(path.read_text())
