"""Generic paired-comparison executor for the experiment harness.

:func:`run_comparison` is the primitive every figure builds on: sample
``n_instances`` (job, system) pairs from a workload cell and run a list
of algorithms on *the same* instances, returning per-algorithm summary
statistics of the completion-time ratio ``T(J) / L(J)``.

Seeding: instance ``i`` of a comparison draws its job/system from
``SeedSequence([seed, i])`` and hands schedulers an independent
generator from the same sequence, so

* re-running with the same seed reproduces results bit-for-bit, and
* algorithms are compared on identical instances (paired design),
  which shrinks the variance of between-algorithm differences far
  below the paper's 5000-instance unpaired design at a fraction of
  the compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.preemptive import simulate_preemptive
from repro.workloads.generator import sample_instance
from repro.workloads.params import WorkloadSpec

__all__ = ["SeriesStats", "run_comparison"]


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one algorithm's completion-time ratios over a cell."""

    key: str
    mean: float
    maximum: float
    std: float
    stderr: float
    n: int

    def to_dict(self) -> dict:
        """Plain-dict form for JSON persistence."""
        return {
            "key": self.key,
            "mean": self.mean,
            "max": self.maximum,
            "std": self.std,
            "stderr": self.stderr,
            "n": self.n,
        }


def run_comparison(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    n_instances: int,
    seed: int,
    preemptive: bool = False,
    quantum: float = 1.0,
) -> list[SeriesStats]:
    """Run ``algorithms`` over ``n_instances`` shared instances of ``spec``.

    Returns one :class:`SeriesStats` per algorithm, in input order.
    ``preemptive`` selects the engine; keys are suffixed with ``" (P)"``
    in that case so mixed comparisons stay unambiguous.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    ratios = np.empty((len(algorithms), n_instances), dtype=np.float64)
    for i in range(n_instances):
        ss = np.random.SeedSequence([seed, i])
        inst_rng, *alg_seeds = ss.spawn(1 + len(algorithms))
        job, system = sample_instance(spec, np.random.default_rng(inst_rng))
        for a, name in enumerate(algorithms):
            scheduler = make_scheduler(name)
            alg_rng = np.random.default_rng(alg_seeds[a])
            if preemptive:
                result = simulate_preemptive(
                    job, system, scheduler, rng=alg_rng, quantum=quantum
                )
            else:
                result = simulate(job, system, scheduler, rng=alg_rng)
            ratios[a, i] = result.completion_time_ratio()

    out: list[SeriesStats] = []
    suffix = " (P)" if preemptive else ""
    for a, name in enumerate(algorithms):
        row = ratios[a]
        std = float(row.std(ddof=1)) if n_instances > 1 else 0.0
        out.append(
            SeriesStats(
                key=f"{name}{suffix}",
                mean=float(row.mean()),
                maximum=float(row.max()),
                std=std,
                stderr=std / float(np.sqrt(n_instances)),
                n=n_instances,
            )
        )
    return out
