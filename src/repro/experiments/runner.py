"""Generic paired-comparison executor for the experiment harness.

:func:`run_comparison` is the primitive every figure builds on: sample
``n_instances`` (job, system) pairs from a workload cell and run a list
of algorithms on *the same* instances, returning per-algorithm summary
statistics of the completion-time ratio ``T(J) / L(J)``.

Seeding: instance ``i`` of a comparison draws its job/system from
``SeedSequence([seed, i])`` and hands schedulers an independent
generator from the same sequence, so

* re-running with the same seed reproduces results bit-for-bit, and
* algorithms are compared on identical instances (paired design),
  which shrinks the variance of between-algorithm differences far
  below the paper's 5000-instance unpaired design at a fraction of
  the compute.

Because each instance's randomness is derived solely from ``(seed,
i)``, the instance loop shards freely: ``n_workers > 1`` (or the
``REPRO_WORKERS`` environment variable) routes it through the
process-pool runner in :mod:`repro.experiments.parallel`, whose
results are bit-for-bit identical to the serial path.

Scheduler instances are constructed once per comparison and reused
across instances — :meth:`~repro.schedulers.base.Scheduler.prepare`
fully resets per-run state (guaranteed by
``tests/experiments/test_runner.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.decentral.engine import simulate_decentralized
from repro.decentral.schedulers import DecentralScheduler
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.sim.preemptive import simulate_preemptive
from repro.workloads.generator import sample_instance
from repro.workloads.params import WorkloadSpec

__all__ = ["SeriesStats", "resolve_engine", "run_comparison"]

#: Instances per batch-engine writeback chunk: large enough to
#: amortize the lockstep rounds over many rows, small enough that an
#: interrupted cold sweep resumes from a recent chunk and the offline
#: LRU cache (default 128 jobs) still covers a chunk's worth of jobs.
_BATCH_CHUNK = 128


def resolve_engine(engine: str | None = None) -> str:
    """Effective simulation engine: explicit argument, else ``REPRO_ENGINE``.

    ``REPRO_ENGINE`` accepts ``scalar`` (the per-instance event loop,
    the default) or ``batch`` (the vectorized lockstep engine of
    :mod:`repro.sim.batch`, bit-identical results).  Unset or empty
    means scalar.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "").strip().lower() or "scalar"
    engine = str(engine).strip().lower()
    if engine not in ("scalar", "batch"):
        raise ConfigurationError(
            f"engine must be 'scalar' or 'batch', got {engine!r}"
        )
    return engine


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one algorithm's completion-time ratios over a cell."""

    key: str
    mean: float
    maximum: float
    std: float
    stderr: float
    n: int

    def to_dict(self) -> dict:
        """Plain-dict form for JSON persistence."""
        return {
            "key": self.key,
            "mean": self.mean,
            "max": self.maximum,
            "std": self.std,
            "stderr": self.stderr,
            "n": self.n,
        }


def _instance_ratios(
    spec: WorkloadSpec,
    schedulers: Sequence[Scheduler],
    i: int,
    seed: int,
    preemptive: bool,
    quantum: float,
    out: np.ndarray,
    telemetry: Telemetry | None = None,
) -> None:
    """Run all algorithms on instance ``i``; write ratios into ``out``.

    All randomness derives from ``SeedSequence([seed, i])``, making
    this the shardable unit of a comparison: any partition of the
    instance range over any number of processes reproduces the exact
    serial results.  ``telemetry`` rides along into the engines and
    never influences them; results are identical with or without it.
    """
    ss = np.random.SeedSequence([seed, i])
    inst_rng, *alg_seeds = ss.spawn(1 + len(schedulers))
    if telemetry is None or not telemetry.enabled:
        job, system = sample_instance(spec, np.random.default_rng(inst_rng))
    else:
        with telemetry.timer("phase.sample_instance"):
            job, system = sample_instance(spec, np.random.default_rng(inst_rng))
        telemetry.inc("sweep.instances")
    for a, scheduler in enumerate(schedulers):
        alg_rng = np.random.default_rng(alg_seeds[a])
        if isinstance(scheduler, DecentralScheduler):
            if preemptive:
                raise ConfigurationError(
                    f"{scheduler.name}: decentralized schedulers do not "
                    f"support the preemptive engine"
                )
            result = simulate_decentralized(
                job, system, scheduler, rng=alg_rng, telemetry=telemetry
            )
        elif preemptive:
            result = simulate_preemptive(
                job, system, scheduler, rng=alg_rng, quantum=quantum,
                telemetry=telemetry,
            )
        else:
            result = simulate(
                job, system, scheduler, rng=alg_rng, telemetry=telemetry
            )
        out[a] = result.completion_time_ratio()


def _batch_instance_ratios(
    spec: WorkloadSpec,
    schedulers: Sequence[Scheduler],
    indices: Sequence[int],
    seed: int,
    out: np.ndarray,
    telemetry: Telemetry | None = None,
) -> None:
    """Run all algorithms on ``indices`` via the lockstep batch engine.

    Samples each instance with exactly the randomness the scalar path
    derives from ``SeedSequence([seed, i])`` — same spawn layout, same
    per-algorithm generators — then hands the whole (algorithm ×
    instance) grid to :func:`repro.sim.batch.simulate_batch_grid`,
    which simulates every supported pair in lockstep and is
    bit-identical to the scalar engine per pair.  ``out`` receives the
    ``(n_algorithms, len(indices))`` ratio block.
    """
    from repro.sim.batch import simulate_batch_grid

    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    instances = []
    rng_grid: list[list[np.random.Generator | None]] = [
        [None] * len(indices) for _ in schedulers
    ]
    for j, i in enumerate(indices):
        ss = np.random.SeedSequence([seed, int(i)])
        inst_rng, *alg_seeds = ss.spawn(1 + len(schedulers))
        if obs is None:
            instances.append(sample_instance(spec, np.random.default_rng(inst_rng)))
        else:
            with obs.timer("phase.sample_instance"):
                instances.append(
                    sample_instance(spec, np.random.default_rng(inst_rng))
                )
            obs.inc("sweep.instances")
        for a in range(len(schedulers)):
            rng_grid[a][j] = np.random.default_rng(alg_seeds[a])
    grid = simulate_batch_grid(
        instances, schedulers, rngs=rng_grid, telemetry=telemetry
    )
    for a in range(len(schedulers)):
        for j in range(len(indices)):
            out[a, j] = grid[a][j].completion_time_ratio()


def _run_comparison_batch(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    n_instances: int,
    seed: int,
    quantum: float,
    telemetry: Telemetry | None = None,
) -> list[SeriesStats]:
    """The batch-engine sweep: cache-miss instances simulated in lockstep.

    Cache keys are engine-mode-invariant (no engine field): a batch
    sweep reads columns a scalar sweep wrote and vice versa, which is
    sound *because* the batch engine is bit-identical per instance.
    Misses are computed in writeback chunks so an interrupted cold
    sweep still resumes from its last persisted chunk.
    """
    from repro.resultcache.integrate import open_sweep_cache
    from repro.resultcache.keys import comparison_fingerprint

    cache = open_sweep_cache(
        comparison_fingerprint(spec, algorithms, seed, False, quantum),
        len(algorithms),
        telemetry=telemetry,
    )
    schedulers = [make_scheduler(name) for name in algorithms]
    ratios = np.empty((len(algorithms), n_instances), dtype=np.float64)
    if cache is not None:
        misses = cache.fill_hits(ratios)
    else:
        misses = list(range(n_instances))
    for c in range(0, len(misses), _BATCH_CHUNK):
        chunk = misses[c : c + _BATCH_CHUNK]
        block = np.empty((len(algorithms), len(chunk)), dtype=np.float64)
        _batch_instance_ratios(
            spec, schedulers, chunk, seed, block, telemetry=telemetry
        )
        for j, i in enumerate(chunk):
            ratios[:, i] = block[:, j]
            if cache is not None:
                cache.write_instance(i, block[:, j])
    return _stats_from_ratios(algorithms, ratios, False)


def _stats_from_ratios(
    algorithms: Sequence[str], ratios: np.ndarray, preemptive: bool
) -> list[SeriesStats]:
    """Collapse the ``(n_algorithms, n_instances)`` ratio matrix."""
    n_instances = ratios.shape[1]
    out: list[SeriesStats] = []
    suffix = " (P)" if preemptive else ""
    for a, name in enumerate(algorithms):
        row = ratios[a]
        std = float(row.std(ddof=1)) if n_instances > 1 else 0.0
        out.append(
            SeriesStats(
                key=f"{name}{suffix}",
                mean=float(row.mean()),
                maximum=float(row.max()),
                std=std,
                stderr=std / float(np.sqrt(n_instances)),
                n=n_instances,
            )
        )
    return out


def run_comparison(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    n_instances: int,
    seed: int,
    preemptive: bool = False,
    quantum: float = 1.0,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> list[SeriesStats]:
    """Run ``algorithms`` over ``n_instances`` shared instances of ``spec``.

    Returns one :class:`SeriesStats` per algorithm, in input order.
    ``preemptive`` selects the preemptive event engine; keys are
    suffixed with ``" (P)"`` in that case so mixed comparisons stay
    unambiguous.

    ``engine`` selects how non-preemptive instances are simulated
    (``None`` defers to ``REPRO_ENGINE``, defaulting to ``scalar``):
    ``"batch"`` routes cache-miss instances through the vectorized
    lockstep engine (:mod:`repro.sim.batch`), which simulates the
    whole (algorithm × instance) grid in-process — no worker pool —
    with bit-identical results and identical cache keys.  Preemptive
    comparisons always use the scalar preemptive engine.

    ``n_workers`` selects how many worker processes shard the instance
    loop (``None`` defers to ``REPRO_WORKERS``, defaulting to serial).
    Results are identical for every worker count.

    ``telemetry`` enables profiling (:mod:`repro.obs`): engine phase
    timers, per-scheduler decision costs and sweep counters accumulate
    into it.  Sharded sweeps profile per worker chunk and merge the
    snapshots, so counter totals are identical for every worker count
    (timer totals are wall-clock facts of the actual run).  Events are
    only collected in-process: a parallel sweep records aggregates,
    not per-event streams.

    Instance results are memoized persistently by
    :mod:`repro.resultcache` (disable with ``REPRO_CACHE=0``): the
    serial loop consults the cache per instance and persists each
    fresh result immediately, so a re-run is pure lookups and an
    interrupted sweep resumes where it stopped.  Cached columns are
    bit-identical to recomputed ones, so results — cached, fresh, or
    mixed — are the same for every worker count and cache state.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")

    from repro.experiments.parallel import resolve_workers, run_comparison_parallel
    from repro.resultcache.integrate import open_sweep_cache
    from repro.resultcache.keys import comparison_fingerprint

    if resolve_engine(engine) == "batch" and not preemptive:
        return _run_comparison_batch(
            spec, algorithms, n_instances, seed, quantum, telemetry=telemetry
        )

    if resolve_workers(n_workers) > 1 and n_instances > 1:
        return run_comparison_parallel(
            spec,
            algorithms,
            n_instances,
            seed,
            preemptive=preemptive,
            quantum=quantum,
            n_workers=n_workers,
            telemetry=telemetry,
        )

    cache = open_sweep_cache(
        comparison_fingerprint(spec, algorithms, seed, preemptive, quantum),
        len(algorithms),
        telemetry=telemetry,
    )
    schedulers = [make_scheduler(name) for name in algorithms]
    ratios = np.empty((len(algorithms), n_instances), dtype=np.float64)
    for i in range(n_instances):
        if cache is not None:
            column = cache.lookup(i)
            if column is not None:
                ratios[:, i] = column
                continue
        _instance_ratios(
            spec, schedulers, i, seed, preemptive, quantum, ratios[:, i],
            telemetry=telemetry,
        )
        if cache is not None:
            cache.write_instance(i, ratios[:, i])
    return _stats_from_ratios(algorithms, ratios, preemptive)
