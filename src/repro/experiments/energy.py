"""Energy/makespan Pareto experiment (``repro run energy``).

Sweeps the paper's six algorithms plus the energy-aware variants
(``emqb[w=...]`` idle-power-weighted balancing,
``kgreedy-consolidate[r=...]`` per-type concurrency capping) across
the named power configurations of :mod:`repro.energy.models`, and
reports the energy/makespan Pareto front per power config.

Per (instance, algorithm) the sweep records three normalized metrics:

* ``ratio`` — completion-time ratio ``T / L(J)`` (the paper's metric);
* ``energy`` — total energy under the power model divided by the
  *busy floor* ``sum_alpha busy_alpha * busywork_alpha`` (the energy a
  schedule would cost if processors drew nothing while idle; identical
  for every algorithm on one instance, so the number is comparable
  across algorithms and instances and is always ``>= 1`` when idle
  draws are nonzero);
* ``profit`` — the arXiv:1501.05414 objective with per-task values
  equal to work, a global deadline of ``deadline_factor * L(J)``, and
  an energy price of ``energy_price_factor * total_value / busy_floor``
  — normalized by the total value, so ``1`` is "all value captured,
  energy free".

**Sharding and caching** mirror the decentral sweep: instance ``i``
derives all randomness from ``SeedSequence([seed, i])``, so the sweep
shards bit-identically over
:func:`repro.experiments.parallel.run_sharded_instances` for any worker
count, and per-instance columns are memoized under
:func:`repro.resultcache.keys.energy_fingerprint` (workload, ordered
algorithm list, seed, every power-model field, and the profit knobs).

**Rejection paths are explicit** (the PR's bugfix satellite): the batch
engine runs lockstep rows that never materialize per-instance traces,
and the decentralized engine's steal costs occupy processors outside
the recorded segments — both would silently report wrong (zero) idle
energy, so requesting either raises
:class:`~repro.errors.ConfigurationError` and bumps an
``energy.rejected.*`` counter instead of degrading silently, mirroring
the preemptive+decentral guard.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.energy.metrics import energy_breakdown, schedule_profit
from repro.energy.models import PowerModel, power_config
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import PAPER_ALGORITHMS, make_scheduler
from repro.sim.engine import simulate
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance
from repro.workloads.params import WorkloadSpec

__all__ = [
    "run_energy",
    "run_energy_comparison",
    "energy_algorithm_names",
    "pareto_front",
    "ENERGY_POWER_SWEEP",
    "ENERGY_METRICS",
    "DEFAULT_DEADLINE_FACTOR",
    "DEFAULT_ENERGY_PRICE_FACTOR",
]

#: Power configs of the default sweep (>= 3 per the acceptance bar).
ENERGY_POWER_SWEEP: tuple[str, ...] = (
    "baseline",
    "idle-heavy",
    "hetero",
    "shutdown",
)

#: Worker block rows per algorithm, in order.
ENERGY_METRICS: tuple[str, ...] = ("ratio", "energy", "profit")

#: Per-task deadline = this factor times the instance lower bound L(J).
DEFAULT_DEADLINE_FACTOR = 1.5

#: Energy price = this factor times total value / busy floor.
DEFAULT_ENERGY_PRICE_FACTOR = 0.1

#: Workload cell of the default sweep.  Layered IR has real dependency
#: stalls, so schedules differ meaningfully in idle time — the regime
#: where consolidation and shutdown windows matter.
ENERGY_CELL = "medium-layered-ir"


def energy_algorithm_names(power_name: str) -> tuple[str, ...]:
    """Ordered algorithm list for one power config.

    The six paper algorithms followed by four energy-aware variants.
    The EMQB entries name the sweep's power config explicitly so the
    scheduler weights against the same model the metrics integrate
    (and so each power config's fingerprint covers the difference).
    """
    return PAPER_ALGORITHMS + (
        f"emqb[w=0.5,power={power_name}]",
        f"emqb[w=1,power={power_name}]",
        "kgreedy-consolidate[r=0.5]",
        "kgreedy-consolidate[r=0.25]",
    )


def _check_algorithms(algorithms: Sequence[str], telemetry: Telemetry | None) -> None:
    """Reject schedulers whose engines cannot honor energy accounting."""
    for name in algorithms:
        if str(name).strip().lower().startswith(("dkgreedy", "dmqb")):
            if telemetry is not None and telemetry.enabled:
                telemetry.inc("energy.rejected.decentral")
            raise ConfigurationError(
                f"{name}: decentralized schedulers are not supported by the "
                f"energy sweep — steal costs occupy processors outside the "
                f"recorded trace segments, so idle-gap energy accounting "
                f"would silently be wrong"
            )


def _check_engine(engine: str | None, telemetry: Telemetry | None) -> None:
    """Reject the batch engine: lockstep rows record no usable traces."""
    from repro.experiments.runner import resolve_engine

    if resolve_engine(engine) == "batch":
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("energy.rejected.engine")
        raise ConfigurationError(
            "the energy experiment requires the scalar engine (per-instance "
            "traces feed the idle-gap energy accounting); rerun with "
            "--engine scalar or unset REPRO_ENGINE"
        )


def _energy_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    power: PowerModel,
    seed: int,
    deadline_factor: float,
    energy_price_factor: float,
    profile: bool,
    start: int,
    stop: int,
):
    """Sweep worker: the three metrics for instances ``start..stop-1``.

    Returns a ``(3 * len(algorithms), stop - start)`` block: rows
    ``3a..3a+2`` are ratio / normalized energy / normalized profit of
    algorithm ``a`` (see :data:`ENERGY_METRICS`).  With ``profile`` the
    block is paired with a telemetry snapshot dict for the parent to
    merge.
    """
    schedulers = [make_scheduler(name) for name in algorithms]
    telemetry = Telemetry() if profile else None
    n_rows = len(ENERGY_METRICS) * len(algorithms)
    block = np.empty((n_rows, stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        ss = np.random.SeedSequence([seed, i])
        inst_rng, *alg_seeds = ss.spawn(1 + len(schedulers))
        job, system = sample_instance(spec, np.random.default_rng(inst_rng))
        values = job.work.astype(np.float64)
        total_value = float(values.sum())
        for a, sched in enumerate(schedulers):
            res = simulate(
                job, system, sched,
                rng=np.random.default_rng(alg_seeds[a]),
                record_trace=True, telemetry=telemetry,
            )
            bd = energy_breakdown(res.trace, system, power, res.makespan)
            busy_floor = float(bd["busy"])
            denom = busy_floor if busy_floor > 0.0 else 1.0
            lower = res.lower_bound()
            deadlines = np.full(job.n_tasks, deadline_factor * lower)
            price = energy_price_factor * total_value / denom
            profit = schedule_profit(
                res.trace, values, deadlines, bd["total"], price
            )
            block[3 * a + 0, j] = res.makespan / lower
            block[3 * a + 1, j] = bd["total"] / denom
            block[3 * a + 2, j] = profit / total_value if total_value else 0.0
            if telemetry is not None:
                telemetry.inc("energy.runs")
                telemetry.inc("energy.gaps", bd["n_gaps"])
                telemetry.inc("energy.shutdowns", bd["n_shutdowns"])
    if telemetry is not None:
        return block, telemetry.snapshot().to_dict()
    return block


def run_energy_comparison(
    spec: WorkloadSpec,
    power: PowerModel,
    n_instances: int,
    seed: int,
    algorithms: Sequence[str] | None = None,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    deadline_factor: float = DEFAULT_DEADLINE_FACTOR,
    energy_price_factor: float = DEFAULT_ENERGY_PRICE_FACTOR,
) -> dict:
    """One power config's sweep: all algorithms on shared instances.

    Returns ``{name: {"ratio": mean, "energy": mean, "profit": mean}}``
    per algorithm plus ``"n_instances"``.  Results are bit-identical
    for every ``n_workers``; per-instance columns are memoized under
    the full energy fingerprint.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    from repro.experiments.parallel import run_sharded_instances
    from repro.resultcache.integrate import open_sweep_cache, segments_of
    from repro.resultcache.keys import energy_fingerprint

    algorithms = tuple(
        str(a).strip().lower()
        for a in (algorithms if algorithms is not None else energy_algorithm_names(power.name))
    )
    _check_algorithms(algorithms, telemetry)
    power.check_types(spec.num_types)
    n_rows = len(ENERGY_METRICS) * len(algorithms)
    profile = telemetry is not None and telemetry.enabled
    cache = open_sweep_cache(
        energy_fingerprint(
            spec, algorithms, seed, power.fingerprint(),
            deadline_factor, energy_price_factor,
        ),
        n_rows,
        telemetry=telemetry,
    )
    segments = out = on_chunk = None
    matrix = None
    if cache is not None:
        out = np.empty((n_rows, n_instances), dtype=np.float64)
        misses = cache.fill_hits(out)
        if not misses:
            matrix = out
        else:
            segments = segments_of(misses)
            on_chunk = cache.write_chunk
    if matrix is None:
        result = run_sharded_instances(
            partial(
                _energy_chunk, spec, algorithms, power, seed,
                deadline_factor, energy_price_factor, profile,
            ),
            n_rows,
            n_instances,
            n_workers=n_workers,
            collect_extras=profile,
            segments=segments,
            out=out,
            on_chunk=on_chunk,
        )
        if profile:
            matrix, snapshots = result
            for snap in snapshots:
                telemetry.merge_snapshot(snap)
        else:
            matrix = result
    means = matrix.mean(axis=1)
    stats: dict = {
        name: {
            metric: float(means[3 * a + m])
            for m, metric in enumerate(ENERGY_METRICS)
        }
        for a, name in enumerate(algorithms)
    }
    stats["n_instances"] = n_instances
    return stats


def pareto_front(points: dict[str, tuple[float, float]]) -> list[str]:
    """Non-dominated subset under joint minimization of both coordinates.

    A point is dominated if another is <= in both coordinates and < in
    at least one.  Returns the surviving names sorted by the first
    coordinate (ties broken by name for determinism).
    """
    front: list[str] = []
    for name, (x, y) in points.items():
        dominated = any(
            (ox <= x and oy <= y and (ox < x or oy < y))
            for other, (ox, oy) in points.items()
            if other != name
        )
        if not dominated:
            front.append(name)
    return sorted(front, key=lambda n: (points[n][0], n))


def run_energy(
    n_instances: int | None = None,
    seed: int = 2021,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
    power_names: Sequence[str] | None = None,
    cell: str = ENERGY_CELL,
    deadline_factor: float = DEFAULT_DEADLINE_FACTOR,
    energy_price_factor: float = DEFAULT_ENERGY_PRICE_FACTOR,
) -> dict:
    """Energy/makespan Pareto fronts across power configurations.

    For each power config (default :data:`ENERGY_POWER_SWEEP`) runs all
    ten algorithms on shared instances of ``cell`` and computes the
    Pareto front over (mean completion-time ratio, mean normalized
    energy).  The table carries all three metrics per (power,
    algorithm) with front membership marked.
    """
    n = n_instances or 12
    _check_engine(engine, telemetry)
    if cell not in WORKLOAD_CELLS:
        raise ConfigurationError(
            f"unknown energy cell {cell!r}; known: {sorted(WORKLOAD_CELLS)}"
        )
    spec = WORKLOAD_CELLS[cell]
    names = tuple(power_names if power_names is not None else ENERGY_POWER_SWEEP)
    if not names:
        raise ConfigurationError("energy sweep needs at least one power config")

    rows: list[list] = []
    fronts: dict[str, list[str]] = {}
    per_power: dict[str, dict] = {}
    for power_name in names:
        power = power_config(power_name, spec.num_types)
        algorithms = energy_algorithm_names(power.name)
        stats = run_energy_comparison(
            spec, power, n, seed,
            algorithms=algorithms, n_workers=n_workers, telemetry=telemetry,
            deadline_factor=deadline_factor,
            energy_price_factor=energy_price_factor,
        )
        points = {
            name: (stats[name]["ratio"], stats[name]["energy"])
            for name in algorithms
        }
        front = pareto_front(points)
        fronts[power.name] = front
        per_power[power.name] = {k: v for k, v in stats.items() if k != "n_instances"}
        for name in algorithms:
            s = stats[name]
            rows.append(
                [
                    power.name,
                    name,
                    round(s["ratio"], 4),
                    round(s["energy"], 4),
                    round(s["profit"], 4),
                    "*" if name in front else "",
                ]
            )

    return {
        "figure": "energy",
        "title": (
            "Energy-aware scheduling: energy/makespan Pareto fronts across "
            "power configurations (mean over shared instances)"
        ),
        "kind": "table",
        "columns": [
            "power",
            "algorithm",
            "mean ratio T/L(J)",
            "mean energy / busy floor",
            "mean profit / total value",
            "pareto",
        ],
        "rows": rows,
        "fronts": fronts,
        "stats": per_power,
        "config": {
            "n_instances": n,
            "seed": seed,
            "cell": cell,
            "power_configs": list(names),
            "algorithms": list(energy_algorithm_names("<power>")),
            "deadline_factor": deadline_factor,
            "energy_price_factor": energy_price_factor,
            "engine": "scalar",
        },
    }
