"""Decentralized-scheduling overhead experiment (``repro run decentral``).

Empirically reproduces the message of Tchiboukdjian, Gast & Trystram's
"Decentralized List Scheduling" bound: work stealing loses only a
lower-order term over centralized list scheduling — the makespan
overhead ``T_decentralized / T_centralized`` stays a small factor that
*shrinks* as the processor count grows, because the O(log)-ish steal
overhead is amortized over ever more parallel work.

The sweep scales the system to thousands of processors per type:
for each ``P`` in :data:`DECENTRAL_P_GRID` it builds an explicit
``(P,) * K`` system and an EP workload whose width tracks ``P``
(``2 P`` chains of 4-8 unit-to-8 work tasks, random type structure),
then runs the centralized KGreedy/MQB and their decentralized
counterparts DKGreedy/DMQB on the *same* instances with paired
per-algorithm seed streams.  Per (algorithm, P) it records the mean
completion-time ratio ``T / L(J)``; per (pair, P) the mean overhead
``T_dec / T_cen``.

**Sharding and caching** mirror the robustness sweep: instance ``i``
derives all randomness from ``SeedSequence([seed, i])``, so the sweep
shards bit-identically over
:func:`repro.experiments.parallel.run_sharded_instances` for any
worker count, and per-instance columns are memoized under
:func:`repro.resultcache.keys.decentral_fingerprint` (workload, ordered
algorithm list, explicit ``P``, seed, and the full steal-policy dict).

**Ragged cells**: very large ``P`` cells are clamped to fewer instances
(:func:`clamp_decentral_instances`) to bound wall time; each cell runs
its own ``run_sharded_instances`` call, so differing instance counts
across cells are safe for any worker count (the regression test in
``tests/experiments/test_decentral_experiment.py`` pins this).
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.decentral.policies import StealPolicy
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import make_scheduler
from repro.system.resources import ResourceConfig
from repro.workloads.generator import sample_job
from repro.workloads.params import EPParams, WorkloadSpec

__all__ = [
    "run_decentral",
    "run_decentral_comparison",
    "decentral_spec",
    "clamp_decentral_instances",
    "DECENTRAL_P_GRID",
]

#: Processors per type of the overhead sweep (the tentpole asks for
#: "P per type up to the thousands").
DECENTRAL_P_GRID: tuple[int, ...] = (4, 16, 64, 256, 1024)

#: Number of functional types.  K=2 keeps the task count at P=1024
#: tractable while still exercising typed victim sets.
DECENTRAL_NUM_TYPES = 2

#: (decentralized, centralized) pairing by position in the algorithm
#: list built by :func:`_algorithm_names`.
_PAIRS: tuple[tuple[int, int], ...] = ((2, 0), (3, 1))


def decentral_spec(p_per_type: int, num_types: int = DECENTRAL_NUM_TYPES) -> WorkloadSpec:
    """EP workload whose width tracks the system size.

    ``2 * P`` chains of 4-8 tasks keep per-type ready width around the
    processor count at every scale, which is the regime where the
    steal protocol (not raw capacity) decides the makespan.  The
    ``system`` field is nominal — the sweep overrides the sampled
    system with an explicit ``(P,) * K``.
    """
    return WorkloadSpec(
        family="ep",
        structure="random",
        system="small",
        num_types=num_types,
        params=EPParams(
            branches_range=(2 * p_per_type, 2 * p_per_type),
            chain_length_range=(4, 8),
            work_range=(1, 8),
        ),
    )


def clamp_decentral_instances(n_instances: int, p_per_type: int) -> int:
    """Instances to actually run at one ``P`` (large cells are clamped).

    A P=1024 instance is ~256x the work of a P=4 instance; dividing the
    instance budget keeps the sweep's wall time roughly flat per cell
    while leaving the small-P statistics at full strength.
    """
    if p_per_type <= 64:
        factor = 1
    elif p_per_type <= 256:
        factor = 2
    else:
        factor = 4
    return max(1, n_instances // factor)


def _algorithm_names(policy: StealPolicy) -> tuple[str, ...]:
    """Ordered algorithm list: centralized pair, then decentralized pair."""
    suffix = policy.suffix()
    return ("kgreedy", "mqb", "dkgreedy" + suffix, "dmqb" + suffix)


def _decentral_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    p_per_type: int,
    seed: int,
    profile: bool,
    start: int,
    stop: int,
):
    """Sweep worker: ratios + overheads for instances ``start..stop-1``.

    Returns a ``(len(algorithms) + len(_PAIRS), stop - start)`` block:
    rows ``0..A-1`` are completion-time ratios ``T / L(J)`` per
    algorithm, rows ``A..`` are makespan overheads ``T_dec / T_cen``
    per :data:`_PAIRS` entry.  With ``profile`` the block is paired
    with a telemetry snapshot dict for the parent to merge.
    """
    from repro.decentral.engine import dispatch_simulate

    schedulers = [make_scheduler(name) for name in algorithms]
    system = ResourceConfig((p_per_type,) * spec.num_types)
    telemetry = Telemetry() if profile else None
    n_rows = len(algorithms) + len(_PAIRS)
    block = np.empty((n_rows, stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        ss = np.random.SeedSequence([seed, i])
        inst_rng, *alg_seeds = ss.spawn(1 + len(schedulers))
        job = sample_job(spec, np.random.default_rng(inst_rng))
        makespans = []
        for a, sched in enumerate(schedulers):
            res = dispatch_simulate(
                job, system, sched,
                rng=np.random.default_rng(alg_seeds[a]), telemetry=telemetry,
            )
            makespans.append(res.makespan)
            block[a, j] = res.completion_time_ratio()
        for pi, (dec, cen) in enumerate(_PAIRS):
            block[len(schedulers) + pi, j] = makespans[dec] / makespans[cen]
    if telemetry is not None:
        return block, telemetry.snapshot().to_dict()
    return block


def run_decentral_comparison(
    p_per_type: int,
    n_instances: int,
    seed: int,
    policy: StealPolicy | None = None,
    num_types: int = DECENTRAL_NUM_TYPES,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    """One cell of the overhead sweep: all four algorithms at one ``P``.

    Returns ``{"ratio": {name: mean}, "overhead": {pair_label: mean},
    "n_instances": int}``.  Results are bit-identical for every
    ``n_workers``; per-instance columns are memoized under the full
    sweep fingerprint, so a resumed or re-scaled sweep only computes
    cache misses.
    """
    if p_per_type < 1:
        raise ConfigurationError(f"p_per_type must be >= 1, got {p_per_type}")
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    from repro.experiments.parallel import run_sharded_instances
    from repro.resultcache.integrate import open_sweep_cache, segments_of
    from repro.resultcache.keys import decentral_fingerprint

    policy = policy if policy is not None else StealPolicy()
    spec = decentral_spec(p_per_type, num_types)
    algorithms = _algorithm_names(policy)
    n_rows = len(algorithms) + len(_PAIRS)
    profile = telemetry is not None and telemetry.enabled
    cache = open_sweep_cache(
        decentral_fingerprint(
            spec, algorithms, p_per_type, seed, policy.fingerprint()
        ),
        n_rows,
        telemetry=telemetry,
    )
    segments = out = on_chunk = None
    matrix = None
    if cache is not None:
        out = np.empty((n_rows, n_instances), dtype=np.float64)
        misses = cache.fill_hits(out)
        if not misses:
            matrix = out
        else:
            segments = segments_of(misses)
            on_chunk = cache.write_chunk
    if matrix is None:
        result = run_sharded_instances(
            partial(
                _decentral_chunk, spec, algorithms, p_per_type, seed, profile,
            ),
            n_rows,
            n_instances,
            n_workers=n_workers,
            collect_extras=profile,
            segments=segments,
            out=out,
            on_chunk=on_chunk,
        )
        if profile:
            matrix, snapshots = result
            for snap in snapshots:
                telemetry.merge_snapshot(snap)
        else:
            matrix = result
    means = matrix.mean(axis=1)
    ratio = {name: float(means[a]) for a, name in enumerate(algorithms)}
    overhead = {
        f"{algorithms[dec]} / {algorithms[cen]}": float(means[len(algorithms) + pi])
        for pi, (dec, cen) in enumerate(_PAIRS)
    }
    return {"ratio": ratio, "overhead": overhead, "n_instances": n_instances}


def run_decentral(
    n_instances: int | None = None,
    seed: int = 2019,
    n_workers: int | None = None,
    policy: StealPolicy | None = None,
    p_grid: Sequence[int] | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Makespan overhead of decentralized scheduling vs processors per type.

    For each ``P`` in ``p_grid`` (default :data:`DECENTRAL_P_GRID`)
    runs centralized KGreedy/MQB against decentralized DKGreedy/DMQB on
    shared instances and plots the mean makespan overhead
    ``T_dec / T_cen`` plus the absolute completion-time ratios.
    ``n_instances`` is the budget at small ``P``; large-``P`` cells are
    clamped (see :func:`clamp_decentral_instances`).
    """
    n = n_instances or 8
    policy = policy if policy is not None else StealPolicy()
    grid = tuple(int(p) for p in (p_grid or DECENTRAL_P_GRID))
    algorithms = _algorithm_names(policy)

    cells = []
    for p in grid:
        n_p = clamp_decentral_instances(n, p)
        cells.append(
            (p, n_p, run_decentral_comparison(
                p, n_p, seed, policy=policy, n_workers=n_workers,
                telemetry=telemetry,
            ))
        )

    pair_labels = [f"{algorithms[d]} / {algorithms[c]}" for d, c in _PAIRS]
    overhead_series = {
        label: [cell[2]["overhead"][label] for cell in cells]
        for label in pair_labels
    }
    ratio_series = {
        name: [cell[2]["ratio"][name] for cell in cells]
        for name in algorithms
    }
    x = [p for p, _, _ in cells]
    return {
        "figure": "decentral",
        "title": (
            "Decentralized work stealing: makespan overhead vs processors "
            "per type (mean T_decentralized / T_centralized)"
        ),
        "kind": "lines",
        "metric": "mean",
        "panels": [
            {
                "name": "overhead",
                "label": "(a) Makespan overhead of decentralization",
                "x_label": "processors per type",
                "x": x,
                "series": overhead_series,
            },
            {
                "name": "ratio",
                "label": "(b) Completion-time ratio T / L(J)",
                "x_label": "processors per type",
                "x": x,
                "series": ratio_series,
            },
        ],
        "config": {
            "n_instances": n,
            "instances_per_p": {str(p): n_p for p, n_p, _ in cells},
            "seed": seed,
            "num_types": DECENTRAL_NUM_TYPES,
            "p_grid": list(grid),
            "steal": policy.fingerprint(),
            "algorithms": list(algorithms),
            "workload": "EP random, 2P chains of 4-8 tasks, work 1-8",
        },
    }
