"""Process-parallel paired-comparison sweeps.

:func:`run_comparison_parallel` shards the instance loop of
:func:`repro.experiments.runner.run_comparison` across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is
structural, not incidental:

* instance ``i`` derives **all** of its randomness from
  ``SeedSequence([seed, i])`` — nothing depends on which worker runs
  it, what ran before it in that worker, or how instances are chunked;
* every chunk's ratio block is written back at its instance indices,
  so completion order cannot reorder anything;
* the summary statistics are computed once, on the fully assembled
  ``(n_algorithms, n_instances)`` matrix, by the exact code the serial
  path uses.

Hence the results are **bit-for-bit identical** to the serial path for
every worker count and chunk size (asserted by
``tests/experiments/test_parallel.py``).

Worker selection: an explicit ``n_workers`` argument wins; otherwise
the ``REPRO_WORKERS`` environment variable (an integer, or ``auto``
for the CPU count); otherwise serial.  The offline-info cache
(:mod:`repro.core.cache`) is per process — each worker warms its own,
which costs one pass per (job, quantity) per worker and nothing more.

Because instance results are pure functions of ``(seed, i)`` and the
sweep configuration, they are memoized persistently by
:mod:`repro.resultcache`: the parent resolves every instance against
the cache before building a pool, shards only the misses (as
``segments`` of :func:`run_sharded_instances`), and persists each
chunk's columns as it lands — a re-run of a finished sweep is pure
lookups and an interrupted sweep resumes from its last completed
chunk.  Set ``REPRO_CACHE=0`` to disable.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    SeriesStats,
    _instance_ratios,
    _stats_from_ratios,
)
from repro.obs.telemetry import Telemetry
from repro.resultcache.integrate import open_sweep_cache, segments_of
from repro.resultcache.keys import comparison_fingerprint
from repro.schedulers.registry import make_scheduler
from repro.workloads.params import WorkloadSpec

__all__ = [
    "resolve_workers",
    "plan_chunks",
    "terminate_pool",
    "run_comparison_parallel",
    "run_sharded_instances",
]

#: Chunks per worker the instance range is split into (smaller chunks
#: balance load across heterogeneous instance costs; larger chunks
#: amortize per-task dispatch overhead).
_CHUNKS_PER_WORKER = 4

#: Writeback points a serial cached sweep is split into, so an
#: interrupted serial run still resumes from a recent chunk.
_SERIAL_WRITEBACK_CHUNKS = 8


def resolve_workers(n_workers: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``.

    ``REPRO_WORKERS`` accepts a positive integer or ``auto`` (the CPU
    count); unset or empty means serial (1).
    """
    if n_workers is not None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        return int(n_workers)
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def _ratio_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    seed: int,
    preemptive: bool,
    quantum: float,
    profile: bool,
    start: int,
    stop: int,
):
    """Sweep worker: completion-time ratios for instances ``start..stop-1``.

    Constructs its own schedulers (scheduler instances are reusable
    across instances but not picklable in general) and returns the
    ``(n_algorithms, stop - start)`` ratio block.  With ``profile``
    the chunk runs under a fresh local
    :class:`~repro.obs.telemetry.Telemetry` and returns
    ``(block, snapshot_dict)`` for the parent to merge.
    """
    schedulers = [make_scheduler(name) for name in algorithms]
    telemetry = Telemetry() if profile else None
    block = np.empty((len(algorithms), stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        _instance_ratios(
            spec, schedulers, i, seed, preemptive, quantum, block[:, j],
            telemetry=telemetry,
        )
    if telemetry is not None:
        return block, telemetry.snapshot().to_dict()
    return block


def _run_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    start: int,
    stop: int,
    seed: int,
    preemptive: bool,
    quantum: float,
) -> tuple[int, np.ndarray]:
    """Ratio chunk tagged with its start index (kept for direct callers)."""
    return start, _ratio_chunk(
        spec, algorithms, seed, preemptive, quantum, False, start, stop
    )


def plan_chunks(
    segments: Sequence[tuple[int, int]], chunk_size: int
) -> list[tuple[int, int]]:
    """Split instance segments into dispatchable ``(start, stop)`` chunks.

    Every chunk covers at least one instance, so the plan can never
    contain more chunks than there are remaining instances — the
    invariant that keeps a mostly-cached sweep from building a pool
    (or a chunk list) larger than its actual work.
    """
    return [
        (s, min(s + chunk_size, stop))
        for start, stop in segments
        for s in range(start, stop, chunk_size)
    ]


def _chunk_bounds(n_instances: int, chunk_size: int) -> list[tuple[int, int]]:
    return plan_chunks([(0, n_instances)], chunk_size)


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: cancel queued work, kill live workers.

    ``ProcessPoolExecutor.shutdown`` always waits for chunks that have
    already started; on the failure path that means a Ctrl-C (or one
    broken chunk) leaves the parent hanging — or, if the parent dies,
    orphaned worker processes still burning CPU.  Terminating the
    workers after ``shutdown(wait=False, cancel_futures=True)`` is the
    documented-safe way out: every chunk is idempotent (pure function
    of its instance range), so nothing is lost but in-flight work.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):  # already dead / exotic impl
            pass
    for proc in list(processes.values()):
        try:
            proc.join(timeout=5.0)
        except (OSError, AssertionError):
            pass


def _check_segments(
    segments: Sequence[tuple[int, int]], n_instances: int
) -> list[tuple[int, int]]:
    prev = 0
    out = []
    for start, stop in segments:
        if not (prev <= start < stop <= n_instances):
            raise ConfigurationError(
                f"segments must be sorted, disjoint and within "
                f"[0, {n_instances}), got {list(segments)}"
            )
        prev = stop
        out.append((int(start), int(stop)))
    return out


def run_sharded_instances(
    worker: Callable[[int, int], np.ndarray],
    n_rows: int,
    n_instances: int,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    collect_extras: bool = False,
    segments: Sequence[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
    on_chunk: Callable[[int, np.ndarray], None] | None = None,
):
    """Shard ``worker`` over the instance range; assemble the result matrix.

    ``worker(start, stop)`` must return a float64 block of shape
    ``(n_rows, stop - start)`` for instances ``start..stop-1``, derive
    all randomness from the instance index alone, and be picklable (a
    module-level function, possibly wrapped in ``functools.partial``).
    Blocks are written back at their instance indices, so for any
    worker count and chunking the assembled ``(n_rows, n_instances)``
    matrix is bit-for-bit the serial one.  Both the paired-comparison
    sweep and the robustness sweep are built on this primitive.

    ``segments`` restricts computation to sorted, disjoint
    ``(start, stop)`` ranges — the cache-miss portion of a sweep;
    columns outside them are taken from ``out``, which the caller must
    then supply prefilled.  The default chunk size is derived from the
    *remaining* (in-segment) instance count, and every chunk holds at
    least one instance, so a mostly-cached sweep never plans more
    chunks (or pool workers) than it has instances left to compute.

    ``on_chunk(start, block)`` runs in the parent as each chunk's
    result lands (completion order under a pool) — the persistence
    hook that makes interrupted sweeps resumable.  When set, a serial
    run is also split into chunks (``_SERIAL_WRITEBACK_CHUNKS`` by
    default) instead of one monolithic call, bounding how much work an
    interruption can lose.

    With ``collect_extras`` the worker must return ``(block, extra)``
    and the call returns ``(matrix, extras)`` where ``extras`` holds
    each chunk's ``extra`` ordered by chunk start index — a
    deterministic order regardless of completion order, so merging
    order-sensitive aggregates (telemetry snapshots) stays stable.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if segments is None:
        segments = [(0, n_instances)]
    else:
        if out is None:
            raise ConfigurationError(
                "segments requires a prefilled `out` matrix for the "
                "columns it skips"
            )
        segments = _check_segments(segments, n_instances)
    workers = resolve_workers(n_workers)
    remaining = sum(stop - start for start, stop in segments)

    if out is None:
        out = np.empty((n_rows, n_instances), dtype=np.float64)
    if remaining == 0:
        return (out, []) if collect_extras else out

    if workers == 1 or remaining == 1:
        size = chunk_size
        if size is None:
            if on_chunk is not None:
                size = max(1, -(-remaining // _SERIAL_WRITEBACK_CHUNKS))
            else:
                size = max(stop - start for start, stop in segments)
        extras: list[object] = []
        for start, stop in plan_chunks(segments, size):
            result = worker(start, stop)
            if collect_extras:
                block, extra = result
                extras.append(extra)
            else:
                block = result
            out[:, start:stop] = block
            if on_chunk is not None:
                on_chunk(start, block)
        return (out, extras) if collect_extras else out

    if chunk_size is None:
        chunk_size = max(1, -(-remaining // (workers * _CHUNKS_PER_WORKER)))
    bounds = plan_chunks(segments, chunk_size)
    workers = min(workers, len(bounds))

    extras_by_start: dict[int, object] = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        pending = {
            pool.submit(worker, start, stop): start for start, stop in bounds
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                start = pending.pop(future)
                result = future.result()
                if collect_extras:
                    block, extra = result
                    extras_by_start[start] = extra
                else:
                    block = result
                out[:, start : start + block.shape[1]] = block
                if on_chunk is not None:
                    on_chunk(start, block)
    except BaseException:
        # KeyboardInterrupt or a failed chunk: don't block on (or leak)
        # the surviving workers — cancel what never started, kill what
        # did, and let the failure propagate.  Completed chunks were
        # already persisted through ``on_chunk``, so an interrupted
        # cached sweep still resumes from them.
        terminate_pool(pool)
        raise
    else:
        pool.shutdown(wait=True)
    if collect_extras:
        return out, [extras_by_start[s] for s in sorted(extras_by_start)]
    return out


def run_comparison_parallel(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    n_instances: int,
    seed: int,
    preemptive: bool = False,
    quantum: float = 1.0,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    telemetry: Telemetry | None = None,
    engine: str | None = None,
) -> list[SeriesStats]:
    """Parallel :func:`~repro.experiments.runner.run_comparison`.

    Bit-for-bit identical to the serial path for any ``n_workers`` and
    ``chunk_size``; see the module docstring for why.  Falls back to
    the serial loop when one worker (or one instance) makes a pool
    pointless.

    When ``engine`` (or ``REPRO_ENGINE``) selects the batch engine and
    the sweep is non-preemptive, the whole miss segment is simulated
    in-process by the vectorized lockstep engine — no process pool is
    created at all: forking workers to each run a slice of a grid the
    batch engine handles in one engine would cost more in process
    startup and per-worker offline-cache warmup than it could save.

    With ``telemetry`` enabled each chunk profiles under its own
    :class:`~repro.obs.telemetry.Telemetry` and the snapshots are
    merged into the caller's, in chunk order.  Counter totals are
    therefore identical for every worker count; timer totals reflect
    the actual wall clock spent, which naturally varies with chunking.

    The result cache (:mod:`repro.resultcache`) is consulted before
    any dispatch: cached instances are filled into the ratio matrix up
    front and only the misses are sharded, so hits never occupy a pool
    slot and an all-hit sweep never forks at all.  Each chunk's
    columns are persisted as it completes.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    workers = resolve_workers(n_workers)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")

    from repro.experiments.runner import resolve_engine, run_comparison

    if resolve_engine(engine) == "batch" and not preemptive:
        # The batch engine simulates the whole miss grid in-process;
        # never build a pool for it.
        return run_comparison(
            spec, algorithms, n_instances, seed,
            preemptive=preemptive, quantum=quantum, n_workers=1,
            telemetry=telemetry, engine="batch",
        )

    if workers == 1 or n_instances == 1:
        return run_comparison(
            spec, algorithms, n_instances, seed,
            preemptive=preemptive, quantum=quantum, n_workers=1,
            telemetry=telemetry, engine="scalar",
        )

    algorithms = tuple(algorithms)
    profile = telemetry is not None and telemetry.enabled
    cache = open_sweep_cache(
        comparison_fingerprint(spec, algorithms, seed, preemptive, quantum),
        len(algorithms),
        telemetry=telemetry,
    )
    segments = out = on_chunk = None
    if cache is not None:
        out = np.empty((len(algorithms), n_instances), dtype=np.float64)
        misses = cache.fill_hits(out)
        if not misses:
            return _stats_from_ratios(algorithms, out, preemptive)
        segments = segments_of(misses)
        on_chunk = cache.write_chunk
    result = run_sharded_instances(
        partial(_ratio_chunk, spec, algorithms, seed, preemptive, quantum, profile),
        len(algorithms),
        n_instances,
        n_workers=workers,
        chunk_size=chunk_size,
        collect_extras=profile,
        segments=segments,
        out=out,
        on_chunk=on_chunk,
    )
    if profile:
        ratios, snapshots = result
        for snap in snapshots:
            telemetry.merge_snapshot(snap)
    else:
        ratios = result
    return _stats_from_ratios(algorithms, ratios, preemptive)
