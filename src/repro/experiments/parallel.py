"""Process-parallel paired-comparison sweeps.

:func:`run_comparison_parallel` shards the instance loop of
:func:`repro.experiments.runner.run_comparison` across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is
structural, not incidental:

* instance ``i`` derives **all** of its randomness from
  ``SeedSequence([seed, i])`` — nothing depends on which worker runs
  it, what ran before it in that worker, or how instances are chunked;
* every chunk's ratio block is written back at its instance indices,
  so completion order cannot reorder anything;
* the summary statistics are computed once, on the fully assembled
  ``(n_algorithms, n_instances)`` matrix, by the exact code the serial
  path uses.

Hence the results are **bit-for-bit identical** to the serial path for
every worker count and chunk size (asserted by
``tests/experiments/test_parallel.py``).

Worker selection: an explicit ``n_workers`` argument wins; otherwise
the ``REPRO_WORKERS`` environment variable (an integer, or ``auto``
for the CPU count); otherwise serial.  The offline-info cache
(:mod:`repro.core.cache`) is per process — each worker warms its own,
which costs one pass per (job, quantity) per worker and nothing more.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    SeriesStats,
    _instance_ratios,
    _stats_from_ratios,
)
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import make_scheduler
from repro.workloads.params import WorkloadSpec

__all__ = ["resolve_workers", "run_comparison_parallel", "run_sharded_instances"]

#: Chunks per worker the instance range is split into (smaller chunks
#: balance load across heterogeneous instance costs; larger chunks
#: amortize per-task dispatch overhead).
_CHUNKS_PER_WORKER = 4


def resolve_workers(n_workers: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``.

    ``REPRO_WORKERS`` accepts a positive integer or ``auto`` (the CPU
    count); unset or empty means serial (1).
    """
    if n_workers is not None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        return int(n_workers)
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def _ratio_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    seed: int,
    preemptive: bool,
    quantum: float,
    profile: bool,
    start: int,
    stop: int,
):
    """Sweep worker: completion-time ratios for instances ``start..stop-1``.

    Constructs its own schedulers (scheduler instances are reusable
    across instances but not picklable in general) and returns the
    ``(n_algorithms, stop - start)`` ratio block.  With ``profile``
    the chunk runs under a fresh local
    :class:`~repro.obs.telemetry.Telemetry` and returns
    ``(block, snapshot_dict)`` for the parent to merge.
    """
    schedulers = [make_scheduler(name) for name in algorithms]
    telemetry = Telemetry() if profile else None
    block = np.empty((len(algorithms), stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        _instance_ratios(
            spec, schedulers, i, seed, preemptive, quantum, block[:, j],
            telemetry=telemetry,
        )
    if telemetry is not None:
        return block, telemetry.snapshot().to_dict()
    return block


def _run_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    start: int,
    stop: int,
    seed: int,
    preemptive: bool,
    quantum: float,
) -> tuple[int, np.ndarray]:
    """Ratio chunk tagged with its start index (kept for direct callers)."""
    return start, _ratio_chunk(
        spec, algorithms, seed, preemptive, quantum, False, start, stop
    )


def _chunk_bounds(n_instances: int, chunk_size: int) -> list[tuple[int, int]]:
    return [
        (s, min(s + chunk_size, n_instances))
        for s in range(0, n_instances, chunk_size)
    ]


def run_sharded_instances(
    worker: Callable[[int, int], np.ndarray],
    n_rows: int,
    n_instances: int,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    collect_extras: bool = False,
):
    """Shard ``worker`` over the instance range; assemble the result matrix.

    ``worker(start, stop)`` must return a float64 block of shape
    ``(n_rows, stop - start)`` for instances ``start..stop-1``, derive
    all randomness from the instance index alone, and be picklable (a
    module-level function, possibly wrapped in ``functools.partial``).
    Blocks are written back at their instance indices, so for any
    worker count and chunking the assembled ``(n_rows, n_instances)``
    matrix is bit-for-bit the serial one.  Both the paired-comparison
    sweep and the robustness sweep are built on this primitive.

    With ``collect_extras`` the worker must return ``(block, extra)``
    and the call returns ``(matrix, extras)`` where ``extras`` holds
    each chunk's ``extra`` ordered by chunk start index — a
    deterministic order regardless of completion order, so merging
    order-sensitive aggregates (telemetry snapshots) stays stable.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    workers = resolve_workers(n_workers)

    out = np.empty((n_rows, n_instances), dtype=np.float64)
    if workers == 1 or n_instances == 1:
        result = worker(0, n_instances)
        if collect_extras:
            block, extra = result
            out[:, :] = block
            return out, [extra]
        out[:, :] = result
        return out

    if chunk_size is None:
        chunk_size = max(1, -(-n_instances // (workers * _CHUNKS_PER_WORKER)))
    bounds = _chunk_bounds(n_instances, chunk_size)
    workers = min(workers, len(bounds))

    extras_by_start: dict[int, object] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {
            pool.submit(worker, start, stop): start for start, stop in bounds
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                start = pending.pop(future)
                result = future.result()
                if collect_extras:
                    block, extra = result
                    extras_by_start[start] = extra
                else:
                    block = result
                out[:, start : start + block.shape[1]] = block
    if collect_extras:
        return out, [extras_by_start[s] for s in sorted(extras_by_start)]
    return out


def run_comparison_parallel(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    n_instances: int,
    seed: int,
    preemptive: bool = False,
    quantum: float = 1.0,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[SeriesStats]:
    """Parallel :func:`~repro.experiments.runner.run_comparison`.

    Bit-for-bit identical to the serial path for any ``n_workers`` and
    ``chunk_size``; see the module docstring for why.  Falls back to
    the serial loop when one worker (or one instance) makes a pool
    pointless.

    With ``telemetry`` enabled each chunk profiles under its own
    :class:`~repro.obs.telemetry.Telemetry` and the snapshots are
    merged into the caller's, in chunk order.  Counter totals are
    therefore identical for every worker count; timer totals reflect
    the actual wall clock spent, which naturally varies with chunking.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    workers = resolve_workers(n_workers)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")

    if workers == 1 or n_instances == 1:
        from repro.experiments.runner import run_comparison

        return run_comparison(
            spec, algorithms, n_instances, seed,
            preemptive=preemptive, quantum=quantum, n_workers=1,
            telemetry=telemetry,
        )

    algorithms = tuple(algorithms)
    profile = telemetry is not None and telemetry.enabled
    result = run_sharded_instances(
        partial(_ratio_chunk, spec, algorithms, seed, preemptive, quantum, profile),
        len(algorithms),
        n_instances,
        n_workers=workers,
        chunk_size=chunk_size,
        collect_extras=profile,
    )
    if profile:
        ratios, snapshots = result
        for snap in snapshots:
            telemetry.merge_snapshot(snap)
    else:
        ratios = result
    return _stats_from_ratios(algorithms, ratios, preemptive)
