"""Job-stream experiment: the four stream policies under two loads.

The paper's motivating system (Cosmos) serves a *stream* of jobs, not
one job at a time; :mod:`repro.multijob` models that, but until this
experiment it had no registry entry point.  ``repro run stream``
compares every policy in
:data:`~repro.multijob.schedulers.STREAM_POLICIES` on shared sampled
streams — a paired design, like every other sweep here — at a light
and a heavy offered load, reporting mean flow time (the stream
objective) and stream makespan.

Sharding follows the house determinism rule: stream instance ``i``
derives all of its randomness from ``SeedSequence([seed, load_index,
i])``, so :func:`run_stream` routes through
:func:`repro.experiments.parallel.run_sharded_instances` and is
bit-for-bit identical for every worker count (asserted by
``tests/experiments/test_stream.py``).  Stream results are not part of
the persistent result cache — its fingerprint schema covers the
single-job comparison and robustness sweeps only.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.multijob.arrival import poisson_stream
from repro.multijob.engine import simulate_stream
from repro.multijob.schedulers import STREAM_POLICIES, make_stream_scheduler
from repro.obs.telemetry import Telemetry
from repro.workloads.generator import sample_system
from repro.workloads.params import IRParams, WorkloadSpec

__all__ = ["run_stream", "STREAM_SPEC", "STREAM_LOADS"]

#: The workload cell of the stream study: medium layered IR jobs, kept
#: slightly smaller than the paper's cell so the default run is quick.
STREAM_SPEC = WorkloadSpec(
    "ir", "layered", "medium",
    params=IRParams(
        iterations_range=(4, 6), maps_range=(20, 40), reduces_range=(6, 10)
    ),
)

#: (label, mean interarrival gap) of the two offered-load levels.
STREAM_LOADS: tuple[tuple[str, float], ...] = (
    ("light load", 80.0),
    ("heavy load", 20.0),
)

#: Jobs per sampled stream.
STREAM_JOBS = 10

_POLICIES = tuple(STREAM_POLICIES)


def _stream_metrics_chunk(
    spec: WorkloadSpec,
    policies: tuple[str, ...],
    n_jobs: int,
    gap: float,
    seed: int,
    load_index: int,
    start: int,
    stop: int,
) -> np.ndarray:
    """Sweep worker: ``(2 * n_policies, stop - start)`` metric block.

    Rows are ``[flow_time(p0), makespan(p0), flow_time(p1), ...]``.
    Stream ``i`` (and its sampled system) derive all randomness from
    ``SeedSequence([seed, load_index, i])``, making this the shardable
    unit of the study.
    """
    block = np.empty((2 * len(policies), stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, load_index, i])
        )
        system = sample_system(spec, rng)
        stream = poisson_stream(spec, n_jobs, gap, rng)
        for p, name in enumerate(policies):
            result = simulate_stream(stream, system, make_stream_scheduler(name))
            block[2 * p, j] = result.mean_flow_time
            block[2 * p + 1, j] = result.makespan
    return block


def run_stream(
    n_instances: int | None = None,
    seed: int = 2018,
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Stream policies under light/heavy load (mean flow time, makespan).

    ``telemetry`` only times the sweep as a whole (``phase.stream_sweep``)
    — per-round stream-engine instrumentation is available through
    :func:`repro.multijob.engine.simulate_stream` directly.
    """
    from repro.experiments.parallel import run_sharded_instances

    n = n_instances or 10
    obs = telemetry if (telemetry is not None and telemetry.enabled) else None
    panels = []
    for load_index, (label, gap) in enumerate(STREAM_LOADS):
        worker = partial(
            _stream_metrics_chunk,
            STREAM_SPEC, _POLICIES, STREAM_JOBS, gap, seed, load_index,
        )
        if obs is None:
            metrics = run_sharded_instances(
                worker, 2 * len(_POLICIES), n, n_workers=n_workers
            )
        else:
            with obs.timer("phase.stream_sweep"):
                metrics = run_sharded_instances(
                    worker, 2 * len(_POLICIES), n, n_workers=n_workers
                )
            obs.inc("sweep.streams", n)
        series = []
        for p, name in enumerate(_POLICIES):
            flow = metrics[2 * p]
            mksp = metrics[2 * p + 1]
            std = float(flow.std(ddof=1)) if n > 1 else 0.0
            series.append(
                {
                    "key": name,
                    "mean": float(flow.mean()),   # mean flow time
                    "max": float(mksp.mean()),    # mean stream makespan
                    "std": std,
                    "stderr": std / float(np.sqrt(n)),
                    "n": n,
                }
            )
        panels.append(
            {
                "name": label.replace(" ", "-"),
                "label": f"{label} (gap {gap:g})",
                "series": series,
            }
        )
    return {
        "figure": "stream",
        "title": (
            "Stream policies on Poisson job arrivals "
            "(mean = flow time, max col = stream makespan)"
        ),
        "kind": "bars",
        "metric": "mean+max",
        "panels": panels,
        "config": {
            "n_instances": n,
            "seed": seed,
            "n_jobs": STREAM_JOBS,
            "loads": {label: gap for label, gap in STREAM_LOADS},
        },
    }
