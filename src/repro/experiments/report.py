"""ASCII rendering of experiment result dicts.

The paper's figures are bar charts and line plots; in a terminal we
render bars as tables (one row per algorithm) and line plots as
(x, series...) tables — everything needed to compare shapes against
the paper.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["render_result", "render_markdown", "render_bar_chart"]


def _fmt(value, width: int = 8) -> str:
    if isinstance(value, float):
        return f"{value:{width}.3f}"
    return f"{value!s:>{width}}"


def _table(columns: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(c)), *(len(_fmt(r[i]).strip()) for r in rows)) if rows else len(str(c))
        for i, c in enumerate(columns)
    ]
    head = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(_fmt(cell, w).strip().rjust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join([head, sep, *body])


def _render_bars(result: dict) -> str:
    chunks = []
    show_max = result.get("metric") == "mean+max"
    for panel in result["panels"]:
        columns = ["algorithm", "mean ratio", "stderr"]
        if show_max:
            columns.insert(2, "max ratio")
        rows = []
        for s in panel["series"]:
            row = [s["key"], round(s["mean"], 3)]
            if show_max:
                row.append(round(s["max"], 3))
            row.append(round(s["stderr"], 4))
            rows.append(row)
        chunks.append(f"{panel['label']}\n{_table(columns, rows)}")
    return "\n\n".join(chunks)


def _render_lines(result: dict) -> str:
    chunks = []
    for panel in result["panels"]:
        keys = list(panel["series"])
        columns = [panel.get("x_label", "x"), *keys]
        rows = [
            [x, *(round(panel["series"][k][i], 3) for k in keys)]
            for i, x in enumerate(panel["x"])
        ]
        chunks.append(f"{panel['label']}\n{_table(columns, rows)}")
    return "\n\n".join(chunks)


def render_result(result: dict) -> str:
    """Render one experiment result dict as an ASCII report."""
    header = (
        f"== {result['figure']}: {result['title']} ==\n"
        f"config: {result.get('config', {})}"
    )
    kind = result.get("kind")
    if kind == "bars":
        body = _render_bars(result)
    elif kind == "lines":
        body = _render_lines(result)
    elif kind == "table":
        body = _table(result["columns"], result["rows"])
    else:
        raise ConfigurationError(f"unknown result kind {kind!r}")
    return f"{header}\n\n{body}\n"


def render_bar_chart(result: dict, width: int = 48) -> str:
    """Horizontal ASCII bar chart of a ``bars`` result — the closest a
    terminal gets to the paper's figures.

    Bars are scaled per chart across all panels (shared axis, like the
    paper), labelled with their mean values.
    """
    if result.get("kind") != "bars":
        raise ConfigurationError("render_bar_chart needs a 'bars' result")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    peak = max(
        s["mean"] for panel in result["panels"] for s in panel["series"]
    )
    if peak <= 0:
        raise ConfigurationError("nothing to draw: all means are <= 0")
    key_w = max(
        len(s["key"]) for panel in result["panels"] for s in panel["series"]
    )
    chunks = [f"{result['figure']}: {result['title']}"]
    for panel in result["panels"]:
        lines = [panel["label"]]
        for s in panel["series"]:
            n_blocks = int(round(s["mean"] / peak * width))
            lines.append(
                f"  {s['key']:{key_w}s} |{'#' * n_blocks:{width}s}| "
                f"{s['mean']:.3f}"
            )
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"


def _md_table(columns: list, rows: list[list]) -> str:
    head = "| " + " | ".join(str(c) for c in columns) + " |"
    sep = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_fmt(cell).strip() for cell in row) + " |"
        for row in rows
    ]
    return "\n".join([head, sep, *body])


def render_markdown(result: dict) -> str:
    """Render one experiment result dict as GitHub-flavoured markdown.

    Used to regenerate the tables embedded in EXPERIMENTS.md from saved
    JSON results.
    """
    parts = [f"### {result['figure']} — {result['title']}", ""]
    kind = result.get("kind")
    if kind == "bars":
        show_max = result.get("metric") == "mean+max"
        for panel in result["panels"]:
            columns = ["algorithm", "mean ratio"]
            if show_max:
                columns.append("max ratio")
            columns.append("stderr")
            rows = []
            for s in panel["series"]:
                row = [s["key"], round(s["mean"], 3)]
                if show_max:
                    row.append(round(s["max"], 3))
                row.append(round(s["stderr"], 4))
                rows.append(row)
            parts += [f"**{panel['label']}**", "", _md_table(columns, rows), ""]
    elif kind == "lines":
        for panel in result["panels"]:
            keys = list(panel["series"])
            columns = [panel.get("x_label", "x"), *keys]
            rows = [
                [x, *(round(panel["series"][k][i], 3) for k in keys)]
                for i, x in enumerate(panel["x"])
            ]
            parts += [f"**{panel['label']}**", "", _md_table(columns, rows), ""]
    elif kind == "table":
        parts += [_md_table(result["columns"], result["rows"]), ""]
    else:
        raise ConfigurationError(f"unknown result kind {kind!r}")
    return "\n".join(parts)
