"""Robustness experiment: scheduler performance under processor failures.

Sweeps failure rate × workload cell for all six paper schedulers
(KGreedy, LSpan, DType, MaxDP, ShiftBT, MQB) through the fault-aware
engine, measuring how gracefully each policy degrades as per-type
capacity fluctuates — the regime the paper's fixed-``P_alpha``
analysis leaves open.

**Failure intensity** is expressed relative to the instance's lower
bound ``L(J)``: a rate of ``r`` means every processor fails on average
``r`` times per ``L(J)`` of schedule time (exponential MTBF
``L(J)/r``), and repairs take ``mttr_factor * L(J)`` on average.
Normalizing by ``L(J)`` keeps the expected number of failures per run
comparable across small and medium cells, so one sweep grid covers
both.

**Design** mirrors :mod:`repro.experiments.runner`: instance ``i``
derives all of its randomness from ``SeedSequence([seed, i])`` (and
its fault timelines from ``SeedSequence([fault_seed, i, rate_index])``,
shared by every scheduler — a paired design), so the sweep shards over
:func:`repro.experiments.parallel.run_sharded_instances` with results
bit-for-bit identical for any worker count.  The λ=0 column is the
fault-free run itself: the engines are bit-identical there (asserted
by ``tests/faults/test_engine_equivalence.py``), so inflation is
exactly 1.0 by construction.

Per (scheduler, rate) the sweep records three metrics, averaged over
instances:

* ``inflation`` — makespan / fault-free makespan of the same
  (job, system, scheduler);
* ``wasted`` — killed work as a fraction of the job's total work
  (0 under the checkpoint policy);
* ``kills`` — segments killed per run.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.properties import lower_bound
from repro.core.properties import total_work
from repro.errors import ConfigurationError
from repro.faults.engine import simulate_with_faults
from repro.faults.models import ExponentialFaults
from repro.obs.telemetry import Telemetry
from repro.schedulers.registry import PAPER_ALGORITHMS, make_scheduler
from repro.sim.engine import simulate
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance
from repro.workloads.params import WorkloadSpec

__all__ = ["run_robustness", "run_robustness_comparison", "FAILURE_RATES"]

#: Default sweep grid: expected failures per processor per L(J).
FAILURE_RATES: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)

#: Default mean repair time, as a fraction of L(J).
DEFAULT_MTTR_FACTOR = 0.25

#: Fault timelines cover [0, horizon_factor * L(J)); runs that outlast
#: the horizon simply see no further failures.
DEFAULT_HORIZON_FACTOR = 12.0

#: Workload cells of the robustness sweep (the paper's layered panels).
ROBUSTNESS_CELLS = [
    ("small-layered-ep", "(a) Small Layered EP"),
    ("medium-layered-tree", "(b) Medium Layered Tree"),
    ("medium-layered-ir", "(c) Medium Layered IR"),
]

_METRICS = ("inflation", "wasted", "kills")


def _robustness_chunk(
    spec: WorkloadSpec,
    algorithms: tuple[str, ...],
    rates: tuple[float, ...],
    seed: int,
    fault_seed: int,
    mttr_factor: float,
    horizon_factor: float,
    policy: str,
    profile: bool,
    start: int,
    stop: int,
):
    """Sweep worker: robustness metrics for instances ``start..stop-1``.

    Returns a ``(n_algorithms * n_rates * 3, stop - start)`` block;
    row layout is ``(a * n_rates + r) * 3 + m`` over the
    ``(inflation, wasted, kills)`` metrics.  With ``profile`` the block
    is paired with a telemetry snapshot dict for the parent to merge.
    """
    schedulers = [make_scheduler(name) for name in algorithms]
    telemetry = Telemetry() if profile else None
    n_rows = len(algorithms) * len(rates) * len(_METRICS)
    block = np.empty((n_rows, stop - start), dtype=np.float64)
    for j, i in enumerate(range(start, stop)):
        ss = np.random.SeedSequence([seed, i])
        inst_rng, *alg_seeds = ss.spawn(1 + len(algorithms))
        job, system = sample_instance(spec, np.random.default_rng(inst_rng))
        bound = lower_bound(job, system.as_array())
        work = total_work(job)

        fault_free = [
            simulate(
                job, system, sched, rng=np.random.default_rng(alg_seeds[a]),
                telemetry=telemetry,
            )
            for a, sched in enumerate(schedulers)
        ]
        for ri, rate in enumerate(rates):
            if rate == 0.0:
                # λ=0 control: the fault-aware engine is bit-identical
                # to the fault-free one, so the metrics are exact.
                for a in range(len(algorithms)):
                    base = (a * len(rates) + ri) * 3
                    block[base : base + 3, j] = (1.0, 0.0, 0.0)
                continue
            model = ExponentialFaults(
                mtbf=bound / rate, mttr=mttr_factor * bound
            )
            timeline = model.sample(
                system,
                horizon_factor * bound,
                np.random.default_rng(np.random.SeedSequence([fault_seed, i, ri])),
            )
            for a, sched in enumerate(schedulers):
                res = simulate_with_faults(
                    job,
                    system,
                    sched,
                    timeline,
                    policy=policy,
                    rng=np.random.default_rng(alg_seeds[a]),
                    telemetry=telemetry,
                )
                base = (a * len(rates) + ri) * 3
                block[base, j] = res.makespan / fault_free[a].makespan
                block[base + 1, j] = res.wasted_work / work
                block[base + 2, j] = float(res.kills)
    if telemetry is not None:
        return block, telemetry.snapshot().to_dict()
    return block


def run_robustness_comparison(
    spec: WorkloadSpec,
    algorithms: Sequence[str],
    rates: Sequence[float],
    n_instances: int,
    seed: int,
    fault_seed: int | None = None,
    mttr_factor: float = DEFAULT_MTTR_FACTOR,
    horizon_factor: float = DEFAULT_HORIZON_FACTOR,
    policy: str = "restart",
    n_workers: int | None = None,
    telemetry: Telemetry | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Mean robustness metrics for one cell over shared instances.

    Returns ``{metric: {algorithm: [mean per rate]}}`` for the metrics
    ``inflation``, ``wasted`` and ``kills``.  Results are identical for
    every ``n_workers`` — with or without ``telemetry``, which profiles
    per chunk and merges snapshots as in
    :func:`repro.experiments.parallel.run_comparison_parallel`.

    Per-instance metric columns are memoized by
    :mod:`repro.resultcache` under the full sweep fingerprint (cell,
    algorithms, rate grid, both seeds, repair/horizon factors,
    recovery policy): only cache-miss instances are sharded to
    workers, and completed chunks persist as they land, so an
    interrupted robustness sweep resumes instead of starting over.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    for rate in rates:
        if rate < 0 or not math.isfinite(rate):
            raise ConfigurationError(f"failure rates must be finite and >= 0, got {rate}")
    if mttr_factor <= 0:
        raise ConfigurationError(f"mttr_factor must be > 0, got {mttr_factor}")
    if horizon_factor <= 0:
        raise ConfigurationError(f"horizon_factor must be > 0, got {horizon_factor}")

    from repro.experiments.parallel import run_sharded_instances
    from repro.resultcache.integrate import open_sweep_cache, segments_of
    from repro.resultcache.keys import robustness_fingerprint

    algorithms = tuple(algorithms)
    rates = tuple(float(r) for r in rates)
    effective_fault_seed = seed if fault_seed is None else fault_seed
    n_rows = len(algorithms) * len(rates) * len(_METRICS)
    profile = telemetry is not None and telemetry.enabled
    cache = open_sweep_cache(
        robustness_fingerprint(
            spec, algorithms, rates, seed, effective_fault_seed,
            mttr_factor, horizon_factor, policy,
        ),
        n_rows,
        telemetry=telemetry,
    )
    segments = out = on_chunk = None
    matrix = None
    if cache is not None:
        out = np.empty((n_rows, n_instances), dtype=np.float64)
        misses = cache.fill_hits(out)
        if not misses:
            matrix = out
        else:
            segments = segments_of(misses)
            on_chunk = cache.write_chunk
    if matrix is None:
        result = run_sharded_instances(
            partial(
                _robustness_chunk,
                spec,
                algorithms,
                rates,
                seed,
                effective_fault_seed,
                mttr_factor,
                horizon_factor,
                policy,
                profile,
            ),
            n_rows,
            n_instances,
            n_workers=n_workers,
            collect_extras=profile,
            segments=segments,
            out=out,
            on_chunk=on_chunk,
        )
        if profile:
            matrix, snapshots = result
            for snap in snapshots:
                telemetry.merge_snapshot(snap)
        else:
            matrix = result
    means = matrix.mean(axis=1)
    out: dict[str, dict[str, list[float]]] = {m: {} for m in _METRICS}
    for a, name in enumerate(algorithms):
        for m_i, metric in enumerate(_METRICS):
            out[metric][name] = [
                float(means[(a * len(rates) + ri) * 3 + m_i])
                for ri in range(len(rates))
            ]
    return out


def run_robustness(
    n_instances: int | None = None,
    seed: int = 2018,
    n_workers: int | None = None,
    mtbf: float | None = None,
    mttr: float | None = None,
    fault_seed: int | None = None,
    policy: str = "restart",
    telemetry: Telemetry | None = None,
) -> dict:
    """Robustness: makespan inflation under failures, per failure rate.

    ``mtbf``/``mttr`` are expressed in units of the instance lower
    bound ``L(J)``; an explicit ``mtbf`` replaces the default rate grid
    with the single sweep point ``{0, 1/mtbf}`` and ``mttr`` overrides
    the repair-time factor.  ``fault_seed`` decouples the failure
    timelines from the workload sampling seed.
    """
    n = n_instances or 40
    if mtbf is not None:
        if mtbf <= 0:
            raise ConfigurationError(f"mtbf must be > 0, got {mtbf}")
        rates: tuple[float, ...] = (0.0, 1.0 / mtbf)
    else:
        rates = FAILURE_RATES
    mttr_factor = DEFAULT_MTTR_FACTOR if mttr is None else mttr

    panels = []
    for cell, label in ROBUSTNESS_CELLS:
        metrics = run_robustness_comparison(
            WORKLOAD_CELLS[cell],
            PAPER_ALGORITHMS,
            rates,
            n,
            seed,
            fault_seed=fault_seed,
            mttr_factor=mttr_factor,
            policy=policy,
            n_workers=n_workers,
            telemetry=telemetry,
        )
        panels.append(
            {
                "name": cell,
                "label": label,
                "x_label": "failures per processor per L(J)",
                "x": list(rates),
                "series": metrics["inflation"],
                "wasted": metrics["wasted"],
                "kills": metrics["kills"],
            }
        )
    return {
        "figure": "robustness",
        "title": (
            "Makespan inflation under processor failures "
            f"({policy} recovery; mean T_faulty / T_fault-free)"
        ),
        "kind": "lines",
        "metric": "mean",
        "panels": panels,
        "config": {
            "n_instances": n,
            "seed": seed,
            "fault_seed": seed if fault_seed is None else fault_seed,
            "rates": list(rates),
            "mttr_factor": mttr_factor,
            "horizon_factor": DEFAULT_HORIZON_FACTOR,
            "policy": policy,
        },
    }
