"""Experiment harness: regenerate every figure of the paper's evaluation.

Each figure of Section V maps to a function in
:mod:`repro.experiments.figures` returning a JSON-serializable result
dict; :mod:`repro.experiments.report` renders those dicts as ASCII
tables, and :mod:`repro.experiments.store` persists them.  The CLI
(``python -m repro.cli``) wires it together.

Seeding: every (figure, panel, condition, instance) gets its own
``numpy.random.SeedSequence``-derived generator, and all algorithms of
a comparison see the *same* job/system instances (paired design), so
results are exactly reproducible and algorithm differences are not
sampling noise.
"""

from repro.experiments.figures import (
    EXPERIMENTS,
    run_experiment,
)
from repro.experiments.runner import run_comparison
from repro.experiments.parallel import resolve_workers, run_comparison_parallel
from repro.experiments.report import render_result
from repro.experiments.store import load_result, save_result

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "run_comparison",
    "run_comparison_parallel",
    "resolve_workers",
    "render_result",
    "save_result",
    "load_result",
]
