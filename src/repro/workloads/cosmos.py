"""Cosmos/Scope-style stage-graph workloads (the paper's motivation).

Section I motivates K-DAG scheduling with Cosmos, Microsoft's map-
reduce style analytics platform: the Scope compiler turns a query into
a workflow DAG of ~20 *stages*, each stage a set of data-parallel
tasks, and servers cluster into classes by data placement — so the
server classes act as functional types.

This generator synthesizes such workflows:

* a random stage DAG (series-parallel-ish: each new stage reads 1-3
  earlier stages, biased toward recent ones, like query plans);
* per-stage parallelism (task count) log-uniform between bounds —
  extract stages wide, aggregation stages narrow;
* task-level wiring between dependent stages is either *partitioned*
  (task i reads the tasks with overlapping hash ranges — a few parents)
  or *shuffling* (each task reads a random sample of the upstream
  stage), chosen per edge;
* each stage is pinned to one server class: the class hosting its data
  (random per stage) — this is the "layered" structure; a ``random``
  variant types every task independently for the unstructured control.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError
from repro.workloads.params import CosmosParams

__all__ = ["CosmosParams", "generate_cosmos"]


def _stage_width(params: CosmosParams, rng: np.random.Generator) -> int:
    lo, hi = params.stage_width_range
    # Log-uniform: many narrow stages, occasional very wide extracts.
    return int(round(np.exp(rng.uniform(np.log(lo), np.log(hi)))))


def _wire_partitioned(
    up: list[int], down: list[int], edges: list[tuple[int, int]]
) -> None:
    """Range-partitioned read: downstream task i reads the upstream
    tasks whose hash range overlaps its own (1-2 parents typically)."""
    nu, nd = len(up), len(down)
    for i, d in enumerate(down):
        lo = int(np.floor(i * nu / nd))
        hi = int(np.ceil((i + 1) * nu / nd))
        for j in range(lo, max(hi, lo + 1)):
            edges.append((up[min(j, nu - 1)], d))


def _wire_shuffle(
    up: list[int],
    down: list[int],
    fanin: int,
    edges: list[tuple[int, int]],
    rng: np.random.Generator,
) -> None:
    """Shuffling read: each downstream task samples ``fanin`` upstream
    tasks (network shuffle), and every upstream task feeds someone."""
    nu = len(up)
    fed = np.zeros(nu, dtype=bool)
    for d in down:
        k = min(fanin, nu)
        parents = rng.choice(nu, size=k, replace=False)
        for j in parents:
            edges.append((up[int(j)], d))
            fed[int(j)] = True
    for j in np.flatnonzero(~fed):
        edges.append((up[int(j)], down[int(rng.integers(0, len(down)))]))


def generate_cosmos(
    params: CosmosParams,
    num_types: int,
    structure: str,
    rng: np.random.Generator,
) -> KDag:
    """Sample one Scope-style workflow (see module docstring)."""
    if structure not in ("layered", "random"):
        raise ConfigurationError(f"unknown structure {structure!r}")
    n_stages = int(
        rng.integers(params.stages_range[0], params.stages_range[1] + 1)
    )
    types: list[int] = []
    edges: list[tuple[int, int]] = []
    stage_tasks: list[list[int]] = []

    for s in range(n_stages):
        width = _stage_width(params, rng)
        stage_type = int(rng.integers(0, num_types))
        tasks = []
        for _ in range(width):
            tid = len(types)
            if structure == "layered":
                types.append(stage_type)
            else:
                types.append(int(rng.integers(0, num_types)))
            tasks.append(tid)
        # Pick upstream stages: biased toward recent stages, like the
        # mostly-chain-shaped plans Scope emits.
        if s > 0:
            n_parents = int(rng.integers(1, min(params.max_stage_parents, s) + 1))
            weights = np.arange(1, s + 1, dtype=np.float64) ** 2
            weights /= weights.sum()
            parents = rng.choice(s, size=n_parents, replace=False, p=weights)
            for p in parents:
                if rng.random() < params.shuffle_prob:
                    _wire_shuffle(
                        stage_tasks[int(p)], tasks, params.shuffle_fanin,
                        edges, rng,
                    )
                else:
                    _wire_partitioned(stage_tasks[int(p)], tasks, edges)
        stage_tasks.append(tasks)

    # Deduplicate edges (partitioned wiring can repeat endpoints).
    edges = sorted(set(edges))
    work = rng.integers(
        params.work_range[0], params.work_range[1] + 1, size=len(types)
    ).astype(np.float64)
    return KDag(types=types, work=work, edges=edges, num_types=num_types)
