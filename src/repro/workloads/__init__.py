"""Workload generators: the paper's three job families plus the adversary.

Paper Section V-B evaluates on three families, each in a *layered*
variant (task type determined by position — the structured case where
offline information pays off) and a *random* variant (types uniformly
random):

* **EP** — embarrassingly parallel: independent chains of tasks.
* **Tree** — probabilistic fan-out trees (divide and conquer).
* **IR** — iterative reduction: multi-iteration map/reduce workflows.

:mod:`repro.workloads.adversarial` builds the Theorem-2 lower-bound
job family (paper Fig. 2).  :mod:`repro.workloads.generator` exposes
the registry of named workload cells ("small layered EP", …) that the
experiment harness sweeps over.
"""

from repro.workloads.params import (
    CosmosParams,
    EPParams,
    IRParams,
    TreeParams,
    WorkloadSpec,
)
from repro.workloads.ep import generate_ep
from repro.workloads.tree import generate_tree
from repro.workloads.ir import generate_ir
from repro.workloads.cosmos import generate_cosmos
from repro.workloads.adversarial import adversarial_job, adversarial_optimal_makespan
from repro.workloads.generator import (
    EXTRA_CELLS,
    WORKLOAD_CELLS,
    sample_instance,
    workload_cell,
)

__all__ = [
    "EPParams",
    "TreeParams",
    "IRParams",
    "CosmosParams",
    "WorkloadSpec",
    "generate_ep",
    "generate_tree",
    "generate_ir",
    "generate_cosmos",
    "adversarial_job",
    "adversarial_optimal_makespan",
    "sample_instance",
    "workload_cell",
    "WORKLOAD_CELLS",
    "EXTRA_CELLS",
]
