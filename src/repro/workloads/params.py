"""Parameter dataclasses for the workload generators.

The paper varies, per family, "the number of branches, the number of
tasks in each branch, and the work and type of each task" (EP), "the
fanout number, fanout probability, and the work of each task" (tree),
and "the probability values, the total number of tasks at each phase,
and the work of each task" (IR) — without publishing the exact ranges.
The defaults below are this reproduction's documented choices; they
put the completion-time ratios in the ranges the paper plots (§V-C)
and are easy to override per experiment.

All ``*_range`` fields are inclusive ``(lo, hi)`` integer bounds
sampled uniformly per instance (work per task, counts per job).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.errors import ConfigurationError

__all__ = ["EPParams", "TreeParams", "IRParams", "CosmosParams", "WorkloadSpec"]


def _check_range(name: str, rng: tuple[int, int], lo_min: int = 1) -> None:
    lo, hi = rng
    if lo < lo_min or hi < lo:
        raise ConfigurationError(
            f"{name} must satisfy {lo_min} <= lo <= hi, got ({lo}, {hi})"
        )


@dataclass(frozen=True)
class EPParams:
    """Embarrassingly parallel chains.

    ``branches_range`` chains, each with ``chain_length_range`` tasks;
    work per task uniform in ``work_range``.
    """

    branches_range: tuple[int, int] = (20, 50)
    chain_length_range: tuple[int, int] = (36, 44)
    work_range: tuple[int, int] = (1, 8)

    def __post_init__(self) -> None:
        _check_range("branches_range", self.branches_range)
        _check_range("chain_length_range", self.chain_length_range)
        _check_range("work_range", self.work_range)


@dataclass(frozen=True)
class TreeParams:
    """Probabilistic fan-out trees.

    Starting from the root, each node has probability ``fanout_prob``
    of having ``fanout`` direct children and ``1 - fanout_prob`` of
    being a leaf (the paper's m / p model); both are sampled per job
    from their ranges.  ``max_depth``/``max_nodes`` bound runaway
    growth.  Nodes at depth below ``forced_depth`` always expand, so
    the branching process doesn't go extinct at a trivial size.
    """

    fanout_range: tuple[int, int] = (6, 12)
    fanout_prob_range: tuple[float, float] = (0.08, 0.15)
    work_range: tuple[int, int] = (1, 8)
    max_depth: int = 32
    max_nodes: int = 5000
    forced_depth: int = 2

    def __post_init__(self) -> None:
        _check_range("fanout_range", self.fanout_range)
        lo, hi = self.fanout_prob_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ConfigurationError(
                f"fanout_prob_range must be within [0, 1], got ({lo}, {hi})"
            )
        _check_range("work_range", self.work_range)
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if self.max_nodes < 2:
            raise ConfigurationError("max_nodes must be >= 2")
        if not 0 <= self.forced_depth <= self.max_depth:
            raise ConfigurationError(
                "forced_depth must be within [0, max_depth], got "
                f"{self.forced_depth}"
            )


@dataclass(frozen=True)
class IRParams:
    """Iterative reduction (multi-round map/reduce).

    ``iterations_range`` rounds; round ``i`` has ``maps_range`` map
    tasks and ``reduces_range`` reduce tasks.  Each map task draws a
    heavy-tailed fanout weight; each reduce picks ``fanin_range`` map
    parents with probability proportional to those weights (the
    paper's "tasks with a high fanout have a higher probability of
    providing output to each reduce task" / "some reduce tasks have
    different fanins").  Every reduce depends on at least one map and
    every map feeds at least one reduce; each next-round map reads one
    or two previous-round reduces.
    """

    iterations_range: tuple[int, int] = (16, 24)
    maps_range: tuple[int, int] = (80, 160)
    reduces_range: tuple[int, int] = (12, 24)
    work_range: tuple[int, int] = (1, 8)
    fanin_range: tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        _check_range("iterations_range", self.iterations_range)
        _check_range("maps_range", self.maps_range)
        _check_range("reduces_range", self.reduces_range)
        _check_range("work_range", self.work_range)
        _check_range("fanin_range", self.fanin_range)


@dataclass(frozen=True)
class CosmosParams:
    """Scope-style stage-workflow knobs (see :mod:`repro.workloads.cosmos`).

    ``stages_range`` stages per workflow; per-stage task counts are
    log-uniform in ``stage_width_range``; each stage reads up to
    ``max_stage_parents`` earlier stages, each read wired either
    range-partitioned or as a ``shuffle_fanin``-wide shuffle with
    probability ``shuffle_prob``.
    """

    stages_range: tuple[int, int] = (12, 28)
    stage_width_range: tuple[int, int] = (4, 64)
    work_range: tuple[int, int] = (1, 8)
    max_stage_parents: int = 3
    shuffle_prob: float = 0.35
    shuffle_fanin: int = 4

    def __post_init__(self) -> None:
        _check_range("stages_range", self.stages_range)
        _check_range("stage_width_range", self.stage_width_range)
        _check_range("work_range", self.work_range)
        if self.max_stage_parents < 1:
            raise ConfigurationError("max_stage_parents must be >= 1")
        if not 0.0 <= self.shuffle_prob <= 1.0:
            raise ConfigurationError(
                f"shuffle_prob must be in [0, 1], got {self.shuffle_prob}"
            )
        if self.shuffle_fanin < 1:
            raise ConfigurationError("shuffle_fanin must be >= 1")


_FAMILY_PARAMS = {}  # populated after WorkloadSpec (forward reference)


@dataclass(frozen=True)
class WorkloadSpec:
    """One evaluation cell: job family x type structure x system size.

    Attributes
    ----------
    family:
        ``"ep"``, ``"tree"``, ``"ir"`` or ``"cosmos"``.
    structure:
        ``"layered"`` (types assigned by position) or ``"random"``
        (types uniform per task).
    system:
        ``"small"`` (1-5 processors per type) or ``"medium"`` (10-20).
    num_types:
        K; the paper's default is 4.
    skew_factor:
        When > 1, type-0's processor count is divided by this factor
        after sampling (the paper's skewed-load experiment uses 5).
    params:
        Family-specific generator parameters; ``None`` selects the
        family default.
    """

    family: Literal["ep", "tree", "ir", "cosmos"]
    structure: Literal["layered", "random"]
    system: Literal["small", "medium"]
    num_types: int = 4
    skew_factor: int = 1
    params: EPParams | TreeParams | IRParams | CosmosParams | None = None

    def __post_init__(self) -> None:
        if self.family not in ("ep", "tree", "ir", "cosmos"):
            raise ConfigurationError(f"unknown family {self.family!r}")
        if self.structure not in ("layered", "random"):
            raise ConfigurationError(f"unknown structure {self.structure!r}")
        if self.system not in ("small", "medium"):
            raise ConfigurationError(f"unknown system {self.system!r}")
        if self.num_types < 1:
            raise ConfigurationError(f"num_types must be >= 1, got {self.num_types}")
        if self.skew_factor < 1:
            raise ConfigurationError(
                f"skew_factor must be >= 1, got {self.skew_factor}"
            )
        expected = _FAMILY_PARAMS[self.family]
        if self.params is not None and not isinstance(self.params, expected):
            raise ConfigurationError(
                f"{self.family} workload takes {expected.__name__}, got "
                f"{type(self.params).__name__}"
            )

    @property
    def effective_params(self) -> EPParams | TreeParams | IRParams | CosmosParams:
        """The explicit params, or the family default."""
        if self.params is not None:
            return self.params
        return _FAMILY_PARAMS[self.family]()

    @property
    def label(self) -> str:
        """Human-readable cell name matching the paper's captions."""
        skew = " skewed" if self.skew_factor > 1 else ""
        return (
            f"{self.system} {self.structure} {self.family.upper()}"
            f" (K={self.num_types}){skew}"
        )

    def with_num_types(self, k: int) -> "WorkloadSpec":
        """Same cell with a different K (for the changing-K sweep)."""
        return replace(self, num_types=k)

    def with_skew(self, factor: int) -> "WorkloadSpec":
        """Same cell with a skewed system (for the skewed-load sweep)."""
        return replace(self, skew_factor=factor)


_FAMILY_PARAMS.update(
    {"ep": EPParams, "tree": TreeParams, "ir": IRParams, "cosmos": CosmosParams}
)
