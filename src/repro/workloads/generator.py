"""Seeded sampling of (job, system) instances for workload cells.

A *cell* pairs a job family/structure with a system size — e.g.
"medium layered IR" — exactly as the paper's figure captions name
them.  :func:`sample_instance` draws one (KDag, ResourceConfig) pair
from a cell using a caller-supplied generator, so experiment sweeps
control seeding precisely.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError
from repro.system.resources import (
    ResourceConfig,
    sample_medium_system,
    sample_small_system,
    skewed,
)
from repro.workloads.cosmos import generate_cosmos
from repro.workloads.ep import generate_ep
from repro.workloads.ir import generate_ir
from repro.workloads.params import (
    CosmosParams,
    EPParams,
    IRParams,
    TreeParams,
    WorkloadSpec,
)
from repro.workloads.tree import generate_tree

__all__ = ["WORKLOAD_CELLS", "EXTRA_CELLS", "workload_cell", "sample_instance"]


#: The six cells of the paper's main comparison (Fig. 4), by panel.
WORKLOAD_CELLS: dict[str, WorkloadSpec] = {
    "small-random-ep": WorkloadSpec("ep", "random", "small"),
    "medium-random-tree": WorkloadSpec("tree", "random", "medium"),
    "medium-random-ir": WorkloadSpec("ir", "random", "medium"),
    "small-layered-ep": WorkloadSpec("ep", "layered", "small"),
    "medium-layered-tree": WorkloadSpec("tree", "layered", "medium"),
    "medium-layered-ir": WorkloadSpec("ir", "layered", "medium"),
}

#: Beyond the paper: the Cosmos/Scope stage-workflow family the paper's
#: introduction motivates but its evaluation does not include.
EXTRA_CELLS: dict[str, WorkloadSpec] = {
    "medium-layered-cosmos": WorkloadSpec("cosmos", "layered", "medium"),
    "medium-random-cosmos": WorkloadSpec("cosmos", "random", "medium"),
}


def workload_cell(name: str) -> WorkloadSpec:
    """Look up a named cell (paper cells first, then extras)."""
    if name in WORKLOAD_CELLS:
        return WORKLOAD_CELLS[name]
    if name in EXTRA_CELLS:
        return EXTRA_CELLS[name]
    known = sorted(WORKLOAD_CELLS) + sorted(EXTRA_CELLS)
    raise ConfigurationError(f"unknown workload cell {name!r}; known: {known}")


def sample_job(spec: WorkloadSpec, rng: np.random.Generator) -> KDag:
    """Sample one job from the cell's family/structure."""
    params = spec.effective_params
    if spec.family == "ep":
        assert isinstance(params, EPParams)
        return generate_ep(params, spec.num_types, spec.structure, rng)
    if spec.family == "tree":
        assert isinstance(params, TreeParams)
        return generate_tree(params, spec.num_types, spec.structure, rng)
    if spec.family == "cosmos":
        assert isinstance(params, CosmosParams)
        return generate_cosmos(params, spec.num_types, spec.structure, rng)
    assert isinstance(params, IRParams)
    return generate_ir(params, spec.num_types, spec.structure, rng)


def sample_system(spec: WorkloadSpec, rng: np.random.Generator) -> ResourceConfig:
    """Sample one system from the cell's size class, applying skew."""
    if spec.system == "small":
        config = sample_small_system(spec.num_types, rng)
    else:
        config = sample_medium_system(spec.num_types, rng)
    if spec.skew_factor > 1:
        config = skewed(config, skew_type=0, factor=spec.skew_factor)
    return config


def sample_instance(
    spec: WorkloadSpec, rng: np.random.Generator
) -> tuple[KDag, ResourceConfig]:
    """Sample one (job, system) pair from a cell."""
    job = sample_job(spec, rng)
    system = sample_system(spec, rng)
    return job, system
