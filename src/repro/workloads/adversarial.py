"""The Theorem-2 adversarial job family (paper Fig. 2).

This is the job distribution behind the online lower bound: a job no
online algorithm can schedule well in expectation, while an offline
scheduler finishes in ``K - 1 + m * P_K`` time.

Construction (unit work throughout; ``P_K`` must be ``P_max``):

* For each type ``alpha`` there are ``P_alpha * P_K * m`` tasks.
* For ``alpha < K-1`` (0-indexed): ``P_alpha`` *active* tasks — placed
  uniformly at random among the type's tasks — have edges to **all**
  ``(alpha+1)``-tasks; the rest have no outgoing edges.
* Of the last type's tasks, ``m * P_K - 1`` form a serial *chain*;
  ``P_K`` active tasks (uniform among the non-chain tasks) feed the
  first chain task; the rest are childless.

The punchline: to unlock the next type an online scheduler must finish
all active tasks of the current type, but it cannot tell active tasks
apart, so by the ball-drawing Lemma 1 it wastes ``~ P_K * m`` expected
steps per type.  An offline scheduler runs the actives first.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kdag import KDag
from repro.errors import ConfigurationError

__all__ = ["adversarial_job", "adversarial_optimal_makespan"]


def adversarial_job(
    processors: Sequence[int],
    m: int,
    rng: np.random.Generator,
) -> KDag:
    """Sample one adversarial job for the given per-type processor counts.

    Parameters
    ----------
    processors:
        ``(P_0, ..., P_{K-1})``; the construction requires the last
        type to have the maximum count (``P_{K-1} = P_max``) — reorder
        your types accordingly, as the proof does WLOG.
    m:
        The scale constant; the bound approaches its limit as
        ``m >> K``.
    """
    procs = np.asarray(processors, dtype=np.int64)
    k = procs.shape[0]
    if k < 1 or np.any(procs < 1):
        raise ConfigurationError(f"invalid processor counts {processors}")
    if int(procs[-1]) != int(procs.max()):
        raise ConfigurationError(
            "the last type must have the maximum processor count "
            f"(P_K = P_max); got {processors}"
        )
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")

    pk = int(procs[-1])
    counts = [int(p) * pk * m for p in procs]
    n = sum(counts)
    types = np.concatenate(
        [np.full(c, alpha, dtype=np.int64) for alpha, c in enumerate(counts)]
    )
    work = np.ones(n, dtype=np.float64)
    offsets = np.concatenate([[0], np.cumsum(counts)])

    edges: list[tuple[int, int]] = []

    chain_len = m * pk - 1
    last_lo, last_hi = int(offsets[k - 1]), int(offsets[k])
    n_last = counts[k - 1]
    if chain_len > n_last - pk:
        raise ConfigurationError(
            f"m={m}, P={list(procs)} leaves no room for {chain_len} chain "
            f"tasks among {n_last} type-{k - 1} tasks"
        )
    # Chain tasks: the last `chain_len` ids of the last type (their
    # position carries no information — an online scheduler learns a
    # task's edges only at completion, and chain tasks are not ready
    # until the actives finish anyway).
    chain = list(range(last_hi - chain_len, last_hi))
    for u, v in zip(chain, chain[1:]):
        edges.append((u, v))

    non_chain = np.arange(last_lo, last_hi - chain_len)
    active_last = rng.choice(non_chain, size=pk, replace=False)
    if chain:
        for a in active_last:
            edges.append((int(a), chain[0]))

    for alpha in range(k - 1):
        lo, hi = int(offsets[alpha]), int(offsets[alpha + 1])
        active = rng.choice(np.arange(lo, hi), size=int(procs[alpha]), replace=False)
        nxt_lo, nxt_hi = int(offsets[alpha + 1]), int(offsets[alpha + 2])
        for a in active:
            for v in range(nxt_lo, nxt_hi):
                edges.append((int(a), v))

    return KDag(types=types, work=work, edges=edges, num_types=k)


def adversarial_optimal_makespan(processors: Sequence[int], m: int) -> float:
    """The offline-optimal makespan ``T*(J) = K - 1 + m * P_K``.

    Proof sketch (paper, Theorem 2): run the actives of type 0 at step
    1, of type 1 at step 2, ..., then finish the last type in
    ``m * P_K`` steps by keeping one processor on the chain and the
    remaining ``P_K - 1`` on the leftover tasks.
    """
    procs = np.asarray(processors, dtype=np.int64)
    return float(procs.shape[0] - 1 + m * int(procs[-1]))
