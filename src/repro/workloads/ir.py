"""Iterative reduction (IR) workloads — paper Section V-B, Fig. 3(c).

An IR job is a multi-iteration MapReduce: each iteration has a map
phase (independent parallel tasks) and a reduce phase; "a reduce task
depends on a subset of all map tasks", with high-fanout maps more
likely to feed any given reduce; next-iteration maps read one or more
previous-iteration reduces.

The dependency structure is deliberately *sparse and skewed*: every map
draws a fanout weight from a heavy-tailed distribution, and each reduce
picks a small number of map parents with probability proportional to
those weights.  A few "hot" maps therefore gate most reduces — running
them early unlocks the next phase (and with it the next resource type)
long before the map phase drains, which is precisely the interleaving
opportunity offline schedulers exploit and online KGreedy cannot see.

* **layered** — all tasks of the same phase share one type, drawn
  uniformly at random per phase (map-0, reduce-0, map-1, ... are the
  job's "layers").
* **random** — every task's type is uniform over the K types.

Connectivity invariants regardless of the probability draws: every
reduce has at least one map parent, every map feeds at least one
reduce, and every iteration-``i+1`` map reads at least one
iteration-``i`` reduce.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.workloads.params import IRParams

__all__ = ["generate_ir"]


def generate_ir(
    params: IRParams,
    num_types: int,
    structure: str,
    rng: np.random.Generator,
) -> KDag:
    """Sample one IR job (see module docstring)."""
    n_iter = int(
        rng.integers(params.iterations_range[0], params.iterations_range[1] + 1)
    )
    phase_types: list[int] = []  # type of each phase, filled lazily
    task_phase: list[int] = []

    def new_phase() -> int:
        phase_types.append(int(rng.integers(0, num_types)))
        return len(phase_types) - 1

    def new_task(phase: int) -> int:
        task_phase.append(phase)
        return len(task_phase) - 1

    edges: list[tuple[int, int]] = []
    prev_reduces: list[int] = []
    for _ in range(n_iter):
        n_maps = int(rng.integers(params.maps_range[0], params.maps_range[1] + 1))
        n_reduces = int(
            rng.integers(params.reduces_range[0], params.reduces_range[1] + 1)
        )

        map_phase = new_phase()
        maps = [new_task(map_phase) for _ in range(n_maps)]
        # Each next-round map reads 1-2 previous-round reduces.
        if prev_reduces:
            for t in maps:
                k_par = int(rng.integers(1, min(2, len(prev_reduces)) + 1))
                parents = rng.choice(len(prev_reduces), size=k_par, replace=False)
                for pi in parents:
                    edges.append((prev_reduces[int(pi)], t))

        reduce_phase = new_phase()
        reduces = [new_task(reduce_phase) for _ in range(n_reduces)]

        # Heavy-tailed map fanout weights: a few hot maps gate most
        # reduces.  Pareto(1) + 1 gives a long tail with finite draws.
        weights = 1.0 + rng.pareto(1.0, size=n_maps)
        probs = weights / weights.sum()
        fed = np.zeros(n_maps, dtype=bool)
        fanin_lo, fanin_hi = params.fanin_range
        for r in reduces:
            k_par = int(rng.integers(fanin_lo, min(fanin_hi, n_maps) + 1))
            parents = rng.choice(n_maps, size=k_par, replace=False, p=probs)
            for mi in parents:
                edges.append((maps[int(mi)], r))
                fed[int(mi)] = True
        # Every map feeds at least one reduce.
        for mi in np.flatnonzero(~fed):
            r = reduces[int(rng.integers(0, n_reduces))]
            edges.append((maps[int(mi)], r))

        prev_reduces = reduces

    n = len(task_phase)
    if structure == "layered":
        ptypes = np.asarray(phase_types, dtype=np.int64)
        types = ptypes[np.asarray(task_phase, dtype=np.int64)]
    else:
        types = rng.integers(0, num_types, size=n)
    work = rng.integers(
        params.work_range[0], params.work_range[1] + 1, size=n
    ).astype(np.float64)
    return KDag(types=types, work=work, edges=edges, num_types=num_types)
