"""Iterative reduction (IR) workloads — paper Section V-B, Fig. 3(c).

An IR job is a multi-iteration MapReduce: each iteration has a map
phase (independent parallel tasks) and a reduce phase; "a reduce task
depends on a subset of all map tasks", with high-fanout maps more
likely to feed any given reduce; next-iteration maps read one or more
previous-iteration reduces.

The dependency structure is deliberately *sparse and skewed*: every map
draws a fanout weight from a heavy-tailed distribution, and each reduce
picks a small number of map parents with probability proportional to
those weights.  A few "hot" maps therefore gate most reduces — running
them early unlocks the next phase (and with it the next resource type)
long before the map phase drains, which is precisely the interleaving
opportunity offline schedulers exploit and online KGreedy cannot see.

* **layered** — all tasks of the same phase share one type, drawn
  uniformly at random per phase (map-0, reduce-0, map-1, ... are the
  job's "layers").
* **random** — every task's type is uniform over the K types.

Connectivity invariants regardless of the probability draws: every
reduce has at least one map parent, every map feeds at least one
reduce, and every iteration-``i+1`` map reads at least one
iteration-``i`` reduce.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.workloads.params import IRParams

__all__ = ["generate_ir"]


def generate_ir(
    params: IRParams,
    num_types: int,
    structure: str,
    rng: np.random.Generator,
) -> KDag:
    """Sample one IR job (see module docstring).

    All draws within one iteration are vectorized: map parents come
    from a uniform distinct-pair draw and reduce fan-ins from
    Efraimidis–Spirakis exponential keys (``log(u)/w`` top-k), which
    is distributionally equivalent to successive weighted sampling
    without replacement — the sampled *law* matches the per-task
    formulation while the work is a handful of array ops per phase.
    """
    n_iter = int(
        rng.integers(params.iterations_range[0], params.iterations_range[1] + 1)
    )
    n_maps_arr = rng.integers(
        params.maps_range[0], params.maps_range[1] + 1, size=n_iter
    )
    n_reduces_arr = rng.integers(
        params.reduces_range[0], params.reduces_range[1] + 1, size=n_iter
    )
    # Phase 2i is iteration i's map phase, phase 2i+1 its reduce phase.
    phase_types = rng.integers(0, num_types, size=2 * n_iter)

    # Contiguous task ids per iteration: maps block then reduces block.
    per_iter = n_maps_arr + n_reduces_arr
    iter_start = np.zeros(n_iter + 1, dtype=np.int64)
    np.cumsum(per_iter, out=iter_start[1:])
    n = int(iter_start[-1])
    task_phase = np.repeat(
        np.arange(2 * n_iter, dtype=np.int64),
        np.stack([n_maps_arr, n_reduces_arr], axis=1).reshape(-1),
    )

    fanin_lo, fanin_hi = params.fanin_range
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for i in range(n_iter):
        n_maps = int(n_maps_arr[i])
        n_reduces = int(n_reduces_arr[i])
        map0 = int(iter_start[i])
        maps = np.arange(map0, map0 + n_maps, dtype=np.int64)
        reduce0 = map0 + n_maps
        reduces = np.arange(reduce0, reduce0 + n_reduces, dtype=np.int64)

        # Each next-round map reads 1-2 previous-round reduces: a
        # uniform first parent plus, with k_par == 2, a uniform second
        # parent drawn from the remainder (the shift keeps the pair
        # distinct — same law as choice(replace=False)).
        if i > 0:
            r_prev = int(n_reduces_arr[i - 1])
            prev0 = int(iter_start[i]) - r_prev
            k_par = rng.integers(1, min(2, r_prev) + 1, size=n_maps)
            first = rng.integers(0, r_prev, size=n_maps)
            src_parts.append(prev0 + first)
            dst_parts.append(maps)
            two = k_par == 2
            if np.any(two):
                second = rng.integers(0, r_prev - 1, size=int(two.sum()))
                second += second >= first[two]
                src_parts.append(prev0 + second)
                dst_parts.append(maps[two])

        # Heavy-tailed map fanout weights: a few hot maps gate most
        # reduces.  Pareto(1) + 1 gives a long tail with finite draws.
        weights = 1.0 + rng.pareto(1.0, size=n_maps)
        k_max = min(fanin_hi, n_maps)
        k_par = rng.integers(fanin_lo, k_max + 1, size=n_reduces)
        # Top-k_par Efraimidis–Spirakis keys per reduce ~ weighted
        # sampling without replacement with p proportional to weights.
        keys = np.log(rng.random((n_reduces, n_maps))) / weights
        if k_max < n_maps:
            top = np.argpartition(keys, n_maps - k_max, axis=1)[:, n_maps - k_max:]
            top_keys = np.take_along_axis(keys, top, axis=1)
            order = np.take_along_axis(
                top, np.argsort(-top_keys, axis=1), axis=1
            )
        else:
            order = np.argsort(-keys, axis=1)
        pick = np.arange(order.shape[1]) < k_par[:, None]
        parent_rows = order[pick]
        src_parts.append(map0 + parent_rows)
        dst_parts.append(np.repeat(reduces, k_par))

        # Every map feeds at least one reduce.
        fed = np.zeros(n_maps, dtype=bool)
        fed[parent_rows] = True
        unfed = np.flatnonzero(~fed)
        if unfed.size:
            src_parts.append(map0 + unfed)
            dst_parts.append(
                reduce0 + rng.integers(0, n_reduces, size=unfed.size)
            )

    edges = np.stack(
        [np.concatenate(src_parts), np.concatenate(dst_parts)], axis=1
    )
    if structure == "layered":
        types = phase_types[task_phase]
    else:
        types = rng.integers(0, num_types, size=n)
    work = rng.integers(
        params.work_range[0], params.work_range[1] + 1, size=n
    ).astype(np.float64)
    return KDag(types=types, work=work, edges=edges, num_types=num_types)
