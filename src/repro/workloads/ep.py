"""Embarrassingly parallel (EP) workloads — paper Section V-B, Fig. 3(a).

An EP job is a set of independent branches, each a serial chain of
tasks; different phases of a branch need different resource types
(e.g. a Monte Carlo pipeline: CPU preprocessing, accelerator kernels,
CPU reduction).

* **layered** — each branch is "a fixed sequence of tasks with type
  from 1 to K": a block of type-0 tasks, then a block of type-1 tasks,
  ..., then type K-1.  Every branch therefore starts on type 0 and the
  later types' work only unlocks as branches progress — the structured
  case where scheduling order decides whether the types pipeline
  (offline) or serialize phase by phase (online KGreedy's failure
  mode, Fig. 4(d)).
* **random** — identical chain shapes, but every task's type is
  uniform over the K types.

Block lengths are sampled per (branch, type) from
``block_length_range = chain_length_range scaled by 1/K``; see
:class:`~repro.workloads.params.EPParams`.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.workloads.params import EPParams

__all__ = ["generate_ep"]


def generate_ep(
    params: EPParams,
    num_types: int,
    structure: str,
    rng: np.random.Generator,
) -> KDag:
    """Sample one EP job (see module docstring)."""
    n_branches = int(
        rng.integers(params.branches_range[0], params.branches_range[1] + 1)
    )
    # Per-branch, per-type block lengths; a branch's chain length is the
    # sum of its K blocks, so chains land in chain_length_range on
    # average when block lengths average chain/K.
    lo = max(1, params.chain_length_range[0] // num_types)
    hi = max(lo, -(-params.chain_length_range[1] // num_types))
    blocks = rng.integers(lo, hi + 1, size=(n_branches, num_types))
    lengths = blocks.sum(axis=1)
    n = int(lengths.sum())

    types = np.empty(n, dtype=np.int64)
    work = rng.integers(
        params.work_range[0], params.work_range[1] + 1, size=n
    ).astype(np.float64)

    edges: list[tuple[int, int]] = []
    pos = 0
    for b in range(n_branches):
        length = int(lengths[b])
        if structure == "layered":
            types[pos : pos + length] = np.repeat(
                np.arange(num_types), blocks[b]
            )
        else:
            types[pos : pos + length] = rng.integers(0, num_types, size=length)
        for i in range(pos, pos + length - 1):
            edges.append((i, i + 1))
        pos += length

    return KDag(types=types, work=work, edges=edges, num_types=num_types)
