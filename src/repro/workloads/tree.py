"""Tree workloads — paper Section V-B, Fig. 3(b).

A tree job starts from a root task and explores parallelism by
expanding nodes into subtasks (divide and conquer with a trivial
conquer phase; search, graph traversal, speculative parallelism).
Expansion is probabilistic: a node has probability ``p`` of having
``m`` direct children and ``1 - p`` of being a leaf — so most nodes
are leaves and a minority of "expander" nodes carry the whole subtree
below them.  That minority is exactly what an online scheduler cannot
see (the Theorem-2 "active task" mechanism): every offline heuristic
knows which ready nodes root deep subtrees, KGreedy does not.

* **layered** — all nodes at tree level ``d`` share one type, drawn
  uniformly at random per level ("all the nodes at each level of a
  tree have the same type").
* **random** — every task's type is uniform over the K types.

Nodes shallower than ``forced_depth`` always expand (so the branching
process doesn't die at a trivial size), and growth stops at
``max_depth`` / ``max_nodes``, which keeps the job size bounded even
when ``m * p > 1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdag import KDag
from repro.workloads.params import TreeParams

__all__ = ["generate_tree"]


def generate_tree(
    params: TreeParams,
    num_types: int,
    structure: str,
    rng: np.random.Generator,
) -> KDag:
    """Sample one tree job (see module docstring)."""
    m = int(rng.integers(params.fanout_range[0], params.fanout_range[1] + 1))
    p = float(rng.uniform(*params.fanout_prob_range))

    edges: list[tuple[int, int]] = []
    depth_of: list[int] = [0]
    frontier = [0]
    while frontier:
        node = frontier.pop()
        depth = depth_of[node]
        if depth >= params.max_depth or len(depth_of) + m > params.max_nodes:
            continue
        expand = depth < params.forced_depth or (rng.random() < p)
        if not expand:
            continue
        for _ in range(m):
            child = len(depth_of)
            depth_of.append(depth + 1)
            edges.append((node, child))
            frontier.append(child)

    n = len(depth_of)
    depths = np.asarray(depth_of, dtype=np.int64)
    if structure == "layered":
        level_types = rng.integers(0, num_types, size=int(depths.max()) + 1)
        types = level_types[depths]
    else:
        types = rng.integers(0, num_types, size=n)

    work = rng.integers(
        params.work_range[0], params.work_range[1] + 1, size=n
    ).astype(np.float64)
    return KDag(types=types, work=work, edges=edges, num_types=num_types)
