"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being
able to discriminate construction errors from runtime scheduling errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "TypeMismatchError",
    "ResourceError",
    "SchedulingError",
    "ValidationError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Invalid K-DAG structure (bad node ids, edges, work values, types)."""


class CycleError(GraphError):
    """The supplied edge set contains a cycle, so the graph is not a DAG."""


class TypeMismatchError(ReproError):
    """A task was assigned to a processor of the wrong resource type."""


class ResourceError(ReproError):
    """Invalid resource configuration (non-positive counts, bad K)."""


class SchedulingError(ReproError):
    """A scheduler produced an inconsistent decision at run time."""


class ValidationError(ReproError):
    """A produced schedule violates precedence/capacity/type legality."""


class ConfigurationError(ReproError):
    """Invalid experiment or workload configuration."""
