"""Random-choice control (beyond the paper).

Quantifies the paper's Fig.-4 interpretation — "the lack of structural
information makes it difficult ... any best-effort algorithm would
work just fine" on random workloads — by adding a uniformly random
selector to the comparison: if random ~ KGreedy on random workloads
but both trail MQB on layered ones, the layered gaps measure
*information*, not tie-breaking luck.
"""

from __future__ import annotations

from repro.experiments.runner import run_comparison
from repro.workloads.generator import WORKLOAD_CELLS

N_INSTANCES = 20
ALGS = ["random", "kgreedy", "mqb"]


def run_control(n_instances: int = N_INSTANCES, seed: int = 17) -> dict:
    panels = []
    for cell in ("small-random-ep", "small-layered-ep", "medium-layered-ir"):
        stats = run_comparison(WORKLOAD_CELLS[cell], ALGS, n_instances, seed)
        panels.append(
            {
                "name": cell,
                "label": cell,
                "series": [s.to_dict() for s in stats],
            }
        )
    return {
        "figure": "random-control",
        "title": "Uniform-random selection vs KGreedy vs MQB",
        "kind": "bars",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n_instances, "seed": seed},
    }


def test_random_control(benchmark, publish):
    result = benchmark.pedantic(run_control, rounds=1, iterations=1)
    publish(result)

    by_cell = {
        p["name"]: {s["key"]: s["mean"] for s in p["series"]}
        for p in result["panels"]
    }
    # Random EP: random ~ kgreedy (within 10 %), both near the bound.
    rnd = by_cell["small-random-ep"]
    assert abs(rnd["random"] - rnd["kgreedy"]) < 0.1 * rnd["kgreedy"]
    # Layered cells: MQB clearly beats BOTH uninformed policies.
    for cell in ("small-layered-ep", "medium-layered-ir"):
        m = by_cell[cell]
        assert m["mqb"] < m["random"], (cell, m)
        assert m["mqb"] < m["kgreedy"], (cell, m)
