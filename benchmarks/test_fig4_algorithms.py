"""Figure 4: the six algorithms across the six workload cells.

Paper claims reproduced (Section V-C):

* On the three *random* panels every algorithm lands close to the
  lower bound — offline information cannot exploit unstructured types.
* On the three *layered* panels MQB beats KGreedy substantially
  (the paper reports >= 40 % on its parameterization; we assert >= 25 %
  on EP, where the effect is strongest, and strict wins elsewhere).
* MaxDP is strong on tree/IR but weak on EP; DType is weak on IR;
  MQB is best or near-best everywhere.
"""

from __future__ import annotations

from repro.experiments.figures import run_fig4

from benchmarks.conftest import panel_by_name, series_means

N_INSTANCES = 12


def test_fig4(benchmark, publish):
    result = benchmark.pedantic(
        run_fig4, kwargs={"n_instances": N_INSTANCES}, rounds=1, iterations=1
    )
    publish(result)

    # Random panels: everyone near-optimal.
    for cell in ("small-random-ep", "medium-random-tree", "medium-random-ir"):
        means = series_means(panel_by_name(result, cell))
        assert all(v < 1.35 for v in means.values()), (cell, means)

    # Layered EP: MQB cuts KGreedy by a large margin; MaxDP is poor.
    ep = series_means(panel_by_name(result, "small-layered-ep"))
    assert ep["mqb"] < 0.75 * ep["kgreedy"]
    assert ep["maxdp"] > 1.5 * ep["mqb"] - 0.6  # MaxDP clearly behind MQB
    assert ep["kgreedy"] > 2.0  # online penalty is visible

    # Layered tree: every offline heuristic beats KGreedy.
    tree = series_means(panel_by_name(result, "medium-layered-tree"))
    for alg in ("lspan", "dtype", "maxdp", "shiftbt", "mqb"):
        assert tree[alg] < tree["kgreedy"]

    # Layered IR: MQB and MaxDP lead; DType trails the offline pack.
    ir = series_means(panel_by_name(result, "medium-layered-ir"))
    assert ir["mqb"] < ir["kgreedy"]
    assert ir["maxdp"] < ir["kgreedy"]
    assert ir["dtype"] > min(ir["mqb"], ir["maxdp"])

    # MQB is best or near-best on every panel (within 25 % of the best).
    for panel in result["panels"]:
        means = series_means(panel)
        best = min(means.values())
        assert means["mqb"] <= 1.25 * best, (panel["name"], means)
