"""Figure 8: MQB with partial and imprecise lookahead information.

Paper claims reproduced (Section V-G):

* One-step lookahead suffices on tree and IR (MQB+1Step ~ MQB+All),
  but EP needs global information (MQB+1Step worse than MQB+All).
* Noisy estimates (Exp / mult+add noise, up to ~2x off) still beat
  KGreedy clearly on tree and IR.
"""

from __future__ import annotations

from repro.experiments.figures import run_fig8

from benchmarks.conftest import panel_by_name, series_means

N_INSTANCES = 10


def test_fig8(benchmark, publish):
    result = benchmark.pedantic(
        run_fig8, kwargs={"n_instances": N_INSTANCES}, rounds=1, iterations=1
    )
    publish(result)

    for cell in ("medium-layered-tree", "medium-layered-ir"):
        means = series_means(panel_by_name(result, cell))
        # Every MQB variant — even noisy, one-step — beats KGreedy.
        for key, mean in means.items():
            if key != "kgreedy":
                assert mean < means["kgreedy"], (cell, key, means)
        # One-step lookahead is enough here: within 10 % of full MQB.
        assert means["mqb+1step+pre"] <= 1.10 * means["mqb+all+pre"], (cell, means)

    # EP: one-step lookahead is NOT enough — visibly worse than full.
    ep = series_means(panel_by_name(result, "small-layered-ep"))
    assert ep["mqb+1step+pre"] >= ep["mqb+all+pre"] - 0.02
    # Precise full information still beats KGreedy by a wide margin.
    assert ep["mqb+all+pre"] < 0.8 * ep["kgreedy"]
