"""Microbenchmarks: native MQB selection kernel vs the numpy path.

One pick over a pool of ``m`` ready candidates — the unit of work the
compiled kernel (:mod:`repro.native`) replaces — timed for both
backends at small/medium/large pool sizes, so a regression in either
path is visible in isolation rather than only through the end-to-end
engine numbers in BENCH_engine.json.

The native side mutates its buffers (pick + pop-swap + load updates),
so it runs under ``benchmark.pedantic`` with an untimed per-round
setup that restores fresh copies; the numpy ``_pick_best`` is scoring
only and benchmarks directly.  Marked slow like the other experiment-
scale benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, make_scheduler
from repro import native

pytestmark = pytest.mark.slow

K = 4
POOL_SIZES = (8, 64, 512)


def _prepared_mqb(m: int):
    """An MQB scheduler with ``m`` ready type-0 candidates pooled."""
    rng = np.random.default_rng(m)
    n = m + K
    types = rng.integers(0, K, size=n)
    types[:m] = 0
    work = rng.integers(1, 7, size=n).astype(float)
    job = KDag(types=types, work=work, edges=[], num_types=K)
    sch = make_scheduler("mqb")
    sch.prepare(job, ResourceConfig((2,) * K))
    for t in range(n):
        sch.task_ready(t, 0.0, float(work[t]))
    assert len(sch._ptasks[0]) >= m
    return sch


@pytest.fixture
def kernel():
    k = native.load_kernel()
    if k is None:
        pytest.skip(f"native kernel unavailable: {native.native_status()['error']}")
    return k


@pytest.mark.parametrize("m", POOL_SIZES)
def test_pick_numpy(benchmark, m, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    sch = _prepared_mqb(m)
    extra = np.zeros(K, dtype=np.float64)
    benchmark(lambda: sch._pick_best(0, extra))


@pytest.mark.parametrize("m", POOL_SIZES)
def test_pick_native(benchmark, kernel, m, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")  # build pools via numpy path
    sch = _prepared_mqb(m)
    mm = len(sch._ptasks[0])
    dpool, wpool, spool = sch._dpool[0], sch._wpool[0], sch._spool[0]
    parr = sch._parr
    extra = np.zeros(K, dtype=np.float64)

    def setup():
        return (
            dpool.copy(), wpool.copy(), spool.copy(),
            sch._l.copy(), extra.copy(),
        ), {}

    def run(d, w, s, l, e):
        return kernel.pick_pop(
            d.ctypes.data, w.ctypes.data, s.ctypes.data, mm, K, 0,
            l.ctypes.data, e.ctypes.data, parr.ctypes.data,
            native.MODE_CODES["lex"], 1,
        )

    benchmark.pedantic(run, setup=setup, rounds=300, warmup_rounds=10)
