"""Engine microbenchmarks: simulation throughput and offline passes.

These are true performance benchmarks (multiple rounds, statistics) —
they guard the harness against regressions that would make the 5000-
instance paper-scale sweeps impractical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ResourceConfig, make_scheduler, simulate
from repro.core.cache import cached_descendant_values, clear_offline_cache
from repro.core.descendants import descendant_values, remaining_span
from repro.experiments.runner import run_comparison
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance


@pytest.fixture(scope="module")
def ir_instance():
    rng = np.random.default_rng(42)
    return sample_instance(WORKLOAD_CELLS["medium-layered-ir"], rng)


@pytest.fixture(scope="module")
def ep_instance():
    rng = np.random.default_rng(42)
    return sample_instance(WORKLOAD_CELLS["small-layered-ep"], rng)


def test_engine_throughput_kgreedy_ir(benchmark, ir_instance):
    job, system = ir_instance
    benchmark(lambda: simulate(job, system, make_scheduler("kgreedy")))


def test_engine_throughput_mqb_ir(benchmark, ir_instance):
    job, system = ir_instance
    rng = np.random.default_rng(0)
    benchmark(lambda: simulate(job, system, make_scheduler("mqb"), rng=rng))


def test_engine_throughput_shiftbt_ep(benchmark, ep_instance):
    job, system = ep_instance
    benchmark(lambda: simulate(job, system, make_scheduler("shiftbt")))


def test_descendant_values_pass(benchmark, ir_instance):
    job, _ = ir_instance
    benchmark(lambda: descendant_values(job))


def test_remaining_span_pass(benchmark, ir_instance):
    job, _ = ir_instance
    benchmark(lambda: remaining_span(job))


def test_instance_sampling(benchmark):
    rng = np.random.default_rng(1)
    spec = WORKLOAD_CELLS["medium-layered-tree"]
    benchmark(lambda: sample_instance(spec, rng))


def test_descendant_values_cache_hit(benchmark, ir_instance):
    """The memoized lookup a paired comparison pays after the first run."""
    job, _ = ir_instance
    clear_offline_cache()
    cached_descendant_values(job)  # warm
    benchmark(lambda: cached_descendant_values(job))


def test_mqb_prepare_with_cache(benchmark, ir_instance):
    """Full prepare() on a warm cache: noise-free models skip the pass."""
    job, system = ir_instance
    scheduler = make_scheduler("mqb")
    clear_offline_cache()
    scheduler.prepare(job, system)  # warm the cache
    benchmark(lambda: scheduler.prepare(job, system))


def test_paired_sweep_serial(benchmark):
    """End-to-end paired comparison (the unit parallel sweeps shard)."""
    spec = WORKLOAD_CELLS["small-layered-ep"]
    benchmark.pedantic(
        lambda: run_comparison(spec, ["kgreedy", "mqb"], 4, seed=0, n_workers=1),
        rounds=3, iterations=1,
    )

@pytest.fixture(scope="module")
def ir_batch():
    """64 medium-layered-ir instances — the batch engine's design point.

    Per-round costs amortize across rows, so the lockstep advantage
    needs tens of rows to pay off; a 16-row batch on a sparse cell can
    even lose to the scalar loop (engine choice is the caller's).
    """
    rng = np.random.default_rng(7)
    spec = WORKLOAD_CELLS["medium-layered-ir"]
    return [sample_instance(spec, rng) for _ in range(64)]


def test_batch_engine_throughput_kgreedy_ir(benchmark, ir_batch):
    from repro import simulate_batch

    benchmark(lambda: simulate_batch(ir_batch, make_scheduler("kgreedy")))


def test_batch_engine_throughput_kgreedy_ir_scalar_loop(benchmark, ir_batch):
    """The 64 scalar loops the batch call above replaces."""
    benchmark(
        lambda: [
            simulate(job, system, make_scheduler("kgreedy"))
            for job, system in ir_batch
        ]
    )
