"""Figure 6: skewed load (type-0 processor count cut to one fifth).

Paper claims reproduced (Section V-E): with a skewed load one resource
type becomes the bottleneck, the situation resembles the homogeneous
case, the spread between algorithms shrinks, and KGreedy moves close
to optimal.
"""

from __future__ import annotations

from repro.experiments.figures import run_fig4, run_fig6

from benchmarks.conftest import panel_by_name, series_means

N_INSTANCES = 12


def test_fig6(benchmark, publish):
    result = benchmark.pedantic(
        run_fig6, kwargs={"n_instances": N_INSTANCES}, rounds=1, iterations=1
    )
    publish(result)

    unskewed = run_fig4(n_instances=N_INSTANCES)

    for cell in ("medium-layered-tree", "medium-layered-ir"):
        skewed_means = series_means(panel_by_name(result, cell))
        plain_means = series_means(panel_by_name(unskewed, cell))

        skew_spread = max(skewed_means.values()) - min(skewed_means.values())
        plain_spread = max(plain_means.values()) - min(plain_means.values())
        # The algorithm spread shrinks under skew.
        assert skew_spread < plain_spread + 1e-9, (cell, skew_spread, plain_spread)

        # KGreedy moves toward the lower bound.
        assert skewed_means["kgreedy"] < plain_means["kgreedy"], cell
        assert skewed_means["kgreedy"] < 1.6, cell
