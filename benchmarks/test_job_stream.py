"""Stream-scheduling benchmark (beyond the paper).

Compares the four stream policies on a Poisson stream of layered IR
jobs under light and heavy load, asserting the expected qualitative
trade-off: SRPT minimizes mean flow time under heavy load, while
utilization-balancing (global MQB) minimizes the stream makespan.
"""

from __future__ import annotations

import numpy as np

from repro.multijob import (
    GlobalKGreedy,
    GlobalMQB,
    JobFCFS,
    SmallestRemainingFirst,
    poisson_stream,
    simulate_stream,
)
from repro.system.resources import medium_system
from repro.workloads.params import IRParams, WorkloadSpec

POLICIES = (GlobalKGreedy, JobFCFS, SmallestRemainingFirst, GlobalMQB)

SPEC = WorkloadSpec(
    "ir", "layered", "medium",
    params=IRParams(
        iterations_range=(4, 6), maps_range=(20, 40), reduces_range=(6, 10)
    ),
)


def run_stream_study(n_streams: int = 6, seed: int = 9) -> dict:
    system = medium_system(4, 12)
    panels = []
    for label, gap in (("light load", 80.0), ("heavy load", 20.0)):
        flow: dict[str, list[float]] = {c.name: [] for c in POLICIES}
        mksp: dict[str, list[float]] = {c.name: [] for c in POLICIES}
        for i in range(n_streams):
            stream = poisson_stream(
                SPEC, 10, gap, np.random.default_rng(np.random.SeedSequence([seed, i]))
            )
            for cls in POLICIES:
                r = simulate_stream(stream, system, cls())
                flow[cls.name].append(r.mean_flow_time)
                mksp[cls.name].append(r.makespan)
        panels.append(
            {
                "name": label.replace(" ", "-"),
                "label": label,
                "series": [
                    {
                        "key": name,
                        "mean": float(np.mean(flow[name])),
                        "max": float(np.mean(mksp[name])),  # makespan column
                        "std": float(np.std(flow[name])),
                        "stderr": 0.0,
                        "n": n_streams,
                    }
                    for name in flow
                ],
            }
        )
    return {
        "figure": "job-stream",
        "title": "Stream policies: mean flow time (mean) and makespan (max col)",
        "kind": "bars",
        "metric": "mean+max",
        "panels": panels,
        "config": {"n_streams": n_streams, "seed": seed},
    }


def test_job_stream(benchmark, publish):
    result = benchmark.pedantic(run_stream_study, rounds=1, iterations=1)
    publish(result)

    heavy = next(p for p in result["panels"] if p["name"] == "heavy-load")
    flow = {s["key"]: s["mean"] for s in heavy["series"]}
    makespan = {s["key"]: s["max"] for s in heavy["series"]}

    # SRPT's mean flow time leads (or ties within 5 %) under heavy load.
    assert flow["srpt"] <= 1.05 * min(flow.values())
    # Balancing wins the stream makespan (within 5 % of the best).
    assert makespan["global-mqb"] <= 1.05 * min(makespan.values())
