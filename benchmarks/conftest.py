"""Shared configuration for the benchmark harness.

Each ``test_fig*`` module regenerates one figure of the paper at a
reduced instance count (the CLI runs full-scale sweeps), prints the
rendered table, saves the JSON under ``results/bench/``, and asserts
the paper's qualitative claims for that figure — who wins, roughly by
how much, and where the crossovers fall.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Benchmarks measure fresh computation; never serve sweep results from
# the user's persistent cache (export REPRO_CACHE=1 to opt in).
os.environ.setdefault("REPRO_CACHE", "0")

from repro.experiments.report import render_result  # noqa: E402
from repro.experiments.store import save_result  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results" / "bench"


@pytest.fixture
def publish():
    """Print the rendered figure and persist its JSON."""

    def _publish(result: dict) -> None:
        print()
        print(render_result(result))
        save_result(result, RESULTS_DIR)

    return _publish


def series_means(panel: dict) -> dict[str, float]:
    """{algorithm: mean ratio} for a bars panel."""
    return {s["key"]: s["mean"] for s in panel["series"]}


def panel_by_name(result: dict, name: str) -> dict:
    for panel in result["panels"]:
        if panel["name"] == name:
            return panel
    raise KeyError(name)
