"""Optimality gaps on small unit-work jobs (beyond the paper).

The paper measures every algorithm against the lower bound ``L(J)``
because the true optimum is NP-hard.  For small unit-work instances we
*can* compute the optimum exactly (A* over done-bitmasks), which
answers a question the paper leaves open: how much of the reported
"completion time ratio" is real scheduling loss and how much is just
looseness of ``L(J)``?

Asserts: no heuristic beats the optimum; MQB's mean gap to optimal is
the smallest (or ties) among the six algorithms; the optimum itself
sits strictly above ``L(J)`` on a nontrivial fraction of instances.
"""

from __future__ import annotations

import numpy as np

from repro import (
    KDag,
    ResourceConfig,
    lower_bound,
    make_scheduler,
    simulate,
)
from repro.schedulers.optimal import optimal_makespan
from repro.schedulers.registry import PAPER_ALGORITHMS

N_INSTANCES = 40
N_TASKS = 12
K = 2


def sample_unit_job(rng: np.random.Generator) -> tuple[KDag, ResourceConfig]:
    types = rng.integers(0, K, N_TASKS)
    edges = [
        (i, j)
        for i in range(N_TASKS)
        for j in range(i + 1, N_TASKS)
        if rng.random() < 0.18
    ]
    job = KDag(types=types, work=[1.0] * N_TASKS, edges=edges, num_types=K)
    system = ResourceConfig(tuple(int(c) for c in rng.integers(1, 3, K)))
    return job, system


def run_gap_study(n_instances: int = N_INSTANCES, seed: int = 31) -> dict:
    gaps: dict[str, list[float]] = {a: [] for a in PAPER_ALGORITHMS}
    lb_loose = 0
    for i in range(n_instances):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        job, system = sample_unit_job(rng)
        opt = optimal_makespan(job, system)
        if opt > lower_bound(job, system.as_array()) + 1e-9:
            lb_loose += 1
        for name in PAPER_ALGORITHMS:
            res = simulate(job, system, make_scheduler(name),
                           rng=np.random.default_rng(i))
            assert res.makespan >= opt - 1e-9, (name, i)
            gaps[name].append(res.makespan / opt)
    rows = [
        [name, round(float(np.mean(g)), 4), round(float(np.max(g)), 3)]
        for name, g in gaps.items()
    ]
    return {
        "figure": "optimality-gap",
        "title": "Heuristic makespan over exact optimum (small unit jobs)",
        "kind": "table",
        "columns": ["algorithm", "mean T/T*", "max T/T*"],
        "rows": rows,
        "config": {
            "n_instances": n_instances,
            "seed": seed,
            "lb_strictly_below_opt": lb_loose,
        },
    }


def test_optimality_gap(benchmark, publish):
    result = benchmark.pedantic(run_gap_study, rounds=1, iterations=1)
    publish(result)

    means = {name: mean for name, mean, _ in result["rows"]}
    # All gaps are small on these instances but strictly >= 1.
    assert all(m >= 1.0 for m in means.values())
    # MQB within 2 % of the best heuristic.
    assert means["mqb"] <= min(means.values()) + 0.02
    # L(J) is strictly loose somewhere — the ratio metric understates
    # how close the heuristics really are to optimal.
    assert result["config"]["lb_strictly_below_opt"] > 0
