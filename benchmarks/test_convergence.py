"""Convergence study: how many instances does a plotted point need?

The paper ran 5000 instances per point.  This benchmark quantifies how
many *paired* instances the reproduction needs for the mean completion-
time ratio to stabilize: it runs a pilot, sizes the required sample
with :func:`repro.analysis.required_instances`, and checks that the
recorded experiment scale (150 instances for Fig. 4) already puts the
CI half-width well under the smallest gap EXPERIMENTS.md discusses.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import mean_ci, paired_difference, required_instances
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

PILOT = 40
SEED = 63


def run_convergence(pilot: int = PILOT, seed: int = SEED) -> dict:
    spec = WORKLOAD_CELLS["small-layered-ep"]
    kg = np.empty(pilot)
    mqb = np.empty(pilot)
    for i in range(pilot):
        ss = np.random.SeedSequence([seed, i])
        inst, s1, s2 = ss.spawn(3)
        job, system = sample_instance(spec, np.random.default_rng(inst))
        kg[i] = simulate(
            job, system, make_scheduler("kgreedy"), rng=np.random.default_rng(s1)
        ).completion_time_ratio()
        mqb[i] = simulate(
            job, system, make_scheduler("mqb"), rng=np.random.default_rng(s2)
        ).completion_time_ratio()

    rows = []
    for name, data in (("kgreedy", kg), ("mqb", mqb)):
        ci = mean_ci(data)
        rows.append(
            [
                name,
                round(ci.estimate, 3),
                round(ci.half_width, 4),
                required_instances(data, 0.05),
                required_instances(data, 0.01),
            ]
        )
    cmp = paired_difference(mqb, kg)
    rows.append(
        [
            "mqb - kgreedy",
            round(cmp.mean_difference, 3),
            round(cmp.ci.half_width, 4),
            required_instances(mqb - kg, 0.05),
            required_instances(mqb - kg, 0.01),
        ]
    )
    return {
        "figure": "convergence",
        "title": "Instances needed for stable means (small layered EP pilot)",
        "kind": "table",
        "columns": [
            "series", "mean", "ci95 half-width (pilot)",
            "n for +-0.05", "n for +-0.01",
        ],
        "rows": rows,
        "config": {"pilot": pilot, "seed": seed},
    }


def test_convergence(benchmark, publish):
    result = benchmark.pedantic(run_convergence, rounds=1, iterations=1)
    publish(result)

    by_name = {row[0]: row for row in result["rows"]}
    # The recorded 150-instance runs comfortably cover +-0.05 for every
    # series, including the paired difference.
    for name in ("kgreedy", "mqb", "mqb - kgreedy"):
        assert by_name[name][3] <= 150, by_name
    # MQB's improvement is large and significant even at pilot size:
    # the difference dwarfs its own CI half-width.
    assert by_name["mqb - kgreedy"][1] < 0
    assert abs(by_name["mqb - kgreedy"][1]) > 5 * by_name["mqb - kgreedy"][2]
