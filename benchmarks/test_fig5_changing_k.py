"""Figure 5: varying the number of resource types K from 1 to 6.

Paper claims reproduced (Section V-D):

* KGreedy's average ratio grows as K increases (not necessarily
  linearly — Theorem 2 is a worst-case bound).
* Offline information flattens the degradation: MQB stays far closer
  to the lower bound at K = 6 than KGreedy does.
* At K = 1 (homogeneous) the algorithms essentially tie.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import run_fig5

from benchmarks.conftest import panel_by_name

N_INSTANCES = 8


def test_fig5(benchmark, publish):
    result = benchmark.pedantic(
        run_fig5, kwargs={"n_instances": N_INSTANCES}, rounds=1, iterations=1
    )
    publish(result)

    for panel in result["panels"]:
        kg = panel["series"]["kgreedy"]
        mqb = panel["series"]["mqb"]
        # K=1: near tie (within noise).
        assert abs(kg[0] - mqb[0]) < 0.30, (panel["name"], kg[0], mqb[0])
        # Growth: KGreedy at K=6 well above K=1.
        assert kg[5] > kg[0] + 0.15, (panel["name"], kg)
        # MQB stays below KGreedy for K >= 2.
        for i in range(1, 6):
            assert mqb[i] <= kg[i] + 0.05, (panel["name"], i)

    # EP panel: MQB close to optimal at every K (paper Fig. 5a).
    ep = panel_by_name(result, "small-layered-ep")
    assert max(ep["series"]["mqb"]) < 2.0

    # KGreedy's degradation is strongest where phases serialize: its
    # K=6 ratio on EP exceeds twice its K=1 ratio.
    assert ep["series"]["kgreedy"][5] > 1.6 * ep["series"]["kgreedy"][0]
