"""Lemma 1 benchmark: closed form == exact sum == Monte Carlo."""

from __future__ import annotations

import pytest

from repro.experiments.figures import run_lemma1


def test_lemma1(benchmark, publish):
    result = benchmark.pedantic(
        run_lemma1, kwargs={"n_instances": 20000}, rounds=1, iterations=1
    )
    publish(result)

    for n, r, closed, exact, mc in result["rows"]:
        assert closed == pytest.approx(exact, rel=1e-9), (n, r)
        assert mc == pytest.approx(closed, rel=0.05), (n, r)
