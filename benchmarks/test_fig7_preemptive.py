"""Figure 7: non-preemptive vs preemptive scheduling.

Paper claims reproduced (Section V-F): the preemptive version of each
algorithm performs comparably with (or slightly better than) its
non-preemptive counterpart, and preemption does **not** rescue online
scheduling — preemptive KGreedy still greatly exceeds the good offline
algorithms on layered workloads.
"""

from __future__ import annotations

from repro.experiments.figures import run_fig7

from benchmarks.conftest import series_means

N_INSTANCES = 6


def test_fig7(benchmark, publish):
    result = benchmark.pedantic(
        run_fig7, kwargs={"n_instances": N_INSTANCES}, rounds=1, iterations=1
    )
    publish(result)

    for panel in result["panels"]:
        means = series_means(panel)
        for alg in ("kgreedy", "lspan", "dtype", "maxdp", "shiftbt", "mqb"):
            np_mean = means[alg]
            p_mean = means[f"{alg} (P)"]
            # Comparable: preemption changes the ratio by < 20 %.
            assert abs(p_mean - np_mean) < 0.2 * np_mean + 0.1, (
                panel["name"], alg, np_mean, p_mean,
            )

    # Preemption does not fix online scheduling on layered EP/IR.
    for cell_label in ("small-layered-ep", "medium-layered-ir"):
        panel = next(p for p in result["panels"] if p["name"] == cell_label)
        means = series_means(panel)
        assert means["kgreedy (P)"] > 1.1 * means["mqb (P)"], (cell_label, means)
