"""Theorem 2 benchmark: the adversarial family defeats online scheduling.

Checks, per processor configuration:

* KGreedy's empirical expected ratio exceeds the finite-m form of the
  Theorem-2 lower bound (Inequality 3) — the construction works;
* it stays below the K+1 KGreedy guarantee — the upper bound holds;
* the finite-m bound is below the asymptotic bound.
"""

from __future__ import annotations

from repro.experiments.figures import run_thm2


def test_thm2(benchmark, publish):
    result = benchmark.pedantic(
        run_thm2, kwargs={"n_instances": 40}, rounds=1, iterations=1
    )
    publish(result)

    for p, m, empirical, bound_m, bound_inf, guarantee in result["rows"]:
        assert empirical >= bound_m - 0.1, (p, empirical, bound_m)
        assert empirical <= guarantee + 1e-9, (p, empirical, guarantee)
        assert bound_m <= bound_inf + 1e-9, (p, bound_m, bound_inf)
