"""Ablation: which of MQB's design choices carry its advantage?

DESIGN.md calls out three choices the paper leaves implicit; this
benchmark quantifies each on the workload where MQB's edge is largest
(small layered EP):

* **balance metric** — the paper's lexicographic order vs comparing
  only the minimum x-utilization vs maximizing the sum;
* **intra-round projection** — whether committed picks' descendant
  values project into the scoring of the same round's later picks;
* **lookahead scope** — full recursion vs one-step (also in Fig. 8).
"""

from __future__ import annotations

from repro.experiments.runner import run_comparison
from repro.workloads.generator import WORKLOAD_CELLS

N_INSTANCES = 15

VARIANTS = [
    "kgreedy",
    "mqb",
    "mqb[min]",
    "mqb[sum]",
    "mqb[nocarry]",
    "mqb+1step+pre",
]


def run_ablation(n_instances: int = N_INSTANCES, seed: int = 77) -> dict:
    panels = []
    for cell in ("small-layered-ep", "medium-layered-ir"):
        stats = run_comparison(WORKLOAD_CELLS[cell], VARIANTS, n_instances, seed)
        panels.append(
            {
                "name": cell,
                "label": cell,
                "series": [s.to_dict() for s in stats],
            }
        )
    return {
        "figure": "ablation-mqb",
        "title": "MQB design-choice ablation",
        "kind": "bars",
        "metric": "mean",
        "panels": panels,
        "config": {"n_instances": n_instances, "seed": seed},
    }


def test_ablation_mqb(benchmark, publish):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    publish(result)

    for panel in result["panels"]:
        means = {s["key"]: s["mean"] for s in panel["series"]}
        # Every variant retains an advantage over online KGreedy.
        for key, mean in means.items():
            if key != "kgreedy":
                assert mean < means["kgreedy"], (panel["name"], key, means)
        # The paper's lexicographic order is at least as good as "sum"
        # (sum maximization ignores the starved-queue bottleneck).
        assert means["mqb"] <= means["mqb[sum]"] + 0.05, (panel["name"], means)
