"""Cache integration with the sweep runners.

The correctness bar (ISSUE 4): cached and freshly-computed sweep
outputs must be **bit-identical** for serial and multiple worker
counts, and any fingerprint change must miss.  Equality below is
``==`` on :class:`SeriesStats` floats — never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments.parallel as parallel_mod
from repro.experiments.runner import run_comparison
from repro.experiments.robustness import run_robustness_comparison
from repro.obs.telemetry import Telemetry
from repro.resultcache.integrate import open_sweep_cache
from repro.resultcache.keys import comparison_fingerprint
from repro.resultcache.store import ResultStore
from repro.workloads.params import EPParams, IRParams, WorkloadSpec

TINY_EP = WorkloadSpec(
    "ep", "layered", "small",
    params=EPParams(branches_range=(3, 5), chain_length_range=(8, 12)),
)
TINY_IR = WorkloadSpec(
    "ir", "random", "small",
    params=IRParams(
        iterations_range=(2, 3), maps_range=(4, 8),
        reduces_range=(2, 3), fanin_range=(1, 2),
    ),
)
ALGS = ["kgreedy", "mqb", "lspan"]
N = 10
SEED = 411


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Enable the cache, rooted in a fresh per-test directory."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


def uncached_baseline(monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_CACHE", "0")
    try:
        return run_comparison(TINY_EP, ALGS, N, SEED, **kwargs)
    finally:
        monkeypatch.setenv("REPRO_CACHE", "1")


class TestBitIdentity:
    def test_cached_equals_uncached_serial_and_parallel(
        self, cache_dir, monkeypatch
    ):
        baseline = uncached_baseline(monkeypatch)
        # Cold (computes + persists) and warm (pure lookups), serial.
        assert run_comparison(TINY_EP, ALGS, N, SEED) == baseline
        assert run_comparison(TINY_EP, ALGS, N, SEED) == baseline
        # Warm under two different worker counts.
        assert run_comparison(TINY_EP, ALGS, N, SEED, n_workers=2) == baseline
        assert run_comparison(TINY_EP, ALGS, N, SEED, n_workers=4) == baseline

    def test_parallel_cold_then_warm_matches_uncached(
        self, cache_dir, monkeypatch
    ):
        baseline = uncached_baseline(monkeypatch)
        assert run_comparison(TINY_EP, ALGS, N, SEED, n_workers=3) == baseline
        assert run_comparison(TINY_EP, ALGS, N, SEED, n_workers=1) == baseline

    def test_preemptive_round_trip(self, cache_dir, monkeypatch):
        baseline = uncached_baseline(monkeypatch, preemptive=True)
        assert run_comparison(TINY_EP, ALGS, N, SEED, preemptive=True) == baseline
        assert run_comparison(TINY_EP, ALGS, N, SEED, preemptive=True) == baseline
        # Preemptive and non-preemptive sweeps never share entries.
        assert run_comparison(TINY_EP, ALGS, N, SEED) != baseline


class TestCounters:
    def test_cold_all_misses_then_warm_all_hits(self, cache_dir):
        cold = Telemetry()
        run_comparison(TINY_EP, ALGS, N, SEED, telemetry=cold)
        assert cold.counters["cache.misses"] == N
        assert cold.counters["cache.writes"] == N
        assert "cache.hits" not in cold.counters

        warm = Telemetry()
        run_comparison(TINY_EP, ALGS, N, SEED, telemetry=warm)
        assert warm.counters["cache.hits"] == N
        assert "cache.misses" not in warm.counters
        # Hits skip the engines entirely: no instances were sampled.
        assert "sweep.instances" not in warm.counters

    def test_warm_parallel_counts_hits_in_parent(self, cache_dir):
        run_comparison(TINY_EP, ALGS, N, SEED)
        warm = Telemetry()
        run_comparison(TINY_EP, ALGS, N, SEED, n_workers=2, telemetry=warm)
        assert warm.counters["cache.hits"] == N


class TestResume:
    def _delete_instances(self, indices):
        store = ResultStore()
        cache = open_sweep_cache(
            comparison_fingerprint(TINY_EP, tuple(ALGS), SEED, False, 1.0),
            len(ALGS),
        )
        for i in indices:
            store.path_for(cache.key_for(i)).unlink()

    @pytest.mark.parametrize("workers", [1, 2], ids=["serial", "pool"])
    def test_partial_cache_computes_only_the_holes(
        self, cache_dir, monkeypatch, workers
    ):
        baseline = uncached_baseline(monkeypatch)
        run_comparison(TINY_EP, ALGS, N, SEED)
        # Simulate an interrupted sweep: drop instances 3..5 and 8.
        self._delete_instances([3, 4, 5, 8])
        resumed = Telemetry()
        assert (
            run_comparison(TINY_EP, ALGS, N, SEED, n_workers=workers,
                           telemetry=resumed)
            == baseline
        )
        assert resumed.counters["cache.hits"] == N - 4
        assert resumed.counters["cache.misses"] == 4
        # The holes were re-persisted: next run is all hits.
        warm = Telemetry()
        run_comparison(TINY_EP, ALGS, N, SEED, telemetry=warm)
        assert warm.counters["cache.hits"] == N

    def test_growing_a_sweep_reuses_its_prefix(self, cache_dir):
        run_comparison(TINY_EP, ALGS, N, SEED)
        grown = Telemetry()
        run_comparison(TINY_EP, ALGS, N + 5, SEED, telemetry=grown)
        assert grown.counters["cache.hits"] == N
        assert grown.counters["cache.misses"] == 5


class TestHitsNeverForkWorkers:
    def test_all_hit_parallel_sweep_builds_no_pool(
        self, cache_dir, monkeypatch
    ):
        run_comparison(TINY_EP, ALGS, N, SEED)

        def forbidden(*args, **kwargs):
            raise AssertionError("pool built for an all-hit sweep")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", forbidden)
        warm = run_comparison(TINY_EP, ALGS, N, SEED, n_workers=4)
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert warm == run_comparison(TINY_EP, ALGS, N, SEED, n_workers=1)


class TestCorruptionRecovery:
    def test_corrupt_record_recomputes_instead_of_crashing(
        self, cache_dir, monkeypatch
    ):
        baseline = uncached_baseline(monkeypatch)
        run_comparison(TINY_EP, ALGS, N, SEED)
        cache = open_sweep_cache(
            comparison_fingerprint(TINY_EP, tuple(ALGS), SEED, False, 1.0),
            len(ALGS),
        )
        path = ResultStore().path_for(cache.key_for(2))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        telemetry = Telemetry()
        assert run_comparison(TINY_EP, ALGS, N, SEED, telemetry=telemetry) == baseline
        assert telemetry.counters["cache.invalidated"] == 1
        assert telemetry.counters["cache.hits"] == N - 1


class TestRobustnessIntegration:
    RATES = (0.0, 0.5)

    def _run(self, **kwargs):
        return run_robustness_comparison(
            TINY_IR, ("kgreedy", "mqb"), self.RATES, 6, seed=5, **kwargs
        )

    def test_cached_equals_uncached_all_worker_counts(
        self, cache_dir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE", "0")
        baseline = self._run()
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert self._run() == baseline                    # cold
        assert self._run() == baseline                    # warm serial
        assert self._run(n_workers=2) == baseline         # warm pool
        assert self._run(n_workers=3) == baseline

    def test_warm_robustness_is_all_hits(self, cache_dir):
        self._run()
        warm = Telemetry()
        self._run(telemetry=warm)
        assert warm.counters["cache.hits"] == 6
        assert "cache.misses" not in warm.counters

    def test_fault_seed_flip_misses(self, cache_dir):
        self._run()
        relabeled = Telemetry()
        self._run(fault_seed=99, telemetry=relabeled)
        assert relabeled.counters["cache.misses"] == 6
