"""Fingerprint invalidation: every dependency flip must change the key.

The cache is only sound if the key covers everything an instance
result depends on.  Each test below flips exactly one field of the
fingerprint and asserts the instance key changes — a stale hit after
any of these changes would silently serve wrong results.
"""

from __future__ import annotations

import pytest

import repro.resultcache.keys as keys
from repro.resultcache.keys import (
    comparison_fingerprint,
    decentral_fingerprint,
    energy_fingerprint,
    instance_key,
    robustness_fingerprint,
    workload_fingerprint,
)
from repro.workloads.params import EPParams, WorkloadSpec

SPEC = WorkloadSpec(
    "ep", "layered", "small",
    params=EPParams(branches_range=(3, 5), chain_length_range=(8, 12)),
)
ALGS = ("kgreedy", "mqb")


def base_key(**overrides) -> str:
    fields = dict(
        spec=SPEC, algorithms=ALGS, seed=7, preemptive=False, quantum=1.0
    )
    fields.update(overrides)
    instance = fields.pop("instance", 0)
    return instance_key(comparison_fingerprint(**fields), instance)


class TestComparisonKeyInvalidation:
    def test_stable_for_identical_inputs(self):
        assert base_key() == base_key()

    def test_workload_param_flip_misses(self):
        changed = WorkloadSpec(
            "ep", "layered", "small",
            params=EPParams(branches_range=(3, 6), chain_length_range=(8, 12)),
        )
        assert base_key(spec=changed) != base_key()

    @pytest.mark.parametrize(
        "changed",
        [
            WorkloadSpec("ep", "random", "small", params=SPEC.params),
            WorkloadSpec("ep", "layered", "medium", params=SPEC.params),
            SPEC.with_num_types(3),
            SPEC.with_skew(5),
        ],
        ids=["structure", "system", "num_types", "skew"],
    )
    def test_cell_shape_flip_misses(self, changed):
        assert base_key(spec=changed) != base_key()

    def test_scheduler_param_flip_misses(self):
        # Registry names encode scheduler parameters: the [min]
        # balance-metric ablation is a different algorithm.
        assert base_key(algorithms=("kgreedy", "mqb[min]")) != base_key()

    def test_scheduler_order_flip_misses(self):
        # Position matters: scheduler a draws from spawn child a+1.
        assert base_key(algorithms=("mqb", "kgreedy")) != base_key()

    def test_seed_flip_misses(self):
        assert base_key(seed=8) != base_key()

    def test_instance_index_flip_misses(self):
        assert base_key(instance=1) != base_key()

    def test_preemptive_flip_misses(self):
        assert base_key(preemptive=True) != base_key()

    def test_quantum_flip_misses_only_when_preemptive(self):
        assert base_key(preemptive=True, quantum=0.5) != base_key(
            preemptive=True, quantum=1.0
        )
        # The non-preemptive engine never reads the quantum.
        assert base_key(quantum=0.5) == base_key(quantum=1.0)

    def test_engine_rev_flip_misses(self, monkeypatch):
        before = base_key()
        monkeypatch.setattr(keys, "ENGINE_REV", keys.ENGINE_REV + 1)
        assert base_key() != before

    def test_numpy_major_flip_misses(self, monkeypatch):
        before = base_key()
        monkeypatch.setattr(keys, "NUMPY_MAJOR", keys.NUMPY_MAJOR + 1)
        assert base_key() != before

    @pytest.mark.parametrize("native", ["0", "1", "auto"])
    def test_native_backend_flip_hits(self, monkeypatch, native):
        # The compiled MQB kernel is bit-identical to numpy, so the
        # selection backend must NOT enter the fingerprint: a cache
        # written under one REPRO_NATIVE setting answers the other.
        before = base_key()
        monkeypatch.setenv("REPRO_NATIVE", native)
        assert base_key() == before


class TestDefaultsResolution:
    def test_none_params_equals_explicit_defaults(self):
        # Both sample identical instances, so they must share entries.
        implicit = WorkloadSpec("ep", "layered", "small")
        explicit = WorkloadSpec("ep", "layered", "small", params=EPParams())
        assert workload_fingerprint(implicit) == workload_fingerprint(explicit)


class TestRobustnessKeyInvalidation:
    def rb_key(self, **overrides) -> str:
        fields = dict(
            spec=SPEC, algorithms=ALGS, rates=(0.0, 0.5), seed=7,
            fault_seed=7, mttr_factor=0.25, horizon_factor=12.0,
            policy="restart",
        )
        fields.update(overrides)
        instance = fields.pop("instance", 0)
        return instance_key(robustness_fingerprint(**fields), instance)

    def test_stable(self):
        assert self.rb_key() == self.rb_key()

    @pytest.mark.parametrize(
        "override",
        [
            {"rates": (0.0, 1.0)},
            {"fault_seed": 8},
            {"mttr_factor": 0.5},
            {"horizon_factor": 6.0},
            {"policy": "checkpoint"},
            {"instance": 3},
        ],
        ids=["rates", "fault_seed", "mttr", "horizon", "policy", "instance"],
    )
    def test_field_flip_misses(self, override):
        assert self.rb_key(**override) != self.rb_key()

    def test_kind_separates_comparison_and_robustness(self):
        # Same cell/algorithms/seed, different sweep kind: never shared.
        assert self.rb_key() != base_key()


class TestDecentralKeyInvalidation:
    def dc_key(self, **overrides) -> str:
        fields = dict(
            spec=SPEC,
            algorithms=("kgreedy", "mqb", "dkgreedy", "dmqb"),
            p_per_type=16,
            seed=7,
            steal={"victims": "random", "amount": "one", "cost": 0.0},
        )
        fields.update(overrides)
        instance = fields.pop("instance", 0)
        return instance_key(decentral_fingerprint(**fields), instance)

    def test_stable(self):
        assert self.dc_key() == self.dc_key()

    @pytest.mark.parametrize(
        "override",
        [
            {"p_per_type": 64},
            {"seed": 8},
            {"instance": 3},
            {"steal": {"victims": "global", "amount": "one", "cost": 0.0}},
            {"steal": {"victims": "random", "amount": "half", "cost": 0.0}},
            {"steal": {"victims": "random", "amount": "one", "cost": 0.5}},
            {"algorithms": ("kgreedy", "mqb", "dkgreedy[half]", "dmqb[half]")},
        ],
        ids=[
            "p_per_type", "seed", "instance", "victims", "amount", "cost",
            "algorithm_names",
        ],
    )
    def test_field_flip_misses(self, override):
        assert self.dc_key(**override) != self.dc_key()

    def test_kind_separates_decentral_from_comparison(self):
        # Same cell/seed; the decentral sweep overrides the system with
        # an explicit (P,)*K, so sharing entries would be unsound.
        assert self.dc_key(algorithms=ALGS) != base_key()


def _power_types(**overrides) -> list[dict]:
    """Two-type power fingerprint with one field of one type overridden."""
    base = {
        "busy": 1.0, "idle": 0.3, "sleep": 0.0,
        "shutdown_window": None, "wake_latency": 0.0,
    }
    return [dict(base), {**base, **overrides}]


class TestEnergyKeyInvalidation:
    def en_key(self, **overrides) -> str:
        fields = dict(
            spec=SPEC,
            algorithms=("kgreedy", "mqb", "emqb[w=0.5]"),
            seed=7,
            power={"types": _power_types()},
            deadline_factor=1.5,
            energy_price_factor=0.1,
        )
        fields.update(overrides)
        instance = fields.pop("instance", 0)
        return instance_key(energy_fingerprint(**fields), instance)

    def test_stable(self):
        assert self.en_key() == self.en_key()

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 8},
            {"instance": 3},
            {"algorithms": ("kgreedy", "mqb", "emqb[w=1]")},
            {"algorithms": ("mqb", "kgreedy", "emqb[w=0.5]")},
            {"deadline_factor": 2.0},
            {"energy_price_factor": 0.2},
        ],
        ids=[
            "seed", "instance", "algorithm_names", "algorithm_order",
            "deadline_factor", "energy_price_factor",
        ],
    )
    def test_field_flip_misses(self, override):
        assert self.en_key(**override) != self.en_key()

    @pytest.mark.parametrize(
        "types_override",
        [
            {"busy": 2.0},
            {"idle": 0.2},
            {"sleep": 0.1, "idle": 0.3},
            {"shutdown_window": 4.0},
            {"shutdown_window": 0.0},       # 0.0 is not None
            {"wake_latency": 1.0},
        ],
        ids=[
            "busy", "idle", "sleep", "window_none_to_value",
            "window_none_to_zero", "wake_latency",
        ],
    )
    def test_every_power_field_flip_misses(self, types_override):
        # The power model is fingerprinted field-by-field per type: a
        # flip of any TypePower field of any single type must miss.
        changed = {"types": _power_types(**types_override)}
        assert self.en_key(power=changed) != self.en_key()

    def test_power_type_order_matters(self):
        a = {"types": _power_types(idle=0.6)}
        b = {"types": list(reversed(_power_types(idle=0.6)))}
        assert self.en_key(power=a) != self.en_key(power=b)

    def test_kind_separates_energy_from_comparison(self):
        # Same cell/algorithms/seed, different sweep kind: never shared.
        assert self.en_key(algorithms=ALGS) != base_key(algorithms=ALGS)
