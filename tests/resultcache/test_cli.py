"""The ``repro cache`` subcommand and the ``--no-cache`` escape hatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.resultcache.keys import ENGINE_REV
from repro.resultcache.store import ResultStore


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


def populate(cache_dir) -> ResultStore:
    store = ResultStore(cache_dir)
    store.put("a" * 64, {"engine_rev": ENGINE_REV, "kind": "comparison"}, np.ones(2))
    store.put("b" * 64, {"engine_rev": ENGINE_REV - 1, "kind": "comparison"}, np.ones(2))
    return store


class TestParser:
    def test_cache_actions_parse(self):
        parser = build_parser()
        for action in ("stats", "clear", "prune"):
            args = parser.parse_args(["cache", action])
            assert args.command == "cache" and args.action == action

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])

    def test_no_cache_flags(self):
        assert build_parser().parse_args(
            ["run", "fig4", "--no-cache"]
        ).no_cache
        assert build_parser().parse_args(
            ["profile", "fig4", "--no-cache"]
        ).no_cache


class TestActions:
    def test_stats_reports_store_contents(self, cache_dir, capsys):
        populate(cache_dir)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(cache_dir) in out
        assert "records:      2" in out
        assert "stale:        1" in out

    def test_clear_empties_store(self, cache_dir, capsys):
        store = populate(cache_dir)
        assert main(["cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert list(store.iter_record_paths()) == []

    def test_prune_keeps_current_rev(self, cache_dir, capsys):
        store = populate(cache_dir)
        assert main(["cache", "prune"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        remaining = list(store.iter_record_paths())
        assert len(remaining) == 1 and remaining[0].name.startswith("a")

    def test_dir_override_beats_env(self, cache_dir, tmp_path, capsys):
        populate(cache_dir)
        other = tmp_path / "elsewhere"
        assert main(["cache", "stats", "--dir", str(other)]) == 0
        assert "records:      0" in capsys.readouterr().out


class TestNoCacheFlag:
    def test_run_no_cache_writes_nothing(self, cache_dir, capsys):
        assert main(
            ["run", "fig6", "--instances", "1", "--quiet", "--no-cache"]
        ) == 0
        assert list(ResultStore(cache_dir).iter_record_paths()) == []

    def test_run_populates_cache_by_default(self, cache_dir, capsys):
        assert main(["run", "fig6", "--instances", "1", "--quiet"]) == 0
        assert len(list(ResultStore(cache_dir).iter_record_paths())) == 2
