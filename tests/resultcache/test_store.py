"""Store backend: exact round-trips, atomicity, corruption handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.resultcache.keys import ENGINE_REV, fingerprint_digest
from repro.resultcache.records import CacheRecordError, decode_record, encode_record
from repro.resultcache.store import (
    ResultStore,
    atomic_write_text,
    cache_enabled,
    default_cache_dir,
    open_store,
)
from repro.resultcache.stats import collect_stats


FIELDS = {"engine_rev": ENGINE_REV, "kind": "comparison", "instance": 0}


def a_key(i: int = 0) -> str:
    return fingerprint_digest({"test": i})


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


class TestRoundTrip:
    def test_bit_exact_floats(self, store):
        # Adversarial float64s: json repr must round-trip every bit.
        values = np.array(
            [1.0 / 3.0, 1e-308, 1.7976931348623157e308, np.pi, -0.0, 5e-324]
        )
        store.put(a_key(), FIELDS, values)
        column, status = store.lookup(a_key(), len(values))
        assert status == "hit"
        assert column.dtype == np.float64
        assert all(
            a == b and np.signbit(a) == np.signbit(b)
            for a, b in zip(column, values)
        )

    def test_missing_is_miss(self, store):
        column, status = store.lookup(a_key(99), 3)
        assert column is None and status == "miss"

    def test_record_is_self_describing(self, store):
        store.put(a_key(), FIELDS, np.ones(2))
        doc = json.loads(store.path_for(a_key()).read_text())
        assert doc["engine_rev"] == ENGINE_REV
        assert doc["fields"]["kind"] == "comparison"


class TestCorruption:
    def test_truncated_record_is_invalid_and_removed(self, store):
        store.put(a_key(), FIELDS, np.ones(4))
        path = store.path_for(a_key())
        path.write_text(path.read_text()[:20])
        column, status = store.lookup(a_key(), 4)
        assert column is None and status == "invalid"
        assert not path.exists(), "corrupt record should be unlinked"
        # Subsequent lookups are clean misses.
        assert store.lookup(a_key(), 4) == (None, "miss")

    def test_wrong_row_count_is_invalid(self, store):
        store.put(a_key(), FIELDS, np.ones(4))
        assert store.lookup(a_key(), 5) == (None, "invalid")

    def test_key_mismatch_is_invalid(self, store):
        # A record copied to the wrong address must not be served.
        store.put(a_key(0), FIELDS, np.ones(2))
        other = a_key(1)
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.path_for(a_key(0)).read_text())
        assert store.lookup(other, 2) == (None, "invalid")

    def test_decode_rejects_non_object(self):
        with pytest.raises(CacheRecordError):
            decode_record("[1, 2]", "k", 2)
        with pytest.raises(CacheRecordError):
            decode_record(
                encode_record("k", FIELDS, np.ones(2)).replace('"v":1', '"v":99'),
                "k",
                2,
            )


class TestAtomicWrite:
    def test_no_temp_residue(self, store, tmp_path):
        store.put(a_key(), FIELDS, np.ones(2))
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_failure_preserves_previous_content(self, tmp_path):
        # A crash mid-write (here: a non-str payload failing inside the
        # file write) must leave the published file untouched and no
        # temp residue behind.
        target = tmp_path / "doc.json"
        target.write_text("previous")
        with pytest.raises(TypeError):
            atomic_write_text(target, 12345)  # type: ignore[arg-type]
        assert target.read_text() == "previous"
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".doc.json.*")) == []


class TestMaintenance:
    def test_clear_removes_everything(self, store):
        for i in range(3):
            store.put(a_key(i), FIELDS, np.ones(2))
        assert store.clear() == 3
        assert list(store.iter_record_paths()) == []

    def test_prune_drops_stale_and_unreadable_only(self, store):
        store.put(a_key(0), FIELDS, np.ones(2))
        store.put(a_key(1), {**FIELDS, "engine_rev": ENGINE_REV + 1}, np.ones(2))
        garbled = store.path_for(a_key(2))
        garbled.parent.mkdir(parents=True, exist_ok=True)
        garbled.write_text("{not json")
        assert store.prune() == 2
        assert store.lookup(a_key(0), 2)[1] == "hit"

    def test_stats_buckets(self, store):
        store.put(a_key(0), FIELDS, np.ones(2))
        store.put(a_key(1), {**FIELDS, "engine_rev": ENGINE_REV + 1}, np.ones(2))
        stats = collect_stats(store)
        assert stats.records == 2
        assert stats.by_engine_rev == {ENGINE_REV: 1, ENGINE_REV + 1: 1}
        assert stats.stale == 1
        assert stats.total_bytes > 0


class TestEnvironment:
    def test_disabled_by_falsy_env(self, monkeypatch):
        for value in ("0", "false", "OFF", "no"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert not cache_enabled()
            assert open_store() is None

    def test_enabled_by_default_and_truthy(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert cache_enabled()

    def test_cache_dir_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        assert default_cache_dir() == tmp_path / "here"
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "results"
