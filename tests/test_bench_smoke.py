"""Tier-1 smoke run of the engine microbenchmarks.

Runs ``benchmarks/test_engine_perf.py`` as a subprocess in single-round
mode (``--benchmark-min-rounds=1`` with a tight max-time) so the tier-1
suite catches import errors, fixture breakage or crashes in the perf
harness without paying for statistically meaningful timings — those are
collected separately by ``scripts/bench_baseline.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.slow
def test_engine_benchmarks_smoke():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/test_engine_perf.py",
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable-gc",
            "--benchmark-min-rounds=1",
            "--benchmark-max-time=0.1",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"benchmark smoke run failed\n--- stdout ---\n{proc.stdout}"
        f"\n--- stderr ---\n{proc.stderr}"
    )
