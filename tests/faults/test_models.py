"""Unit tests for fault models and timelines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.faults.models import (
    FAULT_MODELS,
    CorrelatedRackFaults,
    ExponentialFaults,
    FaultTimeline,
    MaintenanceWindows,
    NoFaults,
    Outage,
    make_fault_model,
)
from repro.system.resources import ResourceConfig


class TestOutage:
    def test_duration(self):
        assert Outage(0, 1, 2.0, 5.0).duration == 3.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            Outage(0, 0, -1.0, 2.0)

    @pytest.mark.parametrize("start,end", [(1.0, 1.0), (2.0, 1.0)])
    def test_nonpositive_duration_rejected(self, start, end):
        with pytest.raises(ValidationError, match="non-positive"):
            Outage(0, 0, start, end)


class TestFaultTimeline:
    def test_empty(self):
        t = FaultTimeline()
        assert t.is_empty
        assert t.n_outages == 0
        assert t.total_downtime() == 0.0
        assert t.down_intervals(0, 0) == []

    def test_merges_overlapping_and_touching(self):
        t = FaultTimeline(
            [
                Outage(0, 0, 1.0, 3.0),
                Outage(0, 0, 2.0, 4.0),  # overlaps
                Outage(0, 0, 4.0, 5.0),  # touches
                Outage(0, 0, 7.0, 8.0),  # separate
            ]
        )
        assert t.down_intervals(0, 0) == [(1.0, 5.0), (7.0, 8.0)]
        assert t.n_outages == 2

    def test_per_processor_isolation(self):
        t = FaultTimeline([Outage(0, 0, 1.0, 2.0), Outage(1, 0, 1.0, 2.0)])
        assert t.down_intervals(0, 0) == [(1.0, 2.0)]
        assert t.down_intervals(0, 1) == []
        assert t.total_downtime() == 2.0
        assert t.total_downtime(alpha=1) == 1.0

    def test_is_down_half_open(self):
        t = FaultTimeline([Outage(0, 0, 1.0, 2.0)])
        assert not t.is_down(0, 0, 0.5)
        assert t.is_down(0, 0, 1.0)  # closed at the failure instant
        assert t.is_down(0, 0, 1.5)
        assert not t.is_down(0, 0, 2.0)  # open at the repair instant

    def test_events_sorted_repair_before_fail(self):
        # One processor repairs exactly when another fails: the repair
        # must come first so capacity nets out within the instant.
        t = FaultTimeline([Outage(0, 0, 0.5, 2.0), Outage(0, 1, 2.0, 3.0)])
        ev = t.events()
        assert ev[0] == (0.5, "fail", 0, 0)
        assert ev[1] == (2.0, "repair", 0, 0)
        assert ev[2] == (2.0, "fail", 0, 1)

    def test_iter_yields_outages(self):
        t = FaultTimeline([Outage(1, 0, 1.0, 2.0), Outage(0, 0, 0.0, 1.0)])
        got = [(o.alpha, o.proc, o.start, o.end) for o in t]
        assert got == [(0, 0, 0.0, 1.0), (1, 0, 1.0, 2.0)]

    def test_check_procs(self):
        res = ResourceConfig((2, 1))
        FaultTimeline([Outage(1, 0, 0.0, 1.0)]).check_procs(res)
        with pytest.raises(ValidationError, match="references type"):
            FaultTimeline([Outage(5, 0, 0.0, 1.0)]).check_procs(res)
        with pytest.raises(ValidationError, match="only 1 processors"):
            FaultTimeline([Outage(1, 1, 0.0, 1.0)]).check_procs(res)


class TestExponentialFaults:
    def test_reproducible(self):
        res = ResourceConfig((2, 2))
        model = ExponentialFaults(mtbf=5.0, mttr=1.0)
        a = model.sample(res, 100.0, np.random.default_rng(3))
        b = model.sample(res, 100.0, np.random.default_rng(3))
        assert list(a) == list(b)
        assert a.n_outages > 0

    def test_infinite_mtbf_disables_failures(self):
        model = ExponentialFaults(mtbf=math.inf, mttr=1.0)
        t = model.sample(ResourceConfig((2,)), 100.0, np.random.default_rng(0))
        assert t.is_empty

    def test_no_failure_starts_at_or_after_horizon(self):
        model = ExponentialFaults(mtbf=0.5, mttr=0.1)
        t = model.sample(ResourceConfig((3,)), 10.0, np.random.default_rng(1))
        assert all(o.start < 10.0 for o in t)

    @pytest.mark.parametrize("mtbf,mttr", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_bad_params(self, mtbf, mttr):
        with pytest.raises(ConfigurationError):
            ExponentialFaults(mtbf=mtbf, mttr=mttr)

    def test_bad_horizon(self):
        model = ExponentialFaults(mtbf=1.0, mttr=1.0)
        with pytest.raises(ConfigurationError, match="horizon"):
            model.sample(ResourceConfig((1,)), 0.0, np.random.default_rng(0))


class TestMaintenanceWindows:
    def test_deterministic_periodic(self):
        model = MaintenanceWindows(period=10.0, duration=2.0, offset=1.0)
        t = model.sample(ResourceConfig((1,)), 25.0, np.random.default_rng(0))
        assert t.down_intervals(0, 0) == [(1.0, 3.0), (11.0, 13.0), (21.0, 23.0)]

    def test_stagger_shifts_by_global_index(self):
        model = MaintenanceWindows(period=10.0, duration=1.0, stagger=2.0)
        t = model.sample(ResourceConfig((1, 1)), 5.0, np.random.default_rng(0))
        # Global type-major indices 0 and 1 -> first windows at 0 and 2.
        assert t.down_intervals(0, 0)[0] == (0.0, 1.0)
        assert t.down_intervals(1, 0)[0] == (2.0, 3.0)

    def test_duration_must_be_below_period(self):
        with pytest.raises(ConfigurationError, match="period"):
            MaintenanceWindows(period=2.0, duration=2.0)


class TestCorrelatedRackFaults:
    def test_rack_members_share_outages(self):
        model = CorrelatedRackFaults(rack_size=2, mtbf=2.0, mttr=1.0)
        t = model.sample(ResourceConfig((2, 2)), 50.0, np.random.default_rng(5))
        # Rack 0 = global procs 0,1 = (0,0),(0,1); rack 1 = (1,0),(1,1).
        assert t.down_intervals(0, 0) == t.down_intervals(0, 1)
        assert t.down_intervals(1, 0) == t.down_intervals(1, 1)
        assert t.n_outages > 0

    def test_rack_can_span_type_boundary(self):
        model = CorrelatedRackFaults(rack_size=2, mtbf=2.0, mttr=1.0)
        t = model.sample(ResourceConfig((1, 1)), 50.0, np.random.default_rng(5))
        assert t.down_intervals(0, 0) == t.down_intervals(1, 0)


class TestRegistry:
    def test_all_names_construct(self):
        kwargs = {
            "none": {},
            "exponential": {"mtbf": 1.0, "mttr": 1.0},
            "maintenance": {"period": 2.0, "duration": 1.0},
            "rack": {"rack_size": 2, "mtbf": 1.0, "mttr": 1.0},
        }
        for name in FAULT_MODELS:
            assert make_fault_model(name, **kwargs[name]) is not None

    def test_none_samples_empty(self):
        t = NoFaults().sample(ResourceConfig((2,)), 10.0, np.random.default_rng(0))
        assert t.is_empty

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown fault model"):
            make_fault_model("cosmic-rays")
