"""Acceptance: with λ=0 the fault engine IS the fault-free engine.

``simulate_with_faults`` with no timeline must perform the same
sequence of scheduler calls, float operations and heap pops as
``simulate`` — makespans and decision counts bit-for-bit equal, for
every scheduler on every workload cell of the comparison suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.engine import simulate_with_faults
from repro.faults.models import FaultTimeline, NoFaults
from repro.schedulers.registry import PAPER_ALGORITHMS, make_scheduler
from repro.sim.engine import simulate
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

N_INSTANCES = 2


@pytest.mark.slow
@pytest.mark.parametrize("cell", sorted(WORKLOAD_CELLS))
@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
def test_lambda_zero_is_bit_identical(cell, name):
    for i in range(N_INSTANCES):
        ss = np.random.SeedSequence([99, i])
        inst, alg = ss.spawn(2)
        job, system = sample_instance(
            WORKLOAD_CELLS[cell], np.random.default_rng(inst)
        )
        base = simulate(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(alg), record_trace=True,
        )
        faulty = simulate_with_faults(
            job, system, make_scheduler(name),
            timeline=None, rng=np.random.default_rng(alg), record_trace=True,
        )
        assert faulty.makespan == base.makespan  # exact, no tolerance
        assert faulty.decisions == base.decisions
        assert faulty.kills == 0 and faulty.wasted_work == 0.0
        # The fault engine records a segment at completion (it may yet
        # be killed), the fault-free one at dispatch — same segments,
        # different order.
        assert sorted(
            (s.task, s.alpha, s.proc, s.start, s.end) for s in faulty.trace
        ) == sorted((s.task, s.alpha, s.proc, s.start, s.end) for s in base.trace)


def test_empty_timeline_equivalent_to_none():
    job, system = sample_instance(
        WORKLOAD_CELLS["small-layered-ep"], np.random.default_rng(0)
    )
    a = simulate_with_faults(job, system, make_scheduler("mqb"), timeline=None)
    b = simulate_with_faults(
        job, system, make_scheduler("mqb"), timeline=FaultTimeline()
    )
    c = simulate_with_faults(
        job, system, make_scheduler("mqb"),
        timeline=NoFaults().sample(system, 10.0, np.random.default_rng(0)),
    )
    assert a.makespan == b.makespan == c.makespan
