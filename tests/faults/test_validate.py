"""Unit tests for the fault-run legality checker."""

from __future__ import annotations

import pytest

from repro import KDag, ResourceConfig
from repro.errors import ValidationError
from repro.faults.models import FaultTimeline, Outage
from repro.faults.validate import (
    check_no_downtime_overlap,
    validate_fault_schedule,
)
from repro.sim.trace import ScheduleTrace


@pytest.fixture
def job():
    return KDag(types=[0], work=[4.0], num_types=1)


@pytest.fixture
def system():
    return ResourceConfig((1,))


TIMELINE = FaultTimeline([Outage(0, 0, 2.0, 3.0)])


def restart_trace():
    # Killed [0,2), full rerun [3,7): a legal "restart" run.
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 2.0, killed=True)
    t.add(0, 0, 0, 3.0, 7.0)
    return t


def checkpoint_trace():
    # Killed [0,2) counts: 2 remaining units run in [3,5).
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 2.0, killed=True)
    t.add(0, 0, 0, 3.0, 5.0)
    return t


class TestAccepts:
    def test_restart_run(self, job, system):
        validate_fault_schedule(
            job, system, restart_trace(), TIMELINE,
            makespan=7.0, policy="restart",
        )

    def test_checkpoint_run(self, job, system):
        validate_fault_schedule(
            job, system, checkpoint_trace(), TIMELINE,
            makespan=5.0, policy="checkpoint",
        )

    def test_kill_boundary_is_legal(self):
        # Segment ending exactly at the failure instant and one starting
        # exactly at the repair instant do not overlap the outage.
        trace = ScheduleTrace()
        trace.add(0, 0, 0, 1.0, 2.0)
        trace.add(1, 0, 0, 3.0, 4.0)
        check_no_downtime_overlap(trace, TIMELINE)


class TestRejects:
    def test_execution_during_downtime(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 4.0)  # straddles the [2, 3) outage
        with pytest.raises(ValidationError, match="during its down interval"):
            validate_fault_schedule(job, system, t, TIMELINE, policy="checkpoint")

    def test_two_surviving_segments(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(0, 0, 0, 3.0, 5.0)
        with pytest.raises(ValidationError, match="surviving segments"):
            validate_fault_schedule(job, system, t, TIMELINE)

    def test_restart_does_not_credit_killed_work(self, job, system):
        # Legal under checkpoint, under-executed under restart.
        t = checkpoint_trace()
        validate_fault_schedule(job, system, t, TIMELINE, policy="checkpoint")
        with pytest.raises(ValidationError, match="credited 2 units"):
            validate_fault_schedule(job, system, t, TIMELINE, policy="restart")

    def test_checkpoint_counts_killed_work(self, job, system):
        # The restart trace over-executes under checkpoint (2+4 > 4).
        with pytest.raises(ValidationError, match="credited 6 units"):
            validate_fault_schedule(
                job, system, restart_trace(), TIMELINE, policy="checkpoint"
            )

    def test_precedence_against_surviving_completion(self, system):
        job = KDag(types=[0, 0], work=[2.0, 1.0], edges=[(0, 1)], num_types=1)
        sys2 = ResourceConfig((2,))
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0, killed=True)
        t.add(0, 0, 0, 1.0, 3.0)
        t.add(1, 0, 1, 2.0, 3.0)  # starts before parent's completion at 3
        with pytest.raises(ValidationError, match="before its"):
            validate_fault_schedule(job, sys2, t, FaultTimeline())

    def test_killed_segment_still_occupies_processor(self, system):
        job = KDag(types=[0, 0], work=[4.0, 1.0], num_types=1)
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0, killed=True)
        t.add(0, 0, 0, 3.0, 7.0)
        t.add(1, 0, 0, 1.0, 2.0)  # overlaps the killed segment
        with pytest.raises(ValidationError, match="overlaps"):
            validate_fault_schedule(job, ResourceConfig((1,)), t, TIMELINE)

    def test_unknown_policy(self, job, system):
        with pytest.raises(ValidationError, match="unknown fault policy"):
            validate_fault_schedule(
                job, system, restart_trace(), TIMELINE, policy="hope"
            )

    def test_makespan_mismatch(self, job, system):
        with pytest.raises(ValidationError, match="makespan"):
            validate_fault_schedule(
                job, system, restart_trace(), TIMELINE, makespan=9.0
            )

    def test_timeline_outside_resources(self, job):
        with pytest.raises(ValidationError, match="only 1 processors"):
            validate_fault_schedule(
                job, ResourceConfig((1,)), restart_trace(),
                FaultTimeline([Outage(0, 3, 0.0, 1.0)]),
            )
