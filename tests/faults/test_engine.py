"""Unit tests for the fault-aware simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, make_scheduler
from repro.errors import ConfigurationError, SchedulingError
from repro.faults.engine import simulate_with_faults
from repro.faults.models import FaultTimeline, MaintenanceWindows, Outage
from repro.faults.validate import validate_fault_schedule
from repro.schedulers.kgreedy import KGreedy


def one_task_job(work: float = 4.0) -> KDag:
    return KDag(types=[0], work=[work], num_types=1)


class TestKillAndRecover:
    """One task of work 4 on one processor that dies during [2, 3)."""

    TIMELINE = FaultTimeline([Outage(0, 0, 2.0, 3.0)])

    def test_restart_reexecutes_from_scratch(self):
        res = simulate_with_faults(
            one_task_job(), ResourceConfig((1,)), make_scheduler("kgreedy"),
            self.TIMELINE, policy="restart", record_trace=True,
        )
        # Killed at 2 (2 units wasted), processor back at 3, full rerun.
        assert res.makespan == 7.0
        assert res.kills == 1
        assert res.wasted_work == 2.0
        killed = [s for s in res.trace if s.killed]
        assert [(s.start, s.end) for s in killed] == [(0.0, 2.0)]
        survivors = [s for s in res.trace if not s.killed]
        assert [(s.start, s.end) for s in survivors] == [(3.0, 7.0)]

    def test_checkpoint_resumes_remaining_work(self):
        res = simulate_with_faults(
            one_task_job(), ResourceConfig((1,)), make_scheduler("kgreedy"),
            self.TIMELINE, policy="checkpoint", record_trace=True,
        )
        # 2 of 4 units survive the kill; only 2 remain after repair.
        assert res.makespan == 5.0
        assert res.kills == 1
        assert res.wasted_work == 0.0
        survivors = [s for s in res.trace if not s.killed]
        assert [(s.start, s.end) for s in survivors] == [(3.0, 5.0)]

    @pytest.mark.parametrize("policy", ["restart", "checkpoint"])
    def test_traces_validate(self, policy):
        res = simulate_with_faults(
            one_task_job(), ResourceConfig((1,)), make_scheduler("kgreedy"),
            self.TIMELINE, policy=policy, record_trace=True,
        )
        validate_fault_schedule(
            one_task_job(), ResourceConfig((1,)), res.trace,
            self.TIMELINE, makespan=res.makespan, policy=policy,
        )


class TestEventOrdering:
    def test_completion_at_failure_instant_wins(self):
        # Task finishes at exactly t=2, the failure instant: completions
        # resolve before failures, so nothing is killed.
        timeline = FaultTimeline([Outage(0, 0, 2.0, 3.0)])
        res = simulate_with_faults(
            one_task_job(work=2.0), ResourceConfig((1,)),
            make_scheduler("kgreedy"), timeline,
        )
        assert res.makespan == 2.0
        assert res.kills == 0

    def test_outage_at_time_zero_delays_start(self):
        timeline = FaultTimeline([Outage(0, 0, 0.0, 1.0)])
        res = simulate_with_faults(
            one_task_job(work=1.0), ResourceConfig((1,)),
            make_scheduler("kgreedy"), timeline,
        )
        assert res.makespan == 2.0
        assert res.kills == 0

    def test_idle_processor_failure_kills_nothing(self):
        timeline = FaultTimeline([Outage(0, 1, 0.5, 1.5)])
        res = simulate_with_faults(
            one_task_job(work=4.0), ResourceConfig((2,)),
            make_scheduler("kgreedy"), timeline,
        )
        # The engine dispatches to proc 0 first; proc 1's outage is moot.
        assert res.makespan == 4.0
        assert res.kills == 0

    def test_back_to_back_outage_only_kills_once(self):
        # Adjacent outages merge into one down interval at construction.
        timeline = FaultTimeline(
            [Outage(0, 0, 1.0, 2.0), Outage(0, 0, 2.0, 3.0)]
        )
        res = simulate_with_faults(
            one_task_job(work=2.0), ResourceConfig((1,)),
            make_scheduler("kgreedy"), timeline, policy="checkpoint",
        )
        assert res.kills == 1
        assert res.makespan == 4.0  # 1 done, down [1,3), 1 remaining


class TestSchedulerInteraction:
    def test_capacity_changed_hook_sees_up_counts(self):
        calls: list[tuple[int, int, float]] = []

        class Spy(KGreedy):
            def capacity_changed(self, alpha, up, time):
                calls.append((alpha, up, time))

        timeline = FaultTimeline([Outage(0, 1, 0.5, 1.5)])
        simulate_with_faults(
            one_task_job(work=4.0), ResourceConfig((2,)), Spy(), timeline
        )
        assert calls == [(0, 1, 0.5), (0, 2, 1.5)]

    def test_victim_reenters_ready_pool_and_runs_elsewhere(self):
        # Two procs; proc 0 dies mid-task and never comes back within
        # the run, so the victim must restart on proc 1.
        job = KDag(types=[0], work=[4.0], num_types=1)
        timeline = FaultTimeline([Outage(0, 0, 2.0, 100.0)])
        res = simulate_with_faults(
            job, ResourceConfig((2,)), make_scheduler("kgreedy"),
            timeline, record_trace=True,
        )
        assert res.makespan == 6.0
        survivor = next(s for s in res.trace if not s.killed)
        assert survivor.proc == 1


class TestGuards:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown fault policy"):
            simulate_with_faults(
                one_task_job(), ResourceConfig((1,)),
                make_scheduler("kgreedy"), policy="pray",
            )

    def test_timeline_procs_checked(self):
        timeline = FaultTimeline([Outage(0, 7, 1.0, 2.0)])
        with pytest.raises(Exception, match="only 1 processors"):
            simulate_with_faults(
                one_task_job(), ResourceConfig((1,)),
                make_scheduler("kgreedy"), timeline,
            )

    def test_livelock_guard_trips(self):
        # Up-windows of 0.5 can never fit a task of work 2.
        model = MaintenanceWindows(period=1.0, duration=0.5, offset=0.5)
        timeline = model.sample(
            ResourceConfig((1,)), 10_000.0, np.random.default_rng(0)
        )
        with pytest.raises(SchedulingError, match="livelock guard"):
            simulate_with_faults(
                one_task_job(work=2.0), ResourceConfig((1,)),
                make_scheduler("kgreedy"), timeline, max_kills=25,
            )

    def test_stall_reports_down_processors(self):
        # A scheduler that refuses to dispatch with nothing running and
        # no future events left: the stall error names the down counts.
        class Refuser(KGreedy):
            def pending(self, alpha):
                return False

        with pytest.raises(SchedulingError, match="down processors per type"):
            simulate_with_faults(
                one_task_job(), ResourceConfig((1,)), Refuser()
            )


class TestResultShape:
    def test_fault_result_extends_schedule_result(self):
        timeline = FaultTimeline([Outage(0, 0, 2.0, 3.0)])
        res = simulate_with_faults(
            one_task_job(), ResourceConfig((1,)), make_scheduler("kgreedy"),
            timeline, policy="checkpoint",
        )
        assert res.scheduler == "kgreedy"
        assert res.policy == "checkpoint"
        assert res.timeline is timeline
        assert res.completion_time_ratio() >= 1.0

    def test_none_timeline_normalized_to_empty(self):
        res = simulate_with_faults(
            one_task_job(), ResourceConfig((1,)), make_scheduler("kgreedy")
        )
        assert res.timeline.is_empty
        assert res.kills == 0
        assert res.wasted_work == 0.0
