"""Unit tests for robustness metrics."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults.metrics import (
    goodput,
    makespan_inflation,
    waste_fraction,
    wasted_work,
)
from repro.sim.trace import ScheduleTrace


def mixed_trace():
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 2.0, killed=True)  # 2 wasted
    t.add(0, 0, 0, 3.0, 7.0)               # 4 surviving
    t.add(1, 0, 1, 0.0, 1.0)               # 1 surviving
    return t


class TestWastedWork:
    def test_sums_killed_durations(self):
        assert wasted_work(mixed_trace()) == 2.0

    def test_zero_without_kills(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        assert wasted_work(t) == 0.0

    def test_empty_trace(self):
        assert wasted_work(ScheduleTrace()) == 0.0


class TestGoodput:
    def test_surviving_work_per_unit_time(self):
        assert goodput(mixed_trace()) == pytest.approx(5.0 / 7.0)

    def test_explicit_makespan(self):
        assert goodput(mixed_trace(), makespan=10.0) == pytest.approx(0.5)

    def test_zero_length_schedule_rejected(self):
        with pytest.raises(ValidationError, match="zero length"):
            goodput(ScheduleTrace())


class TestWasteFraction:
    def test_ratio(self):
        assert waste_fraction(mixed_trace()) == pytest.approx(2.0 / 7.0)

    def test_empty_trace_is_zero(self):
        assert waste_fraction(ScheduleTrace()) == 0.0


class TestInflation:
    def test_ratio(self):
        assert makespan_inflation(7.0, 5.0) == pytest.approx(1.4)

    def test_fault_free_run_is_one(self):
        assert makespan_inflation(5.0, 5.0) == 1.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValidationError, match="must be > 0"):
            makespan_inflation(7.0, 0.0)
