"""Bit-identity of the batched lockstep engine vs the scalar engine.

The batch engine's contract (``repro/sim/batch.py``) is *exact*
per-instance reproduction of :func:`repro.sim.engine.simulate` — same
makespans, same traces down to processor ids and segment order, same
decision counts — or an explicit scalar fallback.  These tests assert
that contract for every registered scheduler on two workload cells,
plus the ragged-batch and single-instance edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    available_schedulers,
    make_scheduler,
    simulate,
    validate_schedule,
)
from repro.errors import SchedulingError
from repro.obs.telemetry import Telemetry
from repro.sim.batch import batch_supported, simulate_batch, simulate_batch_grid
from repro.workloads.generator import WORKLOAD_CELLS, sample_instance

CELLS = ("small-layered-ep", "small-random-ep")
N_BATCH = 4


def _instances(cell: str, n: int = N_BATCH, salt: int = 0):
    """n deterministic (job, resources) pairs from one workload cell."""
    out = []
    for i in range(n):
        rng = np.random.default_rng(np.random.SeedSequence([99, salt, i]))
        out.append(sample_instance(WORKLOAD_CELLS[cell], rng))
    return out


def _rng_pair(i: int):
    """Two generators with identical streams (scalar run vs batch run)."""
    ss = np.random.SeedSequence([7, i])
    return np.random.default_rng(ss), np.random.default_rng(ss)


def _assert_identical(scalar_res, batch_res, job, resources):
    assert batch_res.makespan == scalar_res.makespan
    assert batch_res.decisions == scalar_res.decisions
    assert batch_res.scheduler == scalar_res.scheduler
    assert batch_res.lower_bound() == scalar_res.lower_bound()
    s_cols = scalar_res.trace.as_columns()
    b_cols = batch_res.trace.as_columns()
    for name in s_cols:
        np.testing.assert_array_equal(
            np.asarray(s_cols[name]), np.asarray(b_cols[name]), err_msg=name
        )
    validate_schedule(job, resources, batch_res.trace, batch_res.makespan)


@pytest.mark.parametrize("cell", CELLS)
@pytest.mark.parametrize("name", available_schedulers())
def test_every_scheduler_bit_identical(name: str, cell: str):
    """Per-instance equality with the scalar path for each scheduler.

    Covers both engine paths: natively batched schedulers exercise the
    lockstep loop, unsupported ones exercise the scalar fallback — the
    result must be indistinguishable either way.  The scalar reference
    is ``dispatch_simulate``: ``simulate()`` for centralized schedulers
    and the work-stealing engine for the decentral ones, mirroring the
    batch engine's own fallback routing.
    """
    from repro.decentral import dispatch_simulate

    instances = _instances(cell)
    scalar_rngs, batch_rngs = zip(*(_rng_pair(i) for i in range(len(instances))))
    scalar = [
        dispatch_simulate(job, res, make_scheduler(name), rng=rng, record_trace=True)
        for (job, res), rng in zip(instances, scalar_rngs)
    ]
    batch = simulate_batch(
        instances, make_scheduler(name), rngs=list(batch_rngs), record_trace=True
    )
    assert len(batch) == len(instances)
    for (job, res), s_res, b_res in zip(instances, scalar, batch):
        _assert_identical(s_res, b_res, job, res)


def test_ragged_batch():
    """Rows of different task counts and systems advance independently."""
    instances = _instances("small-layered-ep", n=3) + _instances(
        "small-random-ep", n=3, salt=1
    )
    sizes = {job.n_tasks for job, _ in instances}
    assert len(sizes) > 1, "cells should yield distinct task counts"
    for name in ("kgreedy", "lspan", "mqb"):
        batch = simulate_batch(instances, make_scheduler(name), record_trace=True)
        for (job, res), b_res in zip(instances, batch):
            s_res = simulate(job, res, make_scheduler(name), record_trace=True)
            _assert_identical(s_res, b_res, job, res)


def test_single_instance_batch():
    """N=1 is a legal (if pointless) batch."""
    (job, res), = _instances("small-layered-ep", n=1)
    for name in ("kgreedy", "mqb", "shiftbt"):
        b_res, = simulate_batch([(job, res)], make_scheduler(name), record_trace=True)
        s_res = simulate(job, res, make_scheduler(name), record_trace=True)
        _assert_identical(s_res, b_res, job, res)


def test_empty_batch():
    assert simulate_batch([], make_scheduler("kgreedy")) == []


def test_grid_stacks_schedulers():
    """simulate_batch_grid returns results[scheduler][instance]."""
    instances = _instances("small-layered-ep")
    names = ("kgreedy", "lspan", "mqb")
    grid = simulate_batch_grid(instances, [make_scheduler(n) for n in names])
    assert len(grid) == len(names)
    for name, row in zip(names, grid):
        for (job, res), b_res in zip(instances, row):
            s_res = simulate(job, res, make_scheduler(name))
            assert b_res.makespan == s_res.makespan
            assert b_res.scheduler == name


def test_grid_rejects_misshapen_rngs():
    instances = _instances("small-layered-ep", n=2)
    with pytest.raises(SchedulingError, match="rngs"):
        simulate_batch_grid(
            instances,
            [make_scheduler("kgreedy")],
            rngs=[[np.random.default_rng(0)]],  # 1 rng for 2 instances
        )


def test_batch_supported_classification():
    (job, res), = _instances("small-layered-ep", n=1)
    assert batch_supported(make_scheduler("kgreedy"), job)
    assert batch_supported(make_scheduler("lspan"), job)
    assert batch_supported(make_scheduler("mqb"), job)
    assert not batch_supported(make_scheduler("random"), job)
    # MQB on fractional work would need order-sensitive float sums.
    frac = type(job)(
        types=[0, 0], work=[1.5, 2.25], edges=[(0, 1)], num_types=job.num_types
    )
    assert not batch_supported(make_scheduler("mqb"), frac)


def test_fallback_counts_on_telemetry():
    """Unsupported rows fall back to scalar and say so on the counter."""
    instances = _instances("small-layered-ep", n=3)
    rngs = [np.random.default_rng(np.random.SeedSequence([7, i])) for i in range(3)]
    tel = Telemetry()
    simulate_batch(instances, make_scheduler("random"), rngs=rngs, telemetry=tel)
    assert tel.counters["batch.fallback"] == 3
    assert tel.counters.get("batch.instances", 0) == 0


def test_batched_rows_count_on_telemetry():
    instances = _instances("small-layered-ep", n=3)
    tel = Telemetry()
    simulate_batch(instances, make_scheduler("kgreedy"), telemetry=tel)
    assert tel.counters["batch.instances"] == 3
    assert tel.counters["batch.rounds"] > 0
    assert "batch.fallback" not in tel.counters
