"""Unit tests for trace utilization metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ResourceConfig
from repro.errors import ValidationError
from repro.sim.metrics import (
    average_utilization,
    type_busy_time,
    utilization_profile,
)
from repro.sim.trace import ScheduleTrace


@pytest.fixture
def trace():
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 4.0)   # type 0 busy 0-4
    t.add(1, 1, 0, 2.0, 4.0)   # type 1 busy 2-4
    return t


class TestTypeBusyTime:
    def test_sums_durations(self, trace):
        assert list(type_busy_time(trace, 2)) == [4.0, 2.0]

    def test_absent_type_zero(self, trace):
        assert type_busy_time(trace, 3)[2] == 0.0

    def test_out_of_range_type(self, trace):
        with pytest.raises(ValidationError):
            type_busy_time(trace, 1)


class TestAverageUtilization:
    def test_full_and_half(self, trace):
        util = average_utilization(trace, ResourceConfig((1, 1)))
        assert list(util) == [1.0, 0.5]

    def test_scaled_by_processor_count(self, trace):
        util = average_utilization(trace, ResourceConfig((2, 1)))
        assert util[0] == 0.5

    def test_explicit_makespan(self, trace):
        util = average_utilization(trace, ResourceConfig((1, 1)), makespan=8.0)
        assert list(util) == [0.5, 0.25]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            average_utilization(ScheduleTrace(), ResourceConfig((1,)))


class TestUtilizationProfile:
    def test_shape_and_edges(self, trace):
        edges, prof = utilization_profile(trace, ResourceConfig((1, 1)), n_bins=4)
        assert edges.shape == (5,)
        assert prof.shape == (2, 4)
        assert edges[0] == 0.0 and edges[-1] == 4.0

    def test_values(self, trace):
        _, prof = utilization_profile(trace, ResourceConfig((1, 1)), n_bins=4)
        np.testing.assert_allclose(prof[0], [1, 1, 1, 1])
        np.testing.assert_allclose(prof[1], [0, 0, 1, 1])

    def test_profile_average_matches_average_utilization(self, trace):
        system = ResourceConfig((2, 1))
        _, prof = utilization_profile(trace, system, n_bins=8)
        np.testing.assert_allclose(
            prof.mean(axis=1), average_utilization(trace, system), rtol=1e-9
        )

    def test_partial_bin_overlap(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        t.add(1, 0, 0, 1.0, 4.0)
        _, prof = utilization_profile(t, ResourceConfig((1,)), n_bins=2)
        np.testing.assert_allclose(prof[0], [1.0, 1.0])

    def test_bad_bins(self, trace):
        with pytest.raises(ValidationError):
            utilization_profile(trace, ResourceConfig((1, 1)), n_bins=0)


def reference_type_busy_time(trace, num_types):
    """The pre-vectorization per-segment loop, kept as ground truth."""
    out = np.zeros(num_types, dtype=np.float64)
    for seg in trace:
        if not 0 <= seg.alpha < num_types:
            raise ValidationError(
                f"segment type {seg.alpha} out of range for K={num_types}"
            )
        out[seg.alpha] += seg.duration
    return out


def reference_utilization_profile(trace, resources, n_bins):
    """The pre-vectorization per-segment/per-bin loop."""
    t_end = trace.makespan()
    edges = np.linspace(0.0, t_end, n_bins + 1)
    width = edges[1] - edges[0]
    profile = np.zeros((resources.num_types, n_bins), dtype=np.float64)
    for seg in trace:
        for b in range(n_bins):
            lo = max(seg.start, edges[b])
            hi = min(seg.end, edges[b + 1])
            if hi > lo:
                profile[seg.alpha, b] += hi - lo
    return edges, profile / (resources.as_array()[:, None] * width)


class TestVectorizedMatchesReference:
    """The np.add.at implementations must equal the original loops."""

    @pytest.fixture
    def random_trace(self):
        rng = np.random.default_rng(42)
        t = ScheduleTrace()
        for task in range(60):
            start = float(rng.uniform(0.0, 50.0))
            t.add(
                task,
                int(rng.integers(0, 3)),
                int(rng.integers(0, 4)),
                start,
                start + float(rng.uniform(0.1, 9.0)),
            )
        return t

    def test_type_busy_time_equal(self, random_trace):
        got = type_busy_time(random_trace, 3)
        want = reference_type_busy_time(random_trace, 3)
        assert got.tolist() == want.tolist()  # bit-exact: same add order

    @pytest.mark.parametrize("n_bins", [1, 7, 40])
    def test_utilization_profile_equal(self, random_trace, n_bins):
        system = ResourceConfig((4, 4, 4))
        edges, got = utilization_profile(random_trace, system, n_bins=n_bins)
        ref_edges, want = reference_utilization_profile(
            random_trace, system, n_bins
        )
        assert edges.tolist() == ref_edges.tolist()
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)
