"""Unit tests for ScheduleTrace / Segment."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace, Segment


class TestSegment:
    def test_duration(self):
        s = Segment(task=0, alpha=1, proc=0, start=2.0, end=5.0)
        assert s.duration == 3.0

    @pytest.mark.parametrize("start,end", [(1.0, 1.0), (2.0, 1.0)])
    def test_nonpositive_duration_rejected(self, start, end):
        with pytest.raises(ValidationError):
            Segment(task=0, alpha=0, proc=0, start=start, end=end)

    def test_frozen(self):
        s = Segment(0, 0, 0, 0.0, 1.0)
        with pytest.raises(AttributeError):
            s.end = 9.0


class TestScheduleTrace:
    def test_add_and_len(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        t.add(1, 0, 0, 1.0, 2.0)
        assert len(t) == 2

    def test_makespan(self):
        t = ScheduleTrace()
        assert t.makespan() == 0.0
        t.add(0, 0, 0, 0.0, 3.0)
        t.add(1, 1, 0, 1.0, 2.0)
        assert t.makespan() == 3.0

    def test_segments_of_sorted(self):
        t = ScheduleTrace()
        t.add(5, 0, 0, 4.0, 5.0)
        t.add(5, 0, 1, 0.0, 2.0)
        segs = t.segments_of(5)
        assert [s.start for s in segs] == [0.0, 4.0]

    def test_executed_work(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(0, 0, 1, 3.0, 4.0)
        t.add(1, 0, 0, 2.0, 3.0)
        assert list(t.executed_work(3)) == [3.0, 1.0, 0.0]

    def test_executed_work_unknown_task(self):
        t = ScheduleTrace()
        t.add(7, 0, 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            t.executed_work(3)

    def test_first_start_last_end(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 1.0, 2.0)
        t.add(0, 0, 0, 5.0, 6.0)
        assert t.first_start(0) == 1.0
        assert t.last_end(0) == 6.0

    def test_first_start_missing_task(self):
        with pytest.raises(ValidationError):
            ScheduleTrace().first_start(0)

    def test_iteration(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        assert [s.task for s in t] == [0]


class TestKilledSegments:
    def test_killed_flag_defaults_false(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        assert not t.segments[0].killed
        assert t.killed_segments() == []

    def test_killed_segments_filter(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0, killed=True)
        t.add(0, 0, 0, 2.0, 3.0)
        assert [s.start for s in t.killed_segments()] == [0.0]

    def test_surviving_work_excludes_killed(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0, killed=True)
        t.add(0, 0, 0, 3.0, 7.0)
        t.add(1, 0, 1, 0.0, 1.0)
        assert list(t.surviving_work(2)) == [4.0, 1.0]
        assert list(t.executed_work(2)) == [6.0, 1.0]

    def test_surviving_work_unknown_task(self):
        t = ScheduleTrace()
        t.add(5, 0, 0, 0.0, 1.0, killed=True)
        with pytest.raises(ValidationError, match="unknown task"):
            t.surviving_work(2)


class TestColumnarView:
    def test_columns_match_segments(self):
        t = ScheduleTrace()
        t.add(3, 1, 2, 0.5, 1.5, killed=True)
        t.add(4, 0, 0, 1.0, 2.0)
        cols = t.as_columns()
        assert cols["task"].tolist() == [3, 4]
        assert cols["alpha"].tolist() == [1, 0]
        assert cols["proc"].tolist() == [2, 0]
        assert cols["start"].tolist() == [0.5, 1.0]
        assert cols["end"].tolist() == [1.5, 2.0]
        assert cols["killed"].tolist() == [True, False]

    def test_empty_trace_columns(self):
        cols = ScheduleTrace().as_columns()
        assert all(len(v) == 0 for v in cols.values())

    def test_caches_invalidated_by_add(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        assert t.as_columns()["task"].tolist() == [0]
        assert t.first_start(0) == 0.0
        t.add(1, 0, 0, 1.0, 2.0)  # must invalidate both caches
        assert t.as_columns()["task"].tolist() == [0, 1]
        assert t.segments_of(1)[0].end == 2.0

    def test_columns_cached_between_adds(self):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        assert t.as_columns() is t.as_columns()
