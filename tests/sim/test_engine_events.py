"""Engine event-handling edge cases: ties, decision counting, reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, make_scheduler, simulate, validate_schedule


class TestSimultaneousCompletions:
    def test_batch_completion_unlocks_join(self):
        """Two equal-length parents finish at the same instant; the
        join must start exactly then, not a step later."""
        job = KDag(
            types=[0, 0, 1],
            work=[3.0, 3.0, 1.0],
            edges=[(0, 2), (1, 2)],
            num_types=2,
        )
        res = simulate(job, ResourceConfig((2, 1)), make_scheduler("kgreedy"),
                       record_trace=True)
        assert res.makespan == 4.0
        assert res.trace.first_start(2) == 3.0

    def test_many_ties_single_decision_round(self):
        """Eight tasks finishing together trigger one decision round."""
        job = KDag(
            types=[0] * 16,
            work=[2.0] * 16,
            edges=[(i, i + 8) for i in range(8)],
        )
        res = simulate(job, ResourceConfig((8,)), make_scheduler("kgreedy"))
        assert res.makespan == 4.0
        assert res.decisions == 2  # t=0 and t=2


class TestDecisionAccounting:
    def test_serial_chain_one_decision_per_task(self, chain_job):
        res = simulate(chain_job, ResourceConfig((1, 1, 1)),
                       make_scheduler("kgreedy"))
        assert res.decisions == 3

    def test_wide_job_single_round(self):
        job = KDag(types=[0] * 5, work=[1.0] * 5)
        res = simulate(job, ResourceConfig((5,)), make_scheduler("lspan"))
        assert res.decisions == 1


class TestSchedulerReuse:
    @pytest.mark.parametrize("name", ["kgreedy", "mqb", "shiftbt"])
    def test_instance_reusable_across_jobs(self, name, rng):
        """prepare() fully resets state — one instance, many runs."""
        from tests.conftest import make_random_job

        sched = make_scheduler(name)
        for i in range(3):
            job = make_random_job(rng, n=20, k=2)
            system = ResourceConfig((2, 2))
            res = simulate(job, system, sched,
                           rng=np.random.default_rng(i), record_trace=True)
            validate_schedule(job, system, res.trace, res.makespan)

    def test_reuse_matches_fresh_instance(self, rng):
        from tests.conftest import make_random_job

        jobs = [make_random_job(rng, n=18, k=2) for _ in range(3)]
        system = ResourceConfig((2, 1))
        reused = make_scheduler("mqb")
        reused_spans = [
            simulate(j, system, reused, rng=np.random.default_rng(7)).makespan
            for j in jobs
        ]
        fresh_spans = [
            simulate(j, system, make_scheduler("mqb"),
                     rng=np.random.default_rng(7)).makespan
            for j in jobs
        ]
        assert reused_spans == fresh_spans


class TestFloatingPointWork:
    def test_fractional_work_exact_events(self):
        job = KDag(types=[0, 0], work=[0.1, 0.2], edges=[(0, 1)])
        res = simulate(job, ResourceConfig((1,)), make_scheduler("kgreedy"))
        assert res.makespan == pytest.approx(0.30000000000000004)

    def test_tiny_work_values(self):
        job = KDag(types=[0] * 10, work=[1e-9] * 10)
        res = simulate(job, ResourceConfig((2,)), make_scheduler("kgreedy"))
        assert res.makespan == pytest.approx(5e-9)
