"""Unit tests for the quantum-stepped preemptive engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    KDag,
    ResourceConfig,
    make_scheduler,
    simulate,
    simulate_preemptive,
    validate_schedule,
)
from repro.errors import SchedulingError


class TestBasics:
    def test_single_task(self):
        job = KDag(types=[0], work=[4.0])
        res = simulate_preemptive(job, ResourceConfig((1,)), make_scheduler("kgreedy"))
        assert res.makespan == 4.0
        assert res.preemptive is True

    def test_chain(self, chain_job):
        res = simulate_preemptive(
            chain_job, ResourceConfig((1, 1, 1)), make_scheduler("kgreedy")
        )
        assert res.makespan == 3.0

    def test_fractional_work_completes_mid_quantum(self):
        job = KDag(types=[0], work=[2.5])
        res = simulate_preemptive(job, ResourceConfig((1,)), make_scheduler("kgreedy"))
        assert res.makespan == 2.5

    def test_invalid_quantum(self, chain_job):
        with pytest.raises(SchedulingError, match="quantum"):
            simulate_preemptive(
                chain_job, ResourceConfig((1, 1, 1)), make_scheduler("kgreedy"),
                quantum=0.0,
            )

    def test_trace_is_valid_and_split_into_quanta(self):
        job = KDag(types=[0, 0], work=[3.0, 2.0])
        system = ResourceConfig((1,))
        res = simulate_preemptive(
            job, system, make_scheduler("kgreedy"), record_trace=True
        )
        validate_schedule(job, system, res.trace, res.makespan, preemptive=True)
        assert all(s.duration <= 1.0 + 1e-12 for s in res.trace)

    def test_larger_quantum(self):
        job = KDag(types=[0, 0], work=[4.0, 4.0])
        res = simulate_preemptive(
            job, ResourceConfig((1,)), make_scheduler("kgreedy"), quantum=4.0
        )
        assert res.makespan == 8.0


class TestEquivalenceWithNonPreemptive:
    """With integer work and quantum 1, makespans should be close; for
    a single processor per type and FIFO they should match exactly."""

    def test_kgreedy_single_proc_matches(self, rng):
        from tests.conftest import make_random_job

        for i in range(3):
            job = make_random_job(rng, n=20, k=2)
            system = ResourceConfig((1, 1))
            a = simulate(job, system, make_scheduler("kgreedy"))
            b = simulate_preemptive(job, system, make_scheduler("kgreedy"))
            assert a.makespan == pytest.approx(b.makespan)

    @pytest.mark.parametrize("name", ["kgreedy", "lspan", "mqb"])
    def test_all_schedulers_valid_preemptively(self, name, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=30, k=3)
        system = ResourceConfig((2, 2, 2))
        res = simulate_preemptive(
            job, system, make_scheduler(name),
            rng=np.random.default_rng(1), record_trace=True,
        )
        validate_schedule(job, system, res.trace, res.makespan, preemptive=True)
        assert res.completion_time_ratio() >= 1.0 - 1e-9


class TestWorkConservationGuard:
    def test_stalling_scheduler_detected(self, chain_job):
        from repro.schedulers.base import Scheduler

        class Lazy(Scheduler):
            name = "lazy"

            def task_ready(self, task, time, work):
                pass

            def pending(self, alpha):
                return 0

            def select(self, alpha, n_slots, time):
                return []

        with pytest.raises(SchedulingError, match="stalled"):
            simulate_preemptive(chain_job, ResourceConfig((1, 1, 1)), Lazy())
