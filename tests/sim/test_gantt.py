"""Unit tests for the ASCII Gantt renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, make_scheduler, simulate
from repro.errors import ValidationError
from repro.sim.gantt import render_gantt
from repro.sim.trace import ScheduleTrace


@pytest.fixture
def simple_trace():
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 4.0)
    t.add(1, 1, 0, 4.0, 8.0)
    return t


class TestRendering:
    def test_rows_per_processor(self, simple_trace):
        out = render_gantt(simple_trace, ResourceConfig((2, 1)), width=16)
        rows = [l for l in out.splitlines() if "|" in l]
        assert len(rows) == 3  # 2 type-0 procs + 1 type-1 proc

    def test_busy_and_idle_glyphs(self, simple_trace):
        out = render_gantt(simple_trace, ResourceConfig((1, 1)), width=16)
        rows = [
            l.split("|")[1] for l in out.splitlines() if l.count("|") == 2
        ]
        # Type 0 busy first half (glyph '0'), idle second.
        assert rows[0].count("0") == 8
        assert rows[0].count(".") == 8
        # Type 1 mirrored (glyph '1').
        assert rows[1].count("1") == 8

    def test_custom_type_names(self, simple_trace):
        out = render_gantt(
            simple_trace, ResourceConfig((1, 1)), width=12,
            type_names=["CPU", "GPU"],
        )
        assert "CPU[0]" in out and "GPU[0]" in out

    def test_makespan_in_header(self, simple_trace):
        out = render_gantt(simple_trace, ResourceConfig((1, 1)), width=12)
        assert "makespan = 8" in out

    def test_bad_width(self, simple_trace):
        with pytest.raises(ValidationError):
            render_gantt(simple_trace, ResourceConfig((1, 1)), width=4)

    def test_empty_trace(self):
        with pytest.raises(ValidationError):
            render_gantt(ScheduleTrace(), ResourceConfig((1,)))

    def test_wrong_name_count(self, simple_trace):
        with pytest.raises(ValidationError):
            render_gantt(simple_trace, ResourceConfig((1, 1)),
                         type_names=["only-one"])

    def test_real_schedule_renders(self, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=20, k=2)
        system = ResourceConfig((2, 2))
        res = simulate(job, system, make_scheduler("mqb"),
                       rng=np.random.default_rng(0), record_trace=True)
        out = render_gantt(res.trace, system, width=40)
        # Every processor row is drawn and framed.
        assert out.count("|") == 2 * system.total
