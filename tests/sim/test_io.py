"""Unit tests for job/trace/result serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ResourceConfig, make_scheduler, simulate, validate_schedule
from repro.errors import ValidationError
from repro.sim.io import (
    job_from_dict,
    job_to_dict,
    load_run,
    result_from_dict,
    result_to_dict,
    save_run,
    trace_from_dict,
    trace_to_dict,
)


class TestJobRoundTrip:
    def test_roundtrip_equality(self, fig1_job):
        clone = job_from_dict(job_to_dict(fig1_job))
        assert clone == fig1_job

    def test_dict_is_json_ready(self, fig1_job):
        import json

        json.dumps(job_to_dict(fig1_job))

    def test_schema_checked(self, fig1_job):
        data = job_to_dict(fig1_job)
        data["schema"] = 99
        with pytest.raises(ValidationError, match="schema"):
            job_from_dict(data)


class TestTraceRoundTrip:
    def test_roundtrip(self, diamond_job, two_type_system):
        res = simulate(diamond_job, two_type_system, make_scheduler("kgreedy"),
                       record_trace=True)
        clone = trace_from_dict(trace_to_dict(res.trace))
        assert len(clone) == len(res.trace)
        assert clone.makespan() == res.trace.makespan()
        validate_schedule(diamond_job, two_type_system, clone, res.makespan)


class TestResultRoundTrip:
    def test_full_roundtrip(self, diamond_job, two_type_system, tmp_path):
        res = simulate(diamond_job, two_type_system, make_scheduler("mqb"),
                       rng=np.random.default_rng(0), record_trace=True)
        path = save_run(res, tmp_path / "run.json")
        loaded = load_run(path)
        assert loaded.makespan == res.makespan
        assert loaded.scheduler == res.scheduler
        assert loaded.job == res.job
        assert loaded.resources == res.resources
        assert loaded.completion_time_ratio() == pytest.approx(
            res.completion_time_ratio()
        )
        # The reloaded trace still validates against the reloaded job.
        validate_schedule(
            loaded.job, loaded.resources, loaded.trace, loaded.makespan
        )

    def test_traceless_result(self, diamond_job, two_type_system, tmp_path):
        res = simulate(diamond_job, two_type_system, make_scheduler("lspan"))
        loaded = load_run(save_run(res, tmp_path / "r.json"))
        assert loaded.trace is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no run file"):
            load_run(tmp_path / "nope.json")

    def test_creates_parent_dirs(self, diamond_job, two_type_system, tmp_path):
        res = simulate(diamond_job, two_type_system, make_scheduler("lspan"))
        path = save_run(res, tmp_path / "a" / "b" / "r.json")
        assert path.exists()

    def test_preemptive_flag_preserved(self, diamond_job, two_type_system, tmp_path):
        from repro import simulate_preemptive

        res = simulate_preemptive(
            diamond_job, two_type_system, make_scheduler("kgreedy")
        )
        loaded = load_run(save_run(res, tmp_path / "p.json"))
        assert loaded.preemptive is True

    def test_result_dict_roundtrip_without_file(self, diamond_job, two_type_system):
        res = simulate(diamond_job, two_type_system, make_scheduler("dtype"))
        clone = result_from_dict(result_to_dict(res))
        assert clone.decisions == res.decisions
