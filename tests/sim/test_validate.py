"""Unit tests for the schedule legality checker."""

from __future__ import annotations

import re

import pytest

from repro import KDag, ResourceConfig, validate_schedule
from repro.errors import ValidationError
from repro.sim.trace import ScheduleTrace


@pytest.fixture
def job():
    return KDag(
        types=[0, 1, 0],
        work=[2.0, 1.0, 1.0],
        edges=[(0, 1), (1, 2)],
        num_types=2,
    )


@pytest.fixture
def system():
    return ResourceConfig((1, 1))


def good_trace():
    t = ScheduleTrace()
    t.add(0, 0, 0, 0.0, 2.0)
    t.add(1, 1, 0, 2.0, 3.0)
    t.add(2, 0, 0, 3.0, 4.0)
    return t


class TestAccepts:
    def test_valid_schedule_passes(self, job, system):
        validate_schedule(job, system, good_trace(), makespan=4.0)

    def test_valid_without_makespan(self, job, system):
        validate_schedule(job, system, good_trace())

    def test_preemptive_split_allowed(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        t.add(0, 0, 0, 1.0, 2.0)
        t.add(1, 1, 0, 2.0, 3.0)
        t.add(2, 0, 0, 3.0, 4.0)
        validate_schedule(job, system, t, preemptive=True)


class TestRejects:
    def test_k_mismatch(self, job):
        with pytest.raises(ValidationError, match="disagree on K"):
            validate_schedule(job, ResourceConfig((1,)), good_trace())

    def test_wrong_type(self, job, system):
        t = good_trace()
        t.segments[1] = type(t.segments[1])(1, 0, 0, 2.0, 3.0)
        with pytest.raises(ValidationError, match="ran on type"):
            validate_schedule(job, system, t)

    def test_processor_index_out_of_pool(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 5, 0.0, 2.0)
        t.add(1, 1, 0, 2.0, 3.0)
        t.add(2, 0, 0, 3.0, 4.0)
        with pytest.raises(ValidationError, match="only 1 processors"):
            validate_schedule(job, system, t)

    def test_unknown_task(self, job, system):
        t = good_trace()
        t.add(9, 0, 0, 4.0, 5.0)
        with pytest.raises(ValidationError, match="unknown task"):
            validate_schedule(job, system, t)

    def test_under_executed_work(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)  # task 0 needs 2 units
        t.add(1, 1, 0, 1.0, 2.0)
        t.add(2, 0, 0, 2.0, 3.0)
        with pytest.raises(ValidationError, match="executed"):
            validate_schedule(job, system, t)

    def test_split_rejected_in_nonpreemptive_mode(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 1.0)
        t.add(0, 0, 0, 1.0, 2.0)
        t.add(1, 1, 0, 2.0, 3.0)
        t.add(2, 0, 0, 3.0, 4.0)
        with pytest.raises(ValidationError, match="split"):
            validate_schedule(job, system, t, preemptive=False)

    def test_processor_overlap(self, system):
        job = KDag(types=[0, 0], work=[2.0, 2.0], num_types=2)
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(1, 0, 0, 1.0, 3.0)  # same processor, overlapping
        with pytest.raises(ValidationError, match="overlaps"):
            validate_schedule(job, system, t)

    def test_intra_task_parallelism(self):
        job = KDag(types=[0], work=[4.0], num_types=1)
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(0, 0, 1, 0.0, 2.0)  # task runs on 2 procs at once
        with pytest.raises(ValidationError, match="parallel with itself"):
            validate_schedule(job, ResourceConfig((2,)), t, preemptive=True)

    def test_precedence_violation(self, job, system):
        t = ScheduleTrace()
        t.add(0, 0, 0, 1.0, 3.0)
        t.add(1, 1, 0, 0.0, 1.0)  # child before parent finished
        t.add(2, 0, 0, 3.0, 4.0)
        with pytest.raises(ValidationError, match="before its\n?.*parent|parent"):
            validate_schedule(job, system, t)

    def test_makespan_mismatch(self, job, system):
        with pytest.raises(ValidationError, match="makespan"):
            validate_schedule(job, system, good_trace(), makespan=7.0)


class TestErrorMessages:
    """The error branches name the offenders precisely — pinned here so
    refactors of the checker keep its diagnostics intact."""

    def test_processor_overlap_message(self, system):
        job = KDag(types=[0, 0], work=[2.0, 2.0], num_types=2)
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(1, 0, 0, 1.0, 3.0)
        with pytest.raises(
            ValidationError,
            match=re.escape(
                "processor (0, 0) overlaps tasks 0 [0.0, 2.0) and 1 [1.0, 3.0)"
            ),
        ):
            validate_schedule(job, system, t)

    def test_intra_task_parallelism_message(self):
        job = KDag(types=[0], work=[4.0], num_types=1)
        t = ScheduleTrace()
        t.add(0, 0, 0, 0.0, 2.0)
        t.add(0, 0, 1, 1.0, 3.0)
        with pytest.raises(
            ValidationError,
            match=re.escape(
                "task 0 executes in parallel with itself: "
                "[0.0, 2.0) and [1.0, 3.0)"
            ),
        ):
            validate_schedule(job, ResourceConfig((2,)), t, preemptive=True)

    def test_makespan_mismatch_message(self, job, system):
        with pytest.raises(
            ValidationError,
            match=re.escape("reported makespan 7 != trace makespan 4"),
        ):
            validate_schedule(job, system, good_trace(), makespan=7.0)
