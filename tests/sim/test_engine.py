"""Unit tests for the non-preemptive event-driven engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    KDag,
    ResourceConfig,
    lower_bound,
    make_scheduler,
    simulate,
    validate_schedule,
)
from repro.errors import SchedulingError
from repro.schedulers.base import Scheduler


class TestBasicExecution:
    def test_single_task(self):
        job = KDag(types=[0], work=[4.0])
        res = simulate(job, ResourceConfig((1,)), make_scheduler("kgreedy"))
        assert res.makespan == 4.0
        assert res.completion_time_ratio() == 1.0

    def test_chain_is_serial(self, chain_job):
        res = simulate(chain_job, ResourceConfig((2, 2, 2)), make_scheduler("kgreedy"))
        assert res.makespan == 3.0

    def test_independent_tasks_parallelize(self):
        job = KDag(types=[0] * 4, work=[2.0] * 4)
        res = simulate(job, ResourceConfig((2,)), make_scheduler("kgreedy"))
        assert res.makespan == 4.0  # two waves of two

    def test_single_processor_serializes(self):
        job = KDag(types=[0] * 3, work=[1.0, 2.0, 3.0])
        res = simulate(job, ResourceConfig((1,)), make_scheduler("kgreedy"))
        assert res.makespan == 6.0

    def test_diamond(self, diamond_job):
        # 0 (1) then 1 (2) || 2 (3), then 3 (1): 1 + 3 + 1.
        res = simulate(diamond_job, ResourceConfig((1, 2)), make_scheduler("kgreedy"))
        assert res.makespan == 5.0

    def test_type_separation(self):
        """Tasks of different types never compete for processors."""
        job = KDag(types=[0, 1], work=[5.0, 5.0], num_types=2)
        res = simulate(job, ResourceConfig((1, 1)), make_scheduler("kgreedy"))
        assert res.makespan == 5.0

    def test_mismatched_k_rejected(self, chain_job):
        with pytest.raises(SchedulingError, match="resource types"):
            simulate(chain_job, ResourceConfig((1, 1)), make_scheduler("kgreedy"))


class TestResultFields:
    def test_result_metadata(self, diamond_job, two_type_system):
        res = simulate(diamond_job, two_type_system, make_scheduler("lspan"))
        assert res.scheduler == "lspan"
        assert res.preemptive is False
        assert res.decisions >= 1
        assert res.trace is None

    def test_ratio_uses_lower_bound(self, diamond_job, two_type_system):
        res = simulate(diamond_job, two_type_system, make_scheduler("kgreedy"))
        expected = res.makespan / lower_bound(
            diamond_job, two_type_system.as_array()
        )
        assert res.completion_time_ratio() == pytest.approx(expected)


class TestTraceRecording:
    def test_trace_one_segment_per_task(self, fig1_job):
        system = ResourceConfig((2, 1, 1))
        res = simulate(fig1_job, system, make_scheduler("mqb"),
                       rng=np.random.default_rng(0), record_trace=True)
        assert res.trace is not None
        assert len(res.trace) == fig1_job.n_tasks
        validate_schedule(fig1_job, system, res.trace, res.makespan)

    def test_trace_matches_makespan(self, diamond_job, two_type_system):
        res = simulate(
            diamond_job, two_type_system, make_scheduler("kgreedy"),
            record_trace=True,
        )
        assert res.trace.makespan() == res.makespan


class TestSchedulerMisbehaviorDetection:
    def test_unready_task_detected(self, chain_job):
        class Cheater(Scheduler):
            name = "cheater"

            def __init__(self):
                super().__init__()
                self._pending = []

            def task_ready(self, task, time, work):
                self._pending.append(task)

            def pending(self, alpha):
                return sum(
                    1 for t in self._pending if self.job.types[t] == alpha
                )

            def select(self, alpha, n_slots, time):
                # Always claims the LAST task of the chain.
                return [2]

        with pytest.raises(SchedulingError, match="not ready"):
            simulate(chain_job, ResourceConfig((1, 1, 1)), Cheater())

    def test_oversubscription_detected(self):
        job = KDag(types=[0, 0, 0], work=[1.0] * 3)

        class Overs(Scheduler):
            name = "overs"

            def __init__(self):
                super().__init__()
                self._q = []

            def task_ready(self, task, time, work):
                self._q.append(task)

            def pending(self, alpha):
                return len(self._q)

            def select(self, alpha, n_slots, time):
                out, self._q = self._q, []
                return out  # ignores n_slots

        with pytest.raises(SchedulingError):
            simulate(job, ResourceConfig((2,)), Overs())

    def test_non_work_conserving_stall_detected(self):
        """A scheduler that withholds ready work must raise, not hang.

        Regression test for the stall check: with no running tasks and
        pending work, an empty assignment round must surface as a
        SchedulingError immediately (the engine has no other event to
        advance to).
        """
        job = KDag(types=[0, 0], work=[1.0, 1.0])

        class Lazy(Scheduler):
            name = "lazy"

            def task_ready(self, task, time, work):
                pass

            def pending(self, alpha):
                return 0  # hides its ready tasks

            def select(self, alpha, n_slots, time):
                return []

        with pytest.raises(SchedulingError, match="stalled"):
            simulate(job, ResourceConfig((2,)), Lazy())

    def test_stall_after_partial_progress_detected(self):
        """Stalling mid-run (after some completions) is also caught."""
        job = KDag(types=[0, 0], work=[1.0, 2.0], edges=[(0, 1)])

        class QuitsAfterOne(Scheduler):
            name = "quits"

            def __init__(self):
                super().__init__()
                self._started = 0
                self._q = []

            def task_ready(self, task, time, work):
                self._q.append(task)

            def pending(self, alpha):
                return len(self._q) if self._started == 0 else 0

            def select(self, alpha, n_slots, time):
                if self._started:
                    return []
                self._started += 1
                out, self._q = self._q[:n_slots], self._q[n_slots:]
                return out

        with pytest.raises(SchedulingError, match="stalled"):
            simulate(job, ResourceConfig((1,)), QuitsAfterOne())


class TestAllSchedulersProduceValidSchedules:
    @pytest.mark.parametrize(
        "name", ["kgreedy", "lspan", "maxdp", "dtype", "shiftbt", "mqb"]
    )
    def test_valid_on_random_jobs(self, name, rng):
        from tests.conftest import make_random_job

        for i in range(3):
            job = make_random_job(rng, n=35, k=3)
            system = ResourceConfig((2, 1, 3))
            res = simulate(
                job, system, make_scheduler(name),
                rng=np.random.default_rng(i), record_trace=True,
            )
            validate_schedule(job, system, res.trace, res.makespan)
            assert res.completion_time_ratio() >= 1.0 - 1e-9
