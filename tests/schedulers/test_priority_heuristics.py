"""Unit tests for the priority-based offline heuristics: LSpan, MaxDP, DType."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, simulate
from repro.schedulers.dtype import DType
from repro.schedulers.lspan import LSpan
from repro.schedulers.maxdp import MaxDP


def drive(scheduler, job, system, ready):
    """Prepare a scheduler and mark `ready` tasks ready at t=0."""
    scheduler.prepare(job, system)
    for t in ready:
        scheduler.task_ready(t, 0.0, float(job.work[t]))
    return scheduler


class TestLSpan:
    def test_prefers_longer_remaining_span(self):
        # Two independent chains of the same type; heads compete.
        job = KDag(
            types=[0, 0, 0, 0, 0],
            work=[1, 1, 1, 1, 5],
            edges=[(0, 1), (1, 2), (3, 4)],  # chain A: 0-1-2 (span 3); B: 3-4 (span 6)
        )
        s = drive(LSpan(), job, ResourceConfig((1,)), [0, 3])
        assert s.select(0, 1, 0.0) == [3]

    def test_tie_broken_fifo(self):
        job = KDag(types=[0, 0], work=[2.0, 2.0])
        s = drive(LSpan(), job, ResourceConfig((1,)), [1, 0])
        assert s.select(0, 2, 0.0) == [1, 0]

    def test_end_to_end_chain_priority(self):
        """With one processor, LSpan finishes the long chain first."""
        job = KDag(
            types=[0] * 6,
            work=[1.0] * 6,
            edges=[(0, 1), (1, 2), (2, 3), (3, 4)],  # 5-chain + 1 isolated
        )
        res = simulate(job, ResourceConfig((1,)), LSpan(), record_trace=True)
        # The isolated task (5) must not run first.
        assert res.trace.first_start(5) > 0.0


class TestMaxDP:
    def test_prefers_more_descendants(self):
        # 0 roots a fan of 3; 4 roots nothing.
        job = KDag(
            types=[0, 1, 1, 1, 0],
            work=[1.0] * 5,
            edges=[(0, 1), (0, 2), (0, 3)],
            num_types=2,
        )
        s = drive(MaxDP(), job, ResourceConfig((1, 1)), [0, 4])
        assert s.select(0, 1, 0.0) == [0]

    def test_ignores_descendant_types(self):
        """MaxDP is type-blind: total descendants decide, not the mix."""
        # Task 0 -> two type-0 children (work 2 each); task 3 -> one
        # type-1 child (work 3). Totals: 4 vs 3, so 0 wins even though
        # 3 would feed the starved type.
        job = KDag(
            types=[0, 0, 0, 0, 1],
            work=[1, 2, 2, 1, 3],
            edges=[(0, 1), (0, 2), (3, 4)],
            num_types=2,
        )
        s = drive(MaxDP(), job, ResourceConfig((1, 1)), [0, 3])
        assert s.select(0, 1, 0.0) == [0]


class TestDType:
    def test_prefers_near_type_boundary(self):
        # 0 -> 1(same type) -> 2(other); 3 -> 4(other type).
        job = KDag(
            types=[0, 0, 1, 0, 1],
            work=[1.0] * 5,
            edges=[(0, 1), (1, 2), (3, 4)],
            num_types=2,
        )
        s = drive(DType(), job, ResourceConfig((1, 1)), [0, 3])
        # dist(0) = 2, dist(3) = 1 -> 3 first.
        assert s.select(0, 1, 0.0) == [3]

    def test_no_other_type_descendant_runs_last(self):
        job = KDag(
            types=[0, 0, 0, 1],
            work=[1.0] * 4,
            edges=[(2, 3)],
            num_types=2,
        )
        s = drive(DType(), job, ResourceConfig((1, 1)), [0, 1, 2])
        assert s.select(0, 3, 0.0) == [2, 0, 1]


class TestSharedBehaviors:
    @pytest.mark.parametrize("cls", [LSpan, MaxDP, DType])
    def test_pending_counts(self, cls, diamond_job, two_type_system):
        s = drive(cls(), diamond_job, two_type_system, [0])
        assert s.pending(0) == 1
        assert s.pending(1) == 0

    @pytest.mark.parametrize("cls", [LSpan, MaxDP, DType])
    def test_select_caps_at_slots(self, cls, two_type_system):
        job = KDag(types=[0] * 5, work=[1.0] * 5, num_types=2)
        s = drive(cls(), job, two_type_system, [0, 1, 2, 3, 4])
        assert len(s.select(0, 2, 0.0)) == 2
        assert s.pending(0) == 3

    @pytest.mark.parametrize("cls", [LSpan, MaxDP, DType])
    def test_offline_flag(self, cls):
        assert cls.requires_offline is True
