"""Unit tests for the MQB scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import KDag, ResourceConfig, simulate, validate_schedule
from repro.errors import ConfigurationError
from repro.schedulers.info import ExactInformation, NoisyInformation
from repro.schedulers.mqb import MQB


def prepare(job, system, **kwargs):
    s = MQB(**kwargs)
    s.prepare(job, system, np.random.default_rng(0))
    return s


class TestConstruction:
    def test_default_name_is_mqb(self):
        assert MQB().name == "mqb"

    def test_variant_names(self):
        assert MQB(info=ExactInformation(one_step=True)).name == "mqb+1step+pre"
        assert MQB(info=NoisyInformation()).name == "mqb+all+noise"
        assert MQB(balance_mode="min").name == "mqb[min]"
        assert MQB(carry_projection=False).name == "mqb[nocarry]"

    def test_invalid_balance_mode(self):
        with pytest.raises(ConfigurationError):
            MQB(balance_mode="median")


class TestQueueAccounting:
    def test_queue_work_tracks_ready_tasks(self, two_type_system):
        job = KDag(types=[0, 0, 1], work=[2.0, 3.0, 4.0], num_types=2)
        s = prepare(job, two_type_system)
        s.task_ready(0, 0.0, 2.0)
        s.task_ready(1, 0.0, 3.0)
        s.task_ready(2, 0.0, 4.0)
        assert list(s._l) == [5.0, 4.0]
        s.select(0, 2, 0.0)
        assert s._l[0] == 0.0

    def test_requeue_updates_remaining_work(self, two_type_system):
        job = KDag(types=[0], work=[4.0], num_types=2)
        s = prepare(job, two_type_system)
        s.task_ready(0, 0.0, 4.0)
        s.select(0, 1, 0.0)
        s.task_ready(0, 1.0, 3.0)  # preempted with 3 remaining
        assert s._l[0] == 3.0


class TestBalancePolicy:
    def test_picks_task_feeding_starved_type(self):
        """Between two ready type-0 tasks, MQB starts the one whose
        descendants fill the empty type-1 queue."""
        job = KDag(
            types=[0, 0, 1, 0],
            work=[1.0, 1.0, 5.0, 5.0],
            edges=[(0, 2), (1, 3)],
            num_types=2,
        )
        s = prepare(job, ResourceConfig((1, 1)))
        s.task_ready(0, 0.0, 1.0)
        s.task_ready(1, 0.0, 1.0)
        # Task 0 unlocks type-1 work (starved); task 1 unlocks type-0.
        assert s.select(0, 1, 0.0) == [0]

    def test_runs_all_when_under_capacity(self):
        job = KDag(types=[0, 0], work=[1.0, 1.0], num_types=2)
        s = prepare(job, ResourceConfig((3, 1)))
        s.task_ready(0, 0.0, 1.0)
        s.task_ready(1, 0.0, 1.0)
        assert s.assign([3, 1], 0.0) == [0, 1]

    def test_fifo_tie_break(self):
        job = KDag(types=[0, 0, 0], work=[1.0] * 3, num_types=2)
        s = prepare(job, ResourceConfig((1, 1)))
        s.task_ready(2, 0.0, 1.0)
        s.task_ready(0, 0.0, 1.0)
        s.task_ready(1, 0.0, 1.0)
        assert s.select(0, 1, 0.0) == [2]

    def test_carry_projection_diversifies_round(self):
        """With projection, the second pick of a round prefers feeding
        the type the first pick did not."""
        # Four ready type-0 tasks: two feed type 1, two feed type 2.
        job = KDag(
            types=[0, 0, 0, 0, 1, 1, 2, 2],
            work=[1.0] * 4 + [6.0] * 4,
            edges=[(0, 4), (1, 5), (2, 6), (3, 7)],
            num_types=3,
        )
        s = prepare(job, ResourceConfig((2, 1, 1)))
        for t in range(4):
            s.task_ready(t, 0.0, 1.0)
        picked = s.assign([2, 0, 0], 0.0)
        types_fed = {int(job.children(t)[0]) // 2 for t in picked}
        feeds = {4 // 2, 6 // 2}  # one feeder of each accelerator type
        assert {int(job.types[int(job.children(t)[0])]) for t in picked} == {1, 2}

    def test_nocarry_variant_repeats_best(self):
        job = KDag(
            types=[0, 0, 0, 0, 1, 1, 2, 2],
            work=[1.0] * 4 + [6.0] * 4,
            edges=[(0, 4), (1, 5), (2, 6), (3, 7)],
            num_types=3,
        )
        # type-1 queue will stay "starved" without projection, so both
        # picks feed type 1 (or both type 2) deterministically by FIFO.
        s = MQB(carry_projection=False)
        s.prepare(job, ResourceConfig((2, 1, 1)), np.random.default_rng(0))
        for t in range(4):
            s.task_ready(t, 0.0, 1.0)
        picked = s.assign([2, 0, 0], 0.0)
        fed = {int(job.types[int(job.children(t)[0])]) for t in picked}
        assert len(fed) == 1


class TestBalanceModes:
    @pytest.mark.parametrize("mode", ["lex", "min", "sum"])
    def test_all_modes_schedule_validly(self, mode, rng):
        from tests.conftest import make_random_job

        job = make_random_job(rng, n=30, k=3)
        system = ResourceConfig((2, 2, 2))
        s = MQB(balance_mode=mode)
        res = simulate(job, system, s, rng=np.random.default_rng(1),
                       record_trace=True)
        validate_schedule(job, system, res.trace, res.makespan)


class TestInformationIntegration:
    def test_bad_info_shape_rejected(self, two_type_system):
        class BadInfo(ExactInformation):
            def descendant_matrix(self, job, rng):
                return np.zeros((1, 1))

        job = KDag(types=[0, 1], work=[1.0, 1.0], num_types=2)
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="shape"):
            MQB(info=BadInfo()).prepare(job, two_type_system)

    def test_noisy_variants_still_valid(self, rng):
        from tests.conftest import make_random_job
        from repro import make_scheduler

        job = make_random_job(rng, n=25, k=3)
        system = ResourceConfig((2, 1, 2))
        for name in ["mqb+all+exp", "mqb+all+noise", "mqb+1step+noise"]:
            res = simulate(job, system, make_scheduler(name),
                           rng=np.random.default_rng(3), record_trace=True)
            validate_schedule(job, system, res.trace, res.makespan)

    def test_stochastic_info_is_seed_deterministic(self, rng):
        from tests.conftest import make_random_job
        from repro import make_scheduler

        job = make_random_job(rng, n=25, k=3)
        system = ResourceConfig((2, 1, 2))
        a = simulate(job, system, make_scheduler("mqb+all+exp"),
                     rng=np.random.default_rng(42))
        b = simulate(job, system, make_scheduler("mqb+all+exp"),
                     rng=np.random.default_rng(42))
        assert a.makespan == b.makespan
